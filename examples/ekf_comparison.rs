//! Physics-based vs data-driven estimation: the classic EKF (category 2 of
//! §II) against the paper's Branch 1 on the same noisy drive cycle.
//!
//! ```text
//! cargo run -p pinnsoc --release --example ekf_comparison
//! ```
//!
//! The EKF knows the cell model exactly (best case for a model-based
//! method); Branch 1 has only training data. The point of the comparison is
//! the cost column: the EKF needs the ECM + OCV inverse at runtime, while
//! Branch 1 is ~1.2k MACs of dense arithmetic, and only Branch 1 extends to
//! workload-conditioned *prediction*.

use pinnsoc::{train, PinnVariant, TrainConfig};
use pinnsoc_battery::{CellParams, EkfEstimator, Soc};
use pinnsoc_data::{generate_lg, LgConfig};
use pinnsoc_nn::Account;

fn main() {
    println!("training Branch 1 on mixed drive cycles...");
    let dataset = generate_lg(&LgConfig {
        test_temps_c: vec![25.0],
        ..LgConfig::default()
    });
    let (model, _) = train(&dataset, &TrainConfig::lg(PinnVariant::NoPinn, 5));

    // Evaluate both estimators along one unseen cycle.
    let cycle = &dataset.test[0];
    println!("evaluating on {} ({} samples)\n", cycle.meta, cycle.len());

    // EKF with a deliberately wrong initial guess (0.5 vs true ~1.0).
    let mut ekf = EkfEstimator::new(CellParams::lg_hg2(), Soc::new(0.5).expect("valid"));
    let mut ekf_abs_err = 0.0;
    let mut nn_abs_err = 0.0;
    let mut ekf_converged_at = None;
    for (k, r) in cycle.records.iter().enumerate() {
        let ekf_soc = ekf
            .update(r.current_a, r.voltage_v, r.temperature_c, cycle.dt_s)
            .value();
        let nn_soc = model.estimate(r.voltage_v, r.current_a, r.temperature_c);
        ekf_abs_err += (ekf_soc - r.soc).abs();
        nn_abs_err += (nn_soc - r.soc).abs();
        if ekf_converged_at.is_none() && (ekf_soc - r.soc).abs() < 0.02 {
            ekf_converged_at = Some(k as f64 * cycle.dt_s);
        }
    }
    let n = cycle.len() as f64;
    println!(
        "EKF   (wrong init, exact model): MAE {:.4}",
        ekf_abs_err / n
    );
    if let Some(t) = ekf_converged_at {
        println!("      converged to within 2% after {t:.0} s");
    }
    println!("NN B1 (no model, trained):       MAE {:.4}", nn_abs_err / n);

    let b1_cost = model.branch1.net().cost();
    println!("\nruntime cost per query:");
    println!("  Branch 1: {b1_cost}");
    println!("  EKF: ECM step + OCV slope + 2x2 covariance algebra (~50 flops), but");
    println!("       requires an identified cell model and cannot answer");
    println!("       \"what will the SoC be after this workload?\" at all —");
    println!("       that is Branch 2's job ({}).", model.cost());
}
