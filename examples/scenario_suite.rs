//! Closed-loop validation walkthrough: train the paper's estimator, then
//! drive the full standard scenario suite — ground-truth cell simulators
//! feeding a live fleet engine through seeded fault channels — and read the
//! per-estimator scorecard.
//!
//! Run with `cargo run --release --example scenario_suite`.

use pinnsoc_bench::demo_serving_model;
use pinnsoc_scenario::{standard_suite, ScenarioRunner};

fn main() {
    // 1. Train the serving model — the same reduced-Sandia configuration
    //    `scenario_baseline` records BENCH_scenarios.json with.
    println!("training the two-branch model (reduced Sandia protocol)...");
    let model = demo_serving_model(false);
    println!("  trained {} ({} params)", model.label, model.param_count());

    // 2. Run the standard suite: eleven scenarios spanning lab patterns, drive
    //    cycles, a temperature sweep, an aged fleet, sensor noise, and
    //    transport faults. Scenarios drain through the shared worker pool;
    //    the report is bit-identical for any worker count.
    let suite = standard_suite(42);
    println!("running {} scenarios...", suite.len());
    let run = ScenarioRunner::default().run(&suite, &model);

    // 3. The scorecard: every estimator scored against the simulator's
    //    ground truth, per scenario.
    println!(
        "\n{:<20} {:>6} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "scenario", "cells", "best MAE", "net MAE", "clmb MAE", "ekf MAE", "tte err s"
    );
    for r in &run.report.scenarios {
        println!(
            "{:<20} {:>6} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>10.1}",
            r.name,
            r.cells,
            r.best.mae,
            r.network.mae,
            r.coulomb.mae,
            r.ekf.mae,
            r.time_to_empty.mean_abs_error_s,
        );
    }

    // 4. Fault accounting: what the scenarios injected vs what the engine
    //    rejected — nothing is silently dropped.
    println!("\nfault accounting (injected -> engine books):");
    for r in &run.report.scenarios {
        if r.injected == Default::default() && r.telemetry.rejected() == 0 {
            continue;
        }
        println!(
            "  {:<20} dropped {} | duplicated {} -> dup-stamped {} | reordered {} -> \
             time-reversed {} | corrupted {} -> non-finite {}",
            r.name,
            r.injected.dropped,
            r.injected.duplicated,
            r.telemetry.duplicate_timestamp,
            r.injected.reordered,
            r.telemetry.rejected_time_reversed,
            r.injected.corrupted,
            r.telemetry.rejected_non_finite,
        );
    }

    // 5. The headline read: Coulomb integration is exact on clean
    //    telemetry (the harness validating itself against the simulator)
    //    and degrades the moment transport faults appear, while the EKF
    //    absorbs both.
    let clean = run.report.get("drive-udds").expect("in suite");
    let chaos = run.report.get("transport-chaos").expect("in suite");
    println!(
        "\ncoulomb MAE clean vs chaos: {:.2e} -> {:.2e}; EKF holds at {:.3} under chaos",
        clean.coulomb.mae, chaos.coulomb.mae, chaos.ekf.mae
    );
}
