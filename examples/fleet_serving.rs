//! Fleet serving walkthrough: train a model on the Sandia-like protocol,
//! serve a simulated 5,000-cell fleet through the batched engine, answer
//! fleet-level queries, and hot-swap the model from disk without stopping.
//!
//! Run with `cargo run --release --example fleet_serving`.

use pinnsoc::{train, PinnVariant, TrainConfig};
use pinnsoc_battery::{CellParams, CellSim, Chemistry, Soc};
use pinnsoc_data::{generate_sandia, NoiseConfig, SandiaConfig};
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, Telemetry, WorkloadQuery};

fn main() {
    // 1. Train the paper's estimator on a reduced Sandia-like run.
    println!("training the two-branch model (reduced Sandia protocol)...");
    let dataset = generate_sandia(&SandiaConfig {
        chemistries: vec![Chemistry::Nmc],
        ambient_temps_c: vec![25.0],
        cycles_per_condition: 1,
        noise: NoiseConfig::none(),
        ..SandiaConfig::default()
    });
    let config = TrainConfig {
        b1_epochs: 60,
        b2_epochs: 30,
        batch_size: 16,
        ..TrainConfig::sandia(PinnVariant::pinn_all(&[120.0, 240.0]), 7)
    };
    let (model, report) = train(&dataset, &config);
    println!(
        "  trained {} ({} params), final B1 loss {:.4}",
        model.label,
        model.param_count(),
        report.b1_loss.last().copied().unwrap_or(f32::NAN),
    );

    // 2. Stand up a fleet of simulated cells and register them.
    let params = CellParams::nmc_18650();
    let cells: u64 = 5_000;
    let mut engine = FleetEngine::new(model, FleetConfig::default());
    let mut sims: Vec<CellSim> = (0..cells)
        .map(|_| CellSim::new(params.clone(), Soc::FULL, 25.0))
        .collect();
    for id in 0..cells {
        engine.register(
            id,
            CellConfig {
                initial_soc: 1.0,
                capacity_ah: params.capacity_ah,
            },
        );
        engine.ingest(
            id,
            Telemetry {
                time_s: 0.0,
                voltage_v: 4.1,
                current_a: 0.0,
                temperature_c: 25.0,
            },
        );
    }
    println!(
        "registered {} cells across {} shards",
        engine.len(),
        engine.config().shards
    );

    // 3. Stream 20 minutes of telemetry (30 s reports, cells at 0.8–1.2C)
    //    and refresh estimates in micro-batched passes.
    let dt_s = 30.0;
    for step in 1..=40 {
        for (id, sim) in sims.iter_mut().enumerate() {
            let c_rate = 0.8 + 0.4 * (id as f64 / (cells - 1) as f64);
            let record = sim.step(params.c_rate(c_rate), dt_s);
            engine.ingest(
                id as u64,
                Telemetry {
                    time_s: step as f64 * dt_s,
                    voltage_v: record.voltage_v,
                    current_a: record.current_a,
                    temperature_c: record.temperature_c,
                },
            );
        }
        if step % 10 == 0 {
            let started = std::time::Instant::now();
            let (absorbed, estimated) = engine.process_pending();
            println!(
                "  t={:>4.0}s: absorbed {absorbed} reports, estimated {estimated} cells in {:.1} ms",
                step as f64 * dt_s,
                started.elapsed().as_secs_f64() * 1e3,
            );
        }
    }

    // 4. Fleet-level queries.
    let stats = engine.stats();
    println!(
        "fleet stats: {} reporting, SoC mean {:.3} (min {:.3}, max {:.3})",
        stats.reporting, stats.mean_soc, stats.min_soc, stats.max_soc
    );
    let histogram = engine.soc_histogram(10);
    println!("SoC histogram (10 bins, empty→full): {histogram:?}");
    let low = engine.cells_below(0.55);
    println!("cells below 55% SoC: {}", low.len());
    if let Some(tte) = engine.time_to_empty(0, params.c_rate(1.0)) {
        println!("cell 0 time-to-empty at 1C: {:.0} s", tte);
    }

    // 5. Predict 120 s ahead for the whole fleet under a 1C workload.
    let predictions = engine.predict_all(WorkloadQuery {
        avg_current_a: params.c_rate(1.0),
        avg_temperature_c: 25.0,
        horizon_s: 120.0,
    });
    let mean_pred: f64 = predictions.iter().map(|(_, p)| p).sum::<f64>() / predictions.len() as f64;
    println!(
        "fleet-wide 120 s prediction: {} cells, mean predicted SoC {:.3}",
        predictions.len(),
        mean_pred
    );

    // 6. Hot-swap a retrained model from disk; readers never stall.
    let dir = std::env::temp_dir().join("pinnsoc_fleet_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("retrained.json");
    let retrained = train(
        &dataset,
        &TrainConfig {
            seed: 8,
            ..config.clone()
        },
    )
    .0;
    pinnsoc_nn::save_json(&retrained, &path).expect("persist model");
    let version = engine
        .registry()
        .swap_from_json(&path)
        .expect("hot swap from disk");
    println!("hot-swapped persisted model -> registry version {version}");

    // A corrupt file is rejected without touching the served model.
    let bad = dir.join("corrupt.json");
    std::fs::write(&bad, "{ not a model ").expect("write");
    match engine.registry().swap_from_json(&bad) {
        Err(e) => println!("corrupt model file rejected as expected: {e}"),
        Ok(_) => unreachable!("corrupt file must not swap in"),
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&bad).ok();

    // The swap applies from the next pass on.
    for id in 0..cells {
        engine.ingest(
            id,
            Telemetry {
                time_s: 41.0 * dt_s,
                voltage_v: 3.6,
                current_a: 3.0,
                temperature_c: 25.0,
            },
        );
    }
    let (_, estimated) = engine.process_pending();
    println!("post-swap pass re-estimated {estimated} cells with model v{version}");
}
