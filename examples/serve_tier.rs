//! Service-tier walkthrough: train a reduced model, stand up a durable
//! two-engine `ServeTier`, push telemetry through the lock-free ingest
//! rings, answer fleet queries from published snapshots, then crash one
//! engine mid-run and recover it without losing a frame.
//!
//! Run with `cargo run --release --example serve_tier`.

use pinnsoc::{train, PinnVariant, TrainConfig};
use pinnsoc_battery::Chemistry;
use pinnsoc_data::{generate_sandia, NoiseConfig, SandiaConfig};
use pinnsoc_fleet::{CellConfig, FleetConfig, Telemetry};
use pinnsoc_serve::{DurabilitySpec, ServeConfig, ServeTier};

const CELLS: u64 = 2_000;
const TICKS: u64 = 10;
const KILL_TICK: u64 = 4;

fn feed(tick: u64, id: u64) -> Telemetry {
    Telemetry {
        time_s: tick as f64 * 10.0,
        voltage_v: 3.55 + 0.01 * ((id % 7) as f64) - 0.002 * (tick as f64),
        current_a: 0.9 + 0.05 * ((id % 3) as f64),
        temperature_c: 25.0 + 0.1 * ((id % 11) as f64),
    }
}

fn main() {
    // 1. Train the paper's estimator on a reduced Sandia-like run.
    println!("training the two-branch model (reduced Sandia protocol)...");
    let dataset = generate_sandia(&SandiaConfig {
        chemistries: vec![Chemistry::Nmc],
        ambient_temps_c: vec![25.0],
        cycles_per_condition: 1,
        noise: NoiseConfig::none(),
        ..SandiaConfig::default()
    });
    let config = TrainConfig {
        b1_epochs: 40,
        b2_epochs: 20,
        batch_size: 16,
        ..TrainConfig::sandia(PinnVariant::pinn_all(&[120.0, 240.0]), 7)
    };
    let (model, _) = train(&dataset, &config);
    println!("  trained {} ({} params)", model.label, model.param_count());

    // 2. Stand up a durable two-engine tier. Cell ids spread across the
    //    engines by rendezvous hashing; each engine journals to its own
    //    WAL directory under `root`.
    let root = std::env::temp_dir().join(format!("pinnsoc-serve-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut tier = ServeTier::new(
        model,
        ServeConfig {
            engines: 2,
            ring_capacity: 2 * CELLS as usize,
            fleet: FleetConfig::default(),
            durability: Some(DurabilitySpec {
                root: root.clone(),
                snapshot_every_ticks: 4,
            }),
        },
    )
    .expect("tier");
    for id in 0..CELLS {
        tier.register(
            id,
            CellConfig {
                initial_soc: 0.95,
                capacity_ah: 3.0,
            },
        );
    }
    let handle = tier.handle();
    println!(
        "serving {CELLS} cells across {} engines (router: rendezvous hashing)",
        tier.engines()
    );

    // 3. Steady traffic: producers enqueue on the rings, the tick loop
    //    drains, integrates, and publishes a fresh snapshot.
    for tick in 1..=KILL_TICK {
        for id in 0..CELLS {
            assert!(handle.ingest(id, feed(tick, id)).enqueued());
        }
        let report = tier.tick().expect("tick");
        println!(
            "  tick {:>2}: drained {:>5} | accepted {:>5} | snapshot cells {:>5}",
            report.tick, report.drained, report.telemetry.accepted, report.snapshot_cells
        );
    }

    // 4. Read-side queries come from the published snapshot — immutable,
    //    tick-atomic, and never contending with the tick loop.
    let reader = tier.reader();
    let snapshot = reader.snapshot();
    let stats = snapshot.stats();
    println!(
        "snapshot @ tick {}: mean SoC {:.4} (min {:.4}, max {:.4})",
        snapshot.tick, stats.mean_soc, stats.min_soc, stats.max_soc
    );
    let histogram = snapshot.soc_histogram(8);
    println!("  8-bin SoC histogram: {histogram:?}");
    let low = snapshot.cells_below(stats.mean_soc);
    println!("  {} cells below the fleet mean", low.len());

    // 5. Kill engine 1. The tier degrades instead of downing: the dead
    //    lane's ring keeps buffering its traffic while survivors serve.
    let dir = tier.crash_engine(1);
    println!("engine 1 crashed (journal at {})", dir.display());
    for id in 0..CELLS {
        handle.ingest(id, feed(KILL_TICK + 1, id));
    }
    let report = tier.tick().expect("degraded tick");
    println!(
        "  degraded tick {:>2}: drained {:>5} | skipped lanes {} | snapshot cells {:>5}",
        report.tick, report.drained, report.skipped_lanes, report.snapshot_cells
    );

    // 6. Recover: replay the lane's WAL, then the next tick drains the
    //    frames that buffered through the outage.
    let recovery = tier.recover_engine(1).expect("recover");
    println!(
        "engine 1 recovered at tick {} ({} snapshot cells + {} WAL records replayed)",
        recovery.tick, recovery.snapshot_cells, recovery.records_replayed
    );
    let report = tier.tick().expect("catch-up tick");
    println!(
        "  catch-up tick {:>2}: drained {:>5} buffered frames | snapshot cells {:>5}",
        report.tick, report.drained, report.snapshot_cells
    );
    assert_eq!(report.snapshot_cells as u64, CELLS);

    for tick in KILL_TICK + 2..=TICKS {
        for id in 0..CELLS {
            assert!(handle.ingest(id, feed(tick, id)).enqueued());
        }
        tier.tick().expect("tick");
    }
    let snapshot = reader.snapshot();
    println!(
        "final snapshot @ tick {}: {} cells, mean SoC {:.4}",
        snapshot.tick,
        snapshot.cells.len(),
        snapshot.stats().mean_soc
    );

    drop(tier);
    std::fs::remove_dir_all(&root).expect("cleanup");
    println!("done: crash + recovery lost no enqueued frames.");
}
