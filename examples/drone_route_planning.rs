//! Battery-aware route planning for a small electric drone (§III: "it
//! allows taking runtime decisions on the best route to follow to maximize
//! battery lifetime").
//!
//! ```text
//! cargo run -p pinnsoc --release --example drone_route_planning
//! ```
//!
//! Two candidate routes stress the battery differently: a short route with
//! an aggressive climb, and a longer but gentler one. The planner uses the
//! trained predictor autoregressively at a *coarse* horizon to pick a route
//! (fast, approximate), then re-checks the chosen route's first leg at a
//! *fine* horizon (slow, precise) — the multi-horizon pattern the paper's
//! single-network design enables.

use pinnsoc::{train, PinnVariant, SocModel, TrainConfig};
use pinnsoc_data::{generate_lg, LgConfig, NoiseConfig, PhysicsCurrentMode};

/// One flight leg: average cell current for a duration.
#[derive(Debug, Clone, Copy)]
struct Leg {
    name: &'static str,
    current_a: f64,
    duration_s: f64,
}

/// Rolls the predictor over a route at the given step and returns the SoC
/// trace at leg boundaries.
fn fly(model: &SocModel, soc0: f64, route: &[Leg], step_s: f64, temp_c: f64) -> Vec<f64> {
    let mut soc = soc0;
    let mut trace = vec![soc];
    for leg in route {
        let mut remaining = leg.duration_s;
        while remaining > 1e-9 {
            let dt = remaining.min(step_s);
            soc = model.predict_from(soc, leg.current_a, temp_c, dt);
            remaining -= dt;
        }
        trace.push(soc);
    }
    trace
}

fn main() {
    println!("training the multi-horizon PINN predictor...");
    let dataset = generate_lg(&LgConfig {
        train_mixed: 3,
        mixed_segments: 3,
        test_temps_c: vec![25.0],
        noise: NoiseConfig::default(),
        ..LgConfig::default()
    });
    let variant = PinnVariant::pinn_all(&[30.0, 50.0, 70.0]);
    // Drone climbs draw harder than the EV drive cycles the data comes
    // from, so widen the physics batch to the cell's full C-rate envelope —
    // the PINN extrapolates where the data cannot reach.
    let config = TrainConfig {
        physics_current: PhysicsCurrentMode::CRateUniform {
            min_c: -2.0,
            max_c: 4.0,
        },
        ..TrainConfig::lg(variant, 7)
    };
    let (model, _) = train(&dataset, &config);

    // The drone's BMS reads the cell and estimates the starting SoC.
    let soc0 = model.estimate(4.02, 1.2, 24.0);
    println!("current SoC estimate: {soc0:.3}\n");

    let direct = [
        Leg {
            name: "aggressive climb",
            current_a: 8.0,
            duration_s: 150.0,
        },
        Leg {
            name: "fast cruise",
            current_a: 5.0,
            duration_s: 300.0,
        },
        Leg {
            name: "landing",
            current_a: 2.0,
            duration_s: 60.0,
        },
    ];
    let scenic = [
        Leg {
            name: "gentle climb",
            current_a: 4.5,
            duration_s: 280.0,
        },
        Leg {
            name: "eco cruise",
            current_a: 3.2,
            duration_s: 600.0,
        },
        Leg {
            name: "landing",
            current_a: 2.0,
            duration_s: 60.0,
        },
    ];
    let reserve = 0.15; // keep ≥15% SoC at touchdown

    // Coarse pass: 70 s steps (few Branch-2 invocations per route).
    println!("coarse screening at 70 s steps:");
    let mut feasible: Vec<(&str, &[Leg], f64)> = Vec::new();
    for (name, route) in [("direct", &direct[..]), ("scenic", &scenic[..])] {
        let trace = fly(&model, soc0, route, 70.0, 24.0);
        let landing = *trace.last().unwrap();
        let ok = landing >= reserve;
        println!(
            "  {name:<7} -> landing SoC {landing:.3} ({})",
            if ok { "feasible" } else { "VIOLATES RESERVE" }
        );
        if ok {
            feasible.push((name, route, landing));
        }
    }
    let (chosen_name, chosen_route, _) = feasible
        .into_iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite SoC"))
        .expect("at least one feasible route");
    println!("\nchosen route: {chosen_name}");

    // Fine pass: verify the first leg at 30 s resolution before take-off.
    println!("fine re-check of '{}' at 30 s steps:", chosen_route[0].name);
    let first_leg = [chosen_route[0]];
    let trace = fly(&model, soc0, &first_leg, 30.0, 24.0);
    for (k, soc) in trace.iter().enumerate() {
        println!("  checkpoint {k}: SoC {soc:.3}");
    }
    println!("\ncleared for take-off.");
}
