//! Online-adaptation walkthrough: a lab-trained model serves a drifting
//! fleet while `pinnsoc-adapt` closes the train/serve gap live — harvesting
//! EKF-labeled windows from the fleet's own telemetry, detecting drift,
//! fine-tuning warm-started candidates in the background, and hot-swapping
//! each gate winner into the serving registry mid-session.
//!
//! Run with `cargo run --release --example online_adaptation`.

use pinnsoc::{PinnVariant, TrainConfig};
use pinnsoc_adapt::{
    AdaptOutcome, AdaptationConfig, AdaptationEngine, DriftConfig, GateConfig, HarvestConfig,
};
use pinnsoc_bench::{demo_serving_model, demo_training_dataset};
use pinnsoc_scenario::{
    gate_suite, run_scenario_observed, standard_suite, EngineSpec, EnvSchedule, ScenarioRunner,
};
use std::sync::Arc;

fn main() {
    // 1. The frozen lab model: trained on clean Sandia-style cycling. The
    //    scenario harness showed it scores ~0.2 SoC MAE on drive cycles —
    //    an order of magnitude worse than the onboard EKF.
    println!("training the lab model (reduced Sandia protocol)...");
    let lab_data = Arc::new(demo_training_dataset());
    let frozen = demo_serving_model(false);
    println!(
        "  trained {} ({} params)",
        frozen.label,
        frozen.param_count()
    );

    // 2. The adaptation engine: drift thresholds, harvesting gates, a
    //    Branch-1-only fine-tune recipe (harvested windows carry no horizon
    //    labels), and the promotion gate's scenario suite.
    let mut adapt = AdaptationEngine::new(
        AdaptationConfig {
            drift: DriftConfig {
                window: 256,
                threshold: 0.08,
                min_samples: 64,
            },
            harvest: HarvestConfig {
                reservoir_capacity: 2048,
                seed: 42,
                min_dt_s: 2.0,
                rated_capacity_ah: 3.0,
                ..HarvestConfig::default()
            },
            fine_tune: TrainConfig {
                b1_epochs: 40,
                b2_epochs: 0,
                batch_size: 64,
                learning_rate: 1e-3,
                ..TrainConfig::sandia(PinnVariant::NoPinn, 0)
            },
            candidate_seeds: vec![1, 2],
            gate: GateConfig {
                suite: gate_suite(42),
                runner_workers: 1,
                engine: EngineSpec::default(),
                min_improvement: 0.0,
            },
            train_workers: 1,
            lab_cycles: 4,
            min_reservoir: 256,
            cooldown_ticks: 25,
            // This walkthrough stops at the f32 hot-swap; the int8 story
            // lives in the quantized-serving example and gate tests.
            quantize: None,
        },
        lab_data,
    );

    // 3. The closed-loop session: an aged mixed-EV fleet sweeping the whole
    //    ambient envelope. The adaptation engine rides along as a fleet
    //    observer — every hot-swap it performs applies to the live engine's
    //    next batch pass.
    let mut session = standard_suite(42)
        .into_iter()
        .find(|s| s.name == "drifting-fleet")
        .expect("standard suite carries the drift scenario");
    session.environment = EnvSchedule::Ramp {
        from_c: 40.0,
        to_c: -5.0,
    };
    println!("running the drifting-fleet session with adaptation attached...");
    run_scenario_observed(&session, &frozen, &EngineSpec::default(), &mut adapt);
    for event in adapt.events() {
        match &event.outcome {
            AdaptOutcome::Promoted {
                cohort,
                version,
                incumbent_mae,
                candidate_mae,
            } => println!(
                "  tick {:>3}: cohort {cohort} drifted -> fine-tuned, gate passed \
                 ({incumbent_mae:.4} -> {candidate_mae:.4}), swapped to v{version}",
                event.tick
            ),
            AdaptOutcome::Rejected {
                incumbent_mae,
                best_candidate_mae,
                ..
            } => println!(
                "  tick {:>3}: gate rejected ({best_candidate_mae:.4} vs {incumbent_mae:.4}) — \
                 serving model untouched",
                event.tick
            ),
            _ => {}
        }
    }
    let report = adapt.report();
    println!(
        "  {} windows harvested, {} trigger(s), {} swap(s)",
        report.harvest.harvested, report.triggers, report.swaps
    );

    // 4. The receipts: frozen vs adapted on held-out drive-cycle fleets.
    let adapted = adapt.promoted().expect("the drifting session promotes");
    let suite: Vec<_> = standard_suite(1042)
        .into_iter()
        .filter(|s| matches!(s.name.as_str(), "drive-udds" | "ev-mixed-random"))
        .collect();
    println!("\nscoring frozen vs adapted on held-out drive fleets...");
    let runner = ScenarioRunner::default();
    let frozen_run = runner.run(&suite, &frozen);
    let adapted_run = runner.run(&suite, adapted);
    println!(
        "{:<18} {:>12} {:>12} {:>9}",
        "scenario", "frozen net", "adapted net", "ekf"
    );
    for (f, a) in frozen_run
        .report
        .scenarios
        .iter()
        .zip(&adapted_run.report.scenarios)
    {
        println!(
            "{:<18} {:>12.4} {:>12.4} {:>9.4}",
            f.name, f.network.mae, a.network.mae, f.ekf.mae
        );
    }
    println!("\nthe fleet just retrained itself from its own telemetry.");
}
