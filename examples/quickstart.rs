//! Quickstart: train a physics-informed SoC model and query it.
//!
//! ```text
//! cargo run -p pinnsoc --release --example quickstart
//! ```
//!
//! Generates a small Sandia-like dataset, trains the two-branch PINN, and
//! runs the two queries every BMS needs: "what is my SoC right now?" and
//! "what will it be in N seconds under this load?".

use pinnsoc::{eval_estimation, eval_prediction, train, PinnVariant, TrainConfig};
use pinnsoc_battery::Chemistry;
use pinnsoc_data::{generate_sandia, SandiaConfig};

fn main() {
    // 1. Data: one NMC cell cycled at three ambient temperatures (trains in
    //    a couple of seconds).
    let dataset = generate_sandia(&SandiaConfig {
        chemistries: vec![Chemistry::Nmc],
        ..SandiaConfig::default()
    });
    println!(
        "dataset: {} train / {} test records",
        dataset.train_len(),
        dataset.test_len()
    );

    // 2. Train the PINN-All variant: physics horizons 120/240/360 s.
    let variant = PinnVariant::pinn_all(&[120.0, 240.0, 360.0]);
    let (model, report) = train(&dataset, &TrainConfig::sandia(variant, 42));
    println!(
        "trained {} ({}); final B1 loss {:.4}, B2 loss {:.4}",
        model.label,
        model.cost(),
        report.b1_loss.last().unwrap(),
        report.b2_loss.last().unwrap(),
    );

    // 3. Estimate the current SoC from a sensor reading (Branch 1).
    let (v, i, t) = (3.62, 3.0, 26.0);
    let soc_now = model.estimate(v, i, t);
    println!("\nsensor reading V={v} V, I={i} A, T={t} °C -> SoC(t) ≈ {soc_now:.3}");

    // 4. Predict the future SoC under a planned load (Branch 2), for
    //    several horizons from the same network — the multi-horizon power
    //    management use case of §III.
    for horizon in [120.0, 240.0, 360.0] {
        let soc_future = model.predict_from(soc_now, 6.0, 26.0, horizon);
        println!("under a 2C load for {horizon:>4.0} s -> SoC ≈ {soc_future:.3}");
    }

    // 5. How good is it? MAE on the held-out 2C/3C cycles.
    let est = eval_estimation(&model, &dataset.test);
    let pred = eval_prediction(&model, &dataset.test, 120.0);
    println!(
        "\ntest MAE: estimation {:.4}, prediction@120s {:.4} ({} windows)",
        est.mae, pred.mae, pred.count
    );
}
