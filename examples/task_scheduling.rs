//! Battery-aware task scheduling on an embedded device (§III: "on a
//! battery-operated embedded device, it could be used to find the most
//! appropriate scheduling of computing tasks").
//!
//! ```text
//! cargo run -p pinnsoc --release --example task_scheduling
//! ```
//!
//! A sensor node must run a mix of mandatory telemetry and optional
//! compute-heavy jobs before its next recharge window. The scheduler
//! greedily admits optional jobs only when the SoC predictor says the
//! mandatory workload still finishes above the brown-out threshold.

use pinnsoc::{train, PinnVariant, SocModel, TrainConfig};
use pinnsoc_battery::Chemistry;
use pinnsoc_data::{generate_sandia, SandiaConfig};

#[derive(Debug, Clone, Copy)]
struct Task {
    name: &'static str,
    current_a: f64,
    duration_s: f64,
    mandatory: bool,
}

/// Predicted SoC after running `tasks` back to back from `soc0`.
///
/// Predictions are clamped to `[0, 1]` between autoregressive steps, as a
/// BMS would do — feeding an out-of-range SoC back into the network leaves
/// its trained domain.
fn soc_after(model: &SocModel, soc0: f64, tasks: &[Task], temp_c: f64, step_s: f64) -> f64 {
    let mut soc = soc0;
    for t in tasks {
        let mut remaining = t.duration_s;
        while remaining > 1e-9 {
            let dt = remaining.min(step_s);
            soc = model
                .predict_from(soc, t.current_a, temp_c, dt)
                .clamp(0.0, 1.0);
            remaining -= dt;
        }
    }
    soc
}

fn main() {
    println!("training the SoC predictor on lab-cycle data...");
    let dataset = generate_sandia(&SandiaConfig {
        chemistries: vec![Chemistry::Nmc],
        ..SandiaConfig::default()
    });
    let variant = PinnVariant::pinn_all(&[120.0, 240.0, 360.0]);
    let (model, _) = train(&dataset, &TrainConfig::sandia(variant, 3));

    let temp_c = 26.0;
    let brownout = 0.10;
    // Read the cell during an active (1C-class) phase: Branch 1 is trained
    // on the lab protocol's load currents, so query it there.
    let soc0 = model.estimate(3.62, 3.0, temp_c);
    println!("starting SoC estimate: {soc0:.3}, brown-out threshold {brownout}\n");

    let mandatory = [
        Task {
            name: "radio telemetry",
            current_a: 1.8,
            duration_s: 240.0,
            mandatory: true,
        },
        Task {
            name: "sensor sweep",
            current_a: 0.9,
            duration_s: 600.0,
            mandatory: true,
        },
    ];
    let optional = [
        Task {
            name: "firmware integrity scan",
            current_a: 2.4,
            duration_s: 480.0,
            mandatory: false,
        },
        Task {
            name: "on-device model refresh",
            current_a: 3.0,
            duration_s: 600.0,
            mandatory: false,
        },
        Task {
            name: "log compaction",
            current_a: 1.2,
            duration_s: 360.0,
            mandatory: false,
        },
    ];

    // The mandatory workload must always fit.
    let after_mandatory = soc_after(&model, soc0, &mandatory, temp_c, 360.0);
    println!("after mandatory workload: SoC {after_mandatory:.3}");
    assert!(
        after_mandatory > brownout,
        "mandatory workload alone violates the brown-out threshold"
    );

    // Greedy admission: accept an optional job only if mandatory work still
    // finishes above the threshold afterwards.
    let mut schedule: Vec<Task> = Vec::new();
    for job in optional {
        let mut attempt: Vec<Task> = schedule.clone();
        attempt.push(job);
        attempt.extend_from_slice(&mandatory);
        let landing = soc_after(&model, soc0, &attempt, temp_c, 360.0);
        if landing > brownout {
            println!(
                "ADMIT  {:<26} (predicted end-of-schedule SoC {landing:.3})",
                job.name
            );
            schedule.push(job);
        } else {
            println!(
                "REJECT {:<26} (would end at SoC {landing:.3} <= {brownout})",
                job.name
            );
        }
    }

    schedule.extend_from_slice(&mandatory);
    let final_soc = soc_after(&model, soc0, &schedule, temp_c, 360.0);
    println!("\nfinal schedule ({} tasks):", schedule.len());
    for t in &schedule {
        println!(
            "  {:<26} {:>4.1} A for {:>4.0} s{}",
            t.name,
            t.current_a,
            t.duration_s,
            if t.mandatory { "  [mandatory]" } else { "" }
        );
    }
    println!("predicted SoC at recharge window: {final_soc:.3}");
}
