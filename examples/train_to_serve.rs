//! Train → serve hot-swap: a fleet engine keeps ticking while a pool of
//! training tasks produces candidate models, and each finished model is
//! swapped into the running engine without dropping a batch.
//!
//! Run with `cargo run --release --example train_to_serve`.
//!
//! The moving parts:
//!
//! 1. A [`FleetEngine`] starts serving immediately from a crude
//!    Physics-Only model (no Branch-2 training needed).
//! 2. `train_many` trains the paper's data-driven variants — several seeds
//!    and a PINN — through the shared `pinnsoc-runtime` worker pool.
//! 3. The winning model is pushed through the engine's [`ModelRegistry`];
//!    the swap applies at the next micro-batch boundary, so in-flight
//!    ticks finish on their pinned snapshot and the next tick picks up the
//!    new weights.

use pinnsoc::{train_many, PinnVariant, TrainConfig, TrainTask};
use pinnsoc_battery::Chemistry;
use pinnsoc_data::{generate_sandia, NoiseConfig, SandiaConfig};
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, Telemetry, WorkloadQuery};
use std::sync::Arc;

fn main() {
    // A small Sandia-style dataset: one NMC condition, clean signals.
    let dataset = Arc::new(generate_sandia(&SandiaConfig {
        chemistries: vec![Chemistry::Nmc],
        ambient_temps_c: vec![25.0],
        cycles_per_condition: 2,
        noise: NoiseConfig::none(),
        ..SandiaConfig::default()
    }));

    // Serve from day zero: the Physics-Only variant needs only Branch 1.
    let quick = TrainConfig {
        b1_epochs: 20,
        b2_epochs: 20,
        batch_size: 64,
        ..TrainConfig::sandia(PinnVariant::PhysicsOnly, 1)
    };
    let (bootstrap, _) = pinnsoc::train(&dataset, &quick);
    let mut engine = FleetEngine::new(bootstrap, FleetConfig::default());
    for id in 0..500u64 {
        engine.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        );
    }
    let workload = WorkloadQuery {
        avg_current_a: 3.0,
        avg_temperature_c: 25.0,
        horizon_s: 120.0,
    };
    let tick = |engine: &mut FleetEngine, t: f64| {
        for id in 0..500u64 {
            engine.ingest(
                id,
                Telemetry {
                    time_s: t,
                    voltage_v: 3.6 + (id % 7) as f64 * 0.05,
                    current_a: 1.0 + (id % 3) as f64,
                    temperature_c: 25.0,
                },
            );
        }
        engine.process_pending();
        engine.predict_all(workload)
    };
    let before = tick(&mut engine, 1.0);
    println!(
        "serving v{} ({}): first prediction {:.4}",
        engine.registry().version(),
        engine.registry().current().label,
        before[0].1
    );

    // Meanwhile: pool-parallel training of the candidate models. Results
    // are bit-identical to serial `train()` calls, whatever the worker
    // count or completion order.
    let candidates = vec![
        TrainTask::new(
            Arc::clone(&dataset),
            TrainConfig {
                seed: 11,
                ..quick.clone()
            },
        ),
        TrainTask::new(
            Arc::clone(&dataset),
            TrainConfig {
                variant: PinnVariant::NoPinn,
                seed: 12,
                ..quick.clone()
            },
        ),
        TrainTask::new(
            Arc::clone(&dataset),
            TrainConfig {
                variant: PinnVariant::pinn_all(&[120.0, 240.0, 360.0]),
                seed: 13,
                ..quick.clone()
            },
        ),
    ];
    let workers = std::thread::available_parallelism().map_or(0, |p| usize::from(p) - 1);
    println!(
        "training {} candidates on {} pool workers + the calling thread...",
        candidates.len(),
        workers
    );
    let trained = train_many(candidates, workers);
    for (model, report) in &trained {
        println!(
            "  trained {:<12} final B1 MAE {:.4}",
            model.label,
            report.b1_loss.last().copied().unwrap_or(f32::NAN)
        );
    }

    // Promote the PINN into the running engine: the registry swap applies
    // from the next pinned snapshot — no pause, no dropped batch.
    let (pinn, _) = trained.into_iter().last().expect("trained candidates");
    let version = engine.registry().swap(pinn);
    let after = tick(&mut engine, 2.0);
    println!(
        "hot-swapped to v{version} ({}): first prediction {:.4}",
        engine.registry().current().label,
        after[0].1
    );
    assert_eq!(
        after.len(),
        before.len(),
        "no cells dropped across the swap"
    );
}
