//! Full-discharge lifetime prediction (the Fig. 5 use case): given only the
//! first sensor reading and the expected drive profile, predict the whole
//! SoC trajectory — voltage is never consulted again.
//!
//! ```text
//! cargo run -p pinnsoc --release --example lifetime_prediction
//! ```

use pinnsoc::{autoregressive_rollout, train, PinnVariant, TrainConfig};
use pinnsoc_cycles::DriveSchedule;
use pinnsoc_data::{generate_lg, CycleKind, LgConfig};

/// Renders one rollout as a crude ASCII chart (time left to right).
fn ascii_chart(times: &[f64], predicted: &[f64], truth: &[f64]) {
    const ROWS: usize = 12;
    const COLS: usize = 72;
    let t_max = *times.last().expect("non-empty");
    let mut grid = vec![vec![' '; COLS]; ROWS];
    let plot = |grid: &mut Vec<Vec<char>>, xs: &[f64], ys: &[f64], ch: char| {
        for (x, y) in xs.iter().zip(ys) {
            let col = ((x / t_max) * (COLS - 1) as f64).round() as usize;
            let row_f = (1.0 - y.clamp(-0.1, 1.05)) / 1.15 * (ROWS - 1) as f64;
            let row = row_f.round().clamp(0.0, (ROWS - 1) as f64) as usize;
            grid[row][col] = ch;
        }
    };
    plot(&mut grid, times, truth, '.');
    plot(&mut grid, times, predicted, '#');
    println!("  1.0 ┐  ('#' predicted, '.' ground truth)");
    for row in grid {
        println!("      │{}", row.into_iter().collect::<String>());
    }
    println!("  0.0 └{}", "─".repeat(COLS));
    println!("       0 s{:>66.0} s", t_max);
}

fn main() {
    println!("generating LG-like data and training PINN-30s...");
    let dataset = generate_lg(&LgConfig {
        test_temps_c: vec![25.0],
        ..LgConfig::default()
    });
    let (model, _) = train(
        &dataset,
        &TrainConfig::lg(PinnVariant::pinn_single(30.0), 1),
    );

    for cycle in dataset.test.iter().filter(|c| {
        matches!(
            c.meta.kind,
            CycleKind::Drive(DriveSchedule::Udds) | CycleKind::Drive(DriveSchedule::Us06)
        )
    }) {
        println!("\n=== {} — predicted full discharge ===", cycle.meta);
        let rollout = autoregressive_rollout(&model, cycle, 30.0);
        ascii_chart(&rollout.times_s, &rollout.predicted, &rollout.ground_truth);
        let predicted_eol = rollout
            .times_s
            .iter()
            .zip(&rollout.predicted)
            .find(|(_, soc)| **soc <= 0.05)
            .map(|(t, _)| *t);
        let true_eol = cycle.duration_s();
        match predicted_eol {
            Some(t) => println!(
                "predicted time-to-empty {t:.0} s vs actual {true_eol:.0} s \
                 ({:+.1}% error) over {} autoregressive steps",
                100.0 * (t - true_eol) / true_eol,
                rollout.steps()
            ),
            None => println!(
                "predictor never crossed 5% SoC (final prediction {:.3}, {} steps)",
                rollout.predicted.last().unwrap(),
                rollout.steps()
            ),
        }
    }
}
