//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment of this workspace has no access to crates.io, so
//! this crate reimplements exactly the surface the workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`] over half-open and inclusive numeric
//! ranges, [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — a
//! well-studied, high-quality small PRNG. Streams are deterministic per
//! seed but are **not** bit-compatible with upstream `rand`'s `StdRng`
//! (ChaCha12); nothing in the workspace depends on upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly over their whole domain (the
/// `rng.gen()` path; a miniature `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of their element type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard the pathological rounding case v == end.
                if v >= self.end { <$t>::max(self.start, self.end - (self.end - self.start) * <$t>::EPSILON) } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range_impls!(f32, f64);

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: f32 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
