//! Offline vendored stand-in for the `serde_json` crate: renders and parses
//! the vendored serde [`Value`] tree as standards-compliant JSON.
//!
//! Provides the exact functions this workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — plus [`to_value`]/[`from_value`]
//! conveniences. Numbers print through Rust's shortest-roundtrip float
//! formatting, so `f32`/`f64` payloads survive a round trip bit-exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::de::DeserializeOwned;
use serde::Serialize;
pub use serde::{Number, Value};

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree does not describe `T`.
pub fn from_value<T: DeserializeOwned>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Serializes to compact JSON.
///
/// # Errors
///
/// Infallible for tree-representable values; kept fallible for serde_json
/// API compatibility.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for tree-representable values; kept fallible for serde_json
/// API compatibility.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a tree that does not describe `T`.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        Number::Float(f) => {
            if !f.is_finite() {
                // serde_json writes null for non-finite floats.
                out.push_str("null");
            } else if f.fract() == 0.0 && f.abs() < 1e15 {
                // Match serde_json's "1.0" form for integral floats.
                out.push_str(&format!("{f:.1}"));
            } else {
                // Rust's Display is shortest-roundtrip.
                out.push_str(&f.to_string());
            }
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(pad) = indent {
                    out.push('\n');
                    out.push_str(&pad.repeat(depth + 1));
                }
                write_value(out, item, indent, depth + 1);
            }
            if let Some(pad) = indent {
                out.push('\n');
                out.push_str(&pad.repeat(depth));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(pad) = indent {
                    out.push('\n');
                    out.push_str(&pad.repeat(depth + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if let Some(pad) = indent {
                out.push('\n');
                out.push_str(&pad.repeat(depth));
            }
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => {
                            return Err(Error::new(format!("invalid escape at byte {}", self.pos)))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::new(format!("invalid number at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(
            from_str::<i64>("-9007199254740993").unwrap(),
            -9007199254740993
        );
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for &x in &[0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-17] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{s}");
        }
        for &x in &[0.1f32, 1.0f32 / 3.0, f32::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{s}");
        }
    }

    #[test]
    fn string_escapes() {
        let original = "a\"b\\c\nd\te\u{1F600}ü".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(original, back);
        // Explicit unicode escapes parse too, including surrogate pairs.
        let parsed: String = from_str("\"\\u00fc\\ud83d\\ude00\"").unwrap();
        assert_eq!(parsed, "ü\u{1F600}");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![], vec![-0.5]];
        let back: Vec<Vec<f64>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);

        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), vec![1.0f64, 2.0]);
        m.insert("b".to_string(), vec![]);
        let back: std::collections::BTreeMap<String, Vec<f64>> =
            from_str(&to_string(&m).unwrap()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v: Vec<Option<u32>> = vec![Some(1), None];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Option<u32>> = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<f64>("{ not json ").is_err());
        assert!(from_str::<f64>("1.5 trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<f64>("").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n\t3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
