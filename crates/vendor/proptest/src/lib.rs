//! Offline vendored mini property-testing harness with the `proptest!`
//! macro surface this workspace uses.
//!
//! Differences from upstream proptest: no shrinking (a failing case panics
//! with the sampled inputs printed via the assertion message), and
//! strategies are simple samplers. Case counts default to 64 and can be
//! overridden globally with the `PROPTEST_CASES` environment variable or
//! per-block with `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Supported strategy combinators: numeric range expressions
//! (`-10.0f32..10.0`, `0u64..=100`), [`Just`], [`Strategy::prop_map`],
//! [`Strategy::prop_flat_map`], [`prop_oneof!`], and [`collection::vec`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use std::ops::{Range, RangeInclusive};

#[doc(hidden)]
pub use rand as __rand;

/// Per-block configuration for a `proptest!` group.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps drawn values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Maps drawn values into a *strategy* and draws from it — the way to
    /// make one dimension of a case depend on another (e.g. a matrix whose
    /// shape is itself sampled).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample_value(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.sample_value(rng)).sample_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        self.0.sample_value(rng)
    }
}

/// Uniform choice among several equally weighted strategies
/// (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! requires at least one option"
        );
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample_value(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};

    /// Anything that can specify a collection size: a fixed `usize` or a
    /// `Range<usize>`.
    pub trait IntoSize {
        /// Draws a concrete size.
        fn sample_size(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSize for usize {
        fn sample_size(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSize for std::ops::Range<usize> {
        fn sample_size(&self, rng: &mut StdRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl IntoSize for std::ops::RangeInclusive<usize> {
        fn sample_size(&self, rng: &mut StdRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy, Z: IntoSize>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample_size(rng);
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, Union,
    };
}

/// Asserts a property, reporting the stringified condition on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random samples.
#[macro_export]
macro_rules! proptest {
    (@with_config ($config:expr)
     $($(#[$attr:meta])*
       fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                // Deterministic per-test seed: FNV-1a over the test name.
                let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
                for __b in stringify!($name).bytes() {
                    __seed ^= __b as u64;
                    __seed = __seed.wrapping_mul(0x0000_0100_0000_01B3);
                }
                let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
                for __case in 0..__config.cases {
                    let ($($pat,)+) =
                        ($($crate::Strategy::sample_value(&($strategy), &mut __rng),)+);
                    $body
                    let _ = __case;
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @with_config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @with_config (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..50).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn map_and_oneof(e in small_even(), pick in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(pick == 1 || pick == 2);
        }

        #[test]
        fn vec_lengths(v in collection::vec(0.0f32..1.0, 7usize), w in collection::vec(Just(3u8), 0usize..4)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(w.len() < 4);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_override_runs(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}
