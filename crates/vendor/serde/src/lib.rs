//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a compact value-tree serialization framework with the same *spelling* as
//! serde for everything the workspace uses: the [`Serialize`] /
//! [`Deserialize`] traits, `serde::de::DeserializeOwned`, and
//! `#[derive(Serialize, Deserialize)]` (including `#[serde(skip)]` and
//! `#[serde(transparent)]`).
//!
//! Instead of serde's visitor-based data model, types convert to and from a
//! JSON-shaped [`Value`] tree; the vendored `serde_json` crate renders and
//! parses that tree. The derive macro follows serde_json's conventions
//! (structs as objects, unit enum variants as strings, data-carrying
//! variants externally tagged), so persisted files look like ordinary
//! serde_json output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Number, Value};

/// Serialization/deserialization error: a message describing the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value of this type from the tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not describe this type.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field of this type is absent from the input.
    /// The default is an error; `Option<T>` overrides it to `None`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] unless the type tolerates absence.
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

/// Serializer-side namespace, mirroring serde's module layout.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Deserializer-side namespace, mirroring serde's module layout.
///
/// In this vendored implementation every [`Deserialize`](crate::Deserialize)
/// type owns its data, so `DeserializeOwned` is the same trait.
pub mod de {
    pub use crate::Deserialize;
    pub use crate::Deserialize as DeserializeOwned;
    pub use crate::Error;
}

/// Looks up a struct field in an object body and deserializes it; absent
/// fields delegate to [`Deserialize::missing_field`]. Used by derive-
/// generated code.
///
/// # Errors
///
/// Propagates the field's deserialization error.
pub fn de_field<T: Deserialize>(obj: &[(String, Value)], field: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == field) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| Error::custom(format!("field `{field}`: {e}")))
        }
        None => T::missing_field(field),
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Value::Number(Number::NegInt(*self as i64))
                } else {
                    Value::Number(Number::PosInt(*self as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_number().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                let (lo, hi) = (<$t>::MIN as i128, <$t>::MAX as i128);
                let raw: i128 = match n {
                    Number::PosInt(u) => u as i128,
                    Number::NegInt(i) => i as i128,
                    Number::Float(f) if f.fract() == 0.0 && f.is_finite() => f as i128,
                    _ => return Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                };
                if raw < lo || raw > hi {
                    return Err(Error::custom(concat!("integer out of range for ", stringify!($t))));
                }
                Ok(raw as $t)
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v.as_number() {
                    Some(Number::Float(f)) => Ok(f as $t),
                    Some(Number::PosInt(u)) => Ok(u as $t),
                    Some(Number::NegInt(i)) => Ok(i as $t),
                    None => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("non-empty")),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            _ => Err(Error::custom(format!("expected array of length {N}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(Error::custom("expected 3-element array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort the keys.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
