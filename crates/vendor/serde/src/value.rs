//! The JSON-shaped value tree shared by the vendored serde and serde_json.

/// A JSON number, kept in exact integer form when possible so that `u64`
/// seeds and counters round-trip losslessly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (serde_json's default also iterates in
/// insertion order for small models); lookup is linear, which is fine for
/// the struct-sized objects this workspace serializes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key–value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The number payload, if this is a number.
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object body, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array body, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.as_number()? {
            Number::PosInt(n) => Some(n),
            _ => None,
        }
    }

    /// The number as `f64` (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self.as_number()? {
            Number::PosInt(n) => Some(n as f64),
            Number::NegInt(n) => Some(n as f64),
            Number::Float(f) => Some(f),
        }
    }
}

/// Shared `Null` for out-of-range / missing-key indexing.
static NULL: Value = Value::Null;

/// `value["key"]` object lookup, yielding `Null` for misses and
/// non-objects — upstream serde_json's indexing semantics, so tests read
/// naturally.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]` array lookup, yielding `Null` for out-of-range and
/// non-arrays.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        match self.as_number() {
            Some(Number::PosInt(n)) => i64::from(*other) == n as i64 && *other >= 0,
            Some(Number::NegInt(n)) => i64::from(*other) == n,
            _ => false,
        }
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}
