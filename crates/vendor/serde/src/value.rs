//! The JSON-shaped value tree shared by the vendored serde and serde_json.

/// A JSON number, kept in exact integer form when possible so that `u64`
/// seeds and counters round-trip losslessly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (serde_json's default also iterates in
/// insertion order for small models); lookup is linear, which is fine for
/// the struct-sized objects this workspace serializes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key–value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The number payload, if this is a number.
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object body, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array body, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}
