//! Offline vendored micro-benchmark harness exposing the criterion API
//! surface this workspace uses: [`Criterion`], benchmark groups,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology (simplified from upstream criterion): after a warm-up that
//! estimates the per-iteration cost, each benchmark takes `sample_size`
//! samples, each timing a batch of iterations sized so the whole
//! measurement fits `measurement_time`; the median, minimum, and maximum
//! per-iteration times are reported. When a throughput is declared, the
//! median sample is also reported as elements per second.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] inputs are grouped. The vendored harness
/// always materializes per-iteration inputs ahead of timing, so the variants
/// only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch as many as needed.
    SmallInput,
    /// Inputs are large; prefer smaller batches.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Declared work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark configuration and registry.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark (builder form).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the time budget for one benchmark's measurement phase
    /// (builder form).
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, self.measurement_time, None, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Overrides the measurement time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the per-iteration workload of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(
            &full,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    /// Closes the group (upstream criterion finalizes reports here).
    pub fn finish(self) {}
}

/// Times the body of one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `iters` calls of `routine` over inputs built by `setup`,
    /// excluding setup cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up: find how many iterations fit ~1/10 of the budget.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warmup_budget = measurement_time / 10;
    let warmup_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warmup_start.elapsed() < warmup_budget {
        f(&mut bencher);
        per_iter = bencher.elapsed.max(Duration::from_nanos(1)) / bencher.iters as u32;
        let target = per_iter.max(Duration::from_nanos(1));
        bencher.iters = (bencher.iters * 2)
            .min((warmup_budget.as_nanos() / target.as_nanos().max(1)) as u64)
            .max(bencher.iters + 1);
    }

    // Measurement: sample_size samples sharing the time budget.
    let sample_budget = measurement_time / sample_size as u32;
    let iters_per_sample = ((sample_budget.as_nanos() / per_iter.as_nanos().max(1)) as u64).max(1);
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.iters = iters_per_sample;
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let fmt = |s: f64| format_time(Duration::from_secs_f64(s));
    let mut line = format!(
        "{name:<50} time: [{} {} {}]",
        fmt(min),
        fmt(median),
        fmt(max)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = count as f64 / median;
        line.push_str(&format!("  thrpt: {rate:.0} {unit}/s"));
    }
    println!("{line}");
}

/// Declares a benchmark group function, in either the simple or the
/// configured form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        quick().bench_function("counting", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_batched_setup() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(Duration::from_nanos(12)).contains("ns"));
        assert!(format_time(Duration::from_micros(12)).contains("µs"));
        assert!(format_time(Duration::from_millis(12)).contains("ms"));
        assert!(format_time(Duration::from_secs(2)).contains(" s"));
    }
}
