//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! serde crate.
//!
//! Implements derive generation for the shapes this workspace uses, with a
//! hand-rolled token parser (no `syn`/`quote` available offline):
//!
//! - structs with named fields, honoring `#[serde(skip)]` (skipped on
//!   serialize, `Default::default()` on deserialize) and
//!   `#[serde(transparent)]`;
//! - tuple structs (single field = newtype semantics, several = array);
//! - enums with unit, tuple, and struct variants, externally tagged exactly
//!   like serde_json (`"Variant"`, `{"Variant": payload}`).
//!
//! Generics are intentionally unsupported — the parser raises a compile
//! error naming the offending type, rather than silently emitting wrong
//! code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug, Clone)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        transparent: bool,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes leading attributes; returns (has_serde_skip, has_serde_transparent).
fn take_attrs(
    tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> (bool, bool) {
    let mut skip = false;
    let mut transparent = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    let body = g.stream().to_string().replace(' ', "");
                    if body.starts_with("serde(") {
                        if body.contains("skip") {
                            skip = true;
                        }
                        if body.contains("transparent") {
                            transparent = true;
                        }
                    }
                } else {
                    panic!("malformed attribute");
                }
            }
            _ => return (skip, transparent),
        }
    }
}

fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Consumes one type, tracking `<`/`>` nesting, stopping after a top-level
/// comma (consumed) or at end of stream.
fn skip_type(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut depth = 0i32;
    for tt in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut tokens = group.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let (skip, _) = take_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected `:` after field `{name}`, got {other:?}"),
                }
                skip_type(&mut tokens);
                fields.push(Field { name, skip });
            }
            None => return fields,
            other => panic!("unexpected token in struct body: {other:?}"),
        }
    }
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tt in group {
        any = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut tokens = group.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _ = take_attrs(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let fields = match tokens.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let g = match tokens.next() {
                            Some(TokenTree::Group(g)) => g,
                            _ => unreachable!(),
                        };
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let g = match tokens.next() {
                            Some(TokenTree::Group(g)) => g,
                            _ => unreachable!(),
                        };
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    _ => Fields::Unit,
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == ',' {
                        tokens.next();
                    }
                }
                variants.push(Variant { name, fields });
            }
            None => return variants,
            other => panic!("unexpected token in enum body: {other:?}"),
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let (_, transparent) = take_attrs(&mut tokens);
    skip_visibility(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic type `{name}`");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body for `{name}`: {other:?}"),
            };
            Item::Struct {
                name,
                transparent,
                fields,
            }
        }
        "enum" => {
            let variants = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("unexpected enum body for `{name}`: {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

fn named_ser_body(fields: &[Field], access_prefix: &str) -> String {
    let mut code = String::from("let mut fields: Vec<(String, serde::Value)> = Vec::new();\n");
    for f in fields.iter().filter(|f| !f.skip) {
        code.push_str(&format!(
            "fields.push((String::from(\"{n}\"), serde::Serialize::to_value({p}{n})));\n",
            n = f.name,
            p = access_prefix,
        ));
    }
    code.push_str("serde::Value::Object(fields)");
    code
}

fn named_de_ctor(type_path: &str, fields: &[Field]) -> String {
    let mut code = format!(
        "{{ let obj = __v.as_object().ok_or_else(|| serde::Error::custom(\"expected object for `{type_path}`\"))?;\nOk({type_path} {{\n"
    );
    for f in fields {
        if f.skip {
            code.push_str(&format!("{}: Default::default(),\n", f.name));
        } else {
            code.push_str(&format!(
                "{n}: serde::de_field(obj, \"{n}\")?,\n",
                n = f.name
            ));
        }
    }
    code.push_str("}) }");
    code
}

/// Derives the vendored `serde::Serialize` for structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct {
            name,
            transparent,
            fields,
        } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let active: Vec<&Field> = fs.iter().filter(|f| !f.skip).collect();
                    if *transparent && active.len() == 1 {
                        format!("serde::Serialize::to_value(&self.{})", active[0].name)
                    } else {
                        named_ser_body(fs, "&self.")
                    }
                }
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "serde::Value::Null".to_string(),
            };
            format!(
                "impl serde::Serialize for {name} {{\n fn to_value(&self) -> serde::Value {{\n {body}\n }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{v} => serde::Value::String(String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => serde::Value::Object(vec![(String::from(\"{v}\"), serde::Serialize::to_value(__f0))]),\n",
                        v = v.name
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => serde::Value::Object(vec![(String::from(\"{v}\"), serde::Value::Array(vec![{items}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            items = items.join(", "),
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<String> =
                            fs.iter().map(|f| f.name.clone()).collect();
                        let body = named_ser_body(fs, "");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => serde::Value::Object(vec![(String::from(\"{v}\"), {{ {body} }})]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n fn to_value(&self) -> serde::Value {{\n match self {{\n {arms} }}\n }}\n}}"
            )
        }
    };
    code.parse().expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize` for structs and enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct {
            name,
            transparent,
            fields,
        } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let active: Vec<&Field> = fs.iter().filter(|f| !f.skip).collect();
                    if *transparent && active.len() == 1 {
                        let mut parts = String::from("Ok(Self {\n");
                        for f in fs {
                            if f.skip {
                                parts.push_str(&format!("{}: Default::default(),\n", f.name));
                            } else {
                                parts.push_str(&format!(
                                    "{}: serde::Deserialize::from_value(__v)?,\n",
                                    f.name
                                ));
                            }
                        }
                        parts.push_str("})");
                        parts
                    } else {
                        named_de_ctor(name, fs)
                    }
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    let mut parts = format!(
                        "{{ let items = __v.as_array().ok_or_else(|| serde::Error::custom(\"expected array for `{name}`\"))?;\nif items.len() != {n} {{ return Err(serde::Error::custom(\"wrong tuple length for `{name}`\")); }}\nOk({name}(\n"
                    );
                    for i in 0..*n {
                        parts.push_str(&format!("serde::Deserialize::from_value(&items[{i}])?,\n"));
                    }
                    parts.push_str(")) }");
                    parts
                }
                Fields::Unit => format!(
                    "match __v {{ serde::Value::Null => Ok({name}), _ => Err(serde::Error::custom(\"expected null for unit struct `{name}`\")) }}"
                ),
            };
            format!(
                "impl serde::Deserialize for {name} {{\n fn from_value(__v: &serde::Value) -> ::core::result::Result<Self, serde::Error> {{\n {body}\n }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n", v = v.name))
                    }
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{v}\" => Ok({name}::{v}(serde::Deserialize::from_value(_payload)?)),\n",
                        v = v.name
                    )),
                    Fields::Tuple(n) => {
                        let mut parts = format!(
                            "\"{v}\" => {{ let items = _payload.as_array().ok_or_else(|| serde::Error::custom(\"expected array payload for `{name}::{v}`\"))?;\nif items.len() != {n} {{ return Err(serde::Error::custom(\"wrong payload length for `{name}::{v}`\")); }}\nOk({name}::{v}(\n",
                            v = v.name
                        );
                        for i in 0..*n {
                            parts.push_str(&format!(
                                "serde::Deserialize::from_value(&items[{i}])?,\n"
                            ));
                        }
                        parts.push_str(")) }\n");
                        data_arms.push_str(&parts);
                    }
                    Fields::Named(fs) => {
                        let ctor = named_de_ctor(&format!("{name}::{v}", v = v.name), fs)
                            .replace("__v.as_object()", "_payload.as_object()");
                        data_arms.push_str(&format!("\"{v}\" => {ctor},\n", v = v.name));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n fn from_value(__v: &serde::Value) -> ::core::result::Result<Self, serde::Error> {{\n match __v {{\n serde::Value::String(__s) => match __s.as_str() {{\n {unit_arms} __other => Err(serde::Error::custom(format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n }},\n serde::Value::Object(__entries) if __entries.len() == 1 => {{\n let (__tag, _payload) = &__entries[0];\n match __tag.as_str() {{\n {data_arms} __other => Err(serde::Error::custom(format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n }}\n }},\n _ => Err(serde::Error::custom(\"expected variant string or single-key object for `{name}`\")),\n }}\n }}\n}}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl must parse")
}
