//! Offline vendored stand-in for the `rand_distr` crate: the [`Normal`] and
//! [`LogNormal`] distributions over `f64`, sampled via Box–Muller.
//!
//! Only the surface this workspace uses is provided; see the vendored
//! `rand` crate for the rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{Rng, RngCore};

/// A distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// Gaussian distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when a parameter is non-finite or the standard
    /// deviation is negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0 {
            Ok(Self { mean, std_dev })
        } else {
            Err(Error)
        }
    }

    /// The location parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The scale parameter.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; u1 is kept away from 0 so ln() stays finite.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates the distribution from the parameters of the underlying normal.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when a parameter is non-finite or `sigma` is
    /// negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(Self {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_parameters_error() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Normal::new(3.0, 2.0).unwrap();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut rng = StdRng::seed_from_u64(12);
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[n / 2];
        // Median of LogNormal(mu, sigma) is e^mu.
        assert!(
            (median - std::f64::consts::E).abs() < 0.05,
            "median {median}"
        );
        assert!(xs.iter().all(|&x| x > 0.0));
    }
}
