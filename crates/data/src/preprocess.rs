//! Preprocessing: sensor noise injection, moving-average smoothing, and
//! feature normalization.

use pinnsoc_battery::SimRecord;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Gaussian sensor-noise magnitudes applied to generated records.
///
/// Real dataset measurements carry sensor noise; the generators add it so
/// the moving-average preprocessing of §IV-B has something real to remove.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Voltage noise standard deviation, volts.
    pub voltage_std: f64,
    /// Current noise standard deviation, amps.
    pub current_std: f64,
    /// Temperature noise standard deviation, °C.
    pub temperature_std: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        // Typical BMS front-end: ±5 mV, ±30 mA, ±0.2 °C.
        Self {
            voltage_std: 0.005,
            current_std: 0.03,
            temperature_std: 0.2,
        }
    }
}

impl NoiseConfig {
    /// Noise-free configuration (for deterministic tests).
    pub fn none() -> Self {
        Self {
            voltage_std: 0.0,
            current_std: 0.0,
            temperature_std: 0.0,
        }
    }

    /// Applies noise to one record (SoC ground truth stays exact).
    pub fn corrupt(&self, record: &SimRecord, rng: &mut impl Rng) -> SimRecord {
        let mut out = *record;
        out.voltage_v += gaussian(rng) * self.voltage_std;
        out.current_a += gaussian(rng) * self.current_std;
        out.temperature_c += gaussian(rng) * self.temperature_std;
        out
    }
}

fn gaussian(rng: &mut impl Rng) -> f64 {
    // Box–Muller; avoids pulling rand_distr into this crate's public deps.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Centered-causal moving average over V, I, and T with the given window
/// (seconds). Time and ground-truth SoC are untouched.
///
/// This is the paper's LG preprocessing: "we added a moving average of 30s
/// ... that smooths the I, V, and T values and removes noisy peaks"
/// (§IV-B). A trailing (causal) window is used, as a BMS would.
///
/// # Panics
///
/// Panics if `window_s` is not positive or `dt_s` is not positive.
pub fn moving_average(records: &[SimRecord], dt_s: f64, window_s: f64) -> Vec<SimRecord> {
    assert!(
        dt_s > 0.0 && window_s > 0.0,
        "window and step must be positive"
    );
    let w = (window_s / dt_s).round().max(1.0) as usize;
    let mut out = Vec::with_capacity(records.len());
    let mut sum_v = 0.0;
    let mut sum_i = 0.0;
    let mut sum_t = 0.0;
    for (idx, r) in records.iter().enumerate() {
        sum_v += r.voltage_v;
        sum_i += r.current_a;
        sum_t += r.temperature_c;
        if idx >= w {
            let old = &records[idx - w];
            sum_v -= old.voltage_v;
            sum_i -= old.current_a;
            sum_t -= old.temperature_c;
        }
        let n = (idx + 1).min(w) as f64;
        let mut smoothed = *r;
        smoothed.voltage_v = sum_v / n;
        smoothed.current_a = sum_i / n;
        smoothed.temperature_c = sum_t / n;
        out.push(smoothed);
    }
    out
}

/// Per-feature affine normalizer (`x → (x − mean) / std`).
///
/// Fit on training features only; applied everywhere, as is standard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Normalizer {
    /// Fits mean/std per column over an iterator of feature rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows have inconsistent lengths.
    pub fn fit<'a>(rows: impl IntoIterator<Item = &'a [f64]> + Clone) -> Self {
        let mut count = 0usize;
        let mut means: Vec<f64> = Vec::new();
        for row in rows.clone() {
            if means.is_empty() {
                means = vec![0.0; row.len()];
            }
            assert_eq!(row.len(), means.len(), "inconsistent feature width");
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
            count += 1;
        }
        assert!(count > 0, "cannot fit a normalizer on zero rows");
        for m in &mut means {
            *m /= count as f64;
        }
        let mut vars = vec![0.0; means.len()];
        for row in rows {
            for ((v, &m), &x) in vars.iter_mut().zip(&means).zip(row) {
                *v += (x - m) * (x - m);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| (v / count as f64).sqrt().max(1e-9))
            .collect();
        Self { means, stds }
    }

    /// Number of features.
    pub fn width(&self) -> usize {
        self.means.len()
    }

    /// The fitted per-feature `(means, stds)` — for callers that hoist the
    /// constants out of a hot loop and apply `(x − mean) / std` themselves
    /// (the exact per-element operation sequence of [`Self::normalize`],
    /// so results stay bit-identical).
    pub fn stats(&self) -> (&[f64], &[f64]) {
        (&self.means, &self.stds)
    }

    /// Normalizes a feature row in place.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match.
    pub fn normalize(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.width(), "feature width mismatch");
        for ((x, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = (*x - m) / s;
        }
    }

    /// Returns a normalized copy of a row.
    pub fn normalized(&self, row: &[f64]) -> Vec<f64> {
        let mut out = row.to_vec();
        self.normalize(&mut out);
        out
    }

    /// Inverts the normalization of a row in place.
    pub fn denormalize(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.width(), "feature width mismatch");
        for ((x, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = *x * s + m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn records(n: usize) -> Vec<SimRecord> {
        (0..n)
            .map(|i| SimRecord {
                time_s: i as f64,
                voltage_v: 3.5 + 0.01 * (i % 2) as f64,
                current_a: if i % 2 == 0 { 1.0 } else { 3.0 },
                temperature_c: 25.0,
                soc: 1.0 - i as f64 * 0.01,
            })
            .collect()
    }

    #[test]
    fn moving_average_smooths_alternation() {
        let rs = records(100);
        let smoothed = moving_average(&rs, 1.0, 10.0);
        // After the warm-up the alternating current averages to 2.0.
        assert!((smoothed[50].current_a - 2.0).abs() < 0.11);
        // SoC and time are untouched.
        assert_eq!(smoothed[50].soc, rs[50].soc);
        assert_eq!(smoothed[50].time_s, rs[50].time_s);
    }

    #[test]
    fn moving_average_warmup_uses_partial_window() {
        let rs = records(5);
        let smoothed = moving_average(&rs, 1.0, 3.0);
        assert_eq!(smoothed[0].current_a, 1.0);
        assert!((smoothed[1].current_a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn window_of_one_sample_is_identity() {
        let rs = records(10);
        let smoothed = moving_average(&rs, 1.0, 1.0);
        assert_eq!(smoothed, rs);
    }

    #[test]
    fn noise_perturbs_measurements_not_labels() {
        let rs = records(3);
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = NoiseConfig::default().corrupt(&rs[0], &mut rng);
        assert_ne!(noisy.voltage_v, rs[0].voltage_v);
        assert_eq!(noisy.soc, rs[0].soc);
        assert_eq!(noisy.time_s, rs[0].time_s);
    }

    #[test]
    fn zero_noise_is_identity() {
        let rs = records(1);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(NoiseConfig::none().corrupt(&rs[0], &mut rng), rs[0]);
    }

    #[test]
    fn normalizer_zero_mean_unit_std() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let norm = Normalizer::fit(refs.iter().copied());
        let mut mean = [0.0, 0.0];
        let mut var = [0.0, 0.0];
        for r in &rows {
            let n = norm.normalized(r);
            mean[0] += n[0];
            mean[1] += n[1];
            var[0] += n[0] * n[0];
            var[1] += n[1] * n[1];
        }
        assert!(mean[0].abs() < 1e-9 && mean[1].abs() < 1e-9);
        assert!((var[0] / 3.0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_denormalize_roundtrip() {
        let rows: Vec<Vec<f64>> = vec![vec![2.0, -1.0], vec![4.0, 5.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let norm = Normalizer::fit(refs.iter().copied());
        let mut row = vec![3.3, 2.2];
        let original = row.clone();
        norm.normalize(&mut row);
        norm.denormalize(&mut row);
        assert!((row[0] - original[0]).abs() < 1e-9);
        assert!((row[1] - original[1]).abs() < 1e-9);
    }

    #[test]
    fn constant_feature_does_not_divide_by_zero() {
        let rows: Vec<Vec<f64>> = vec![vec![7.0], vec![7.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let norm = Normalizer::fit(refs.iter().copied());
        let n = norm.normalized(&[7.0]);
        assert!(n[0].is_finite());
    }
}
