//! Dataset containers: cycles of sensor records with provenance metadata.

use pinnsoc_battery::SimRecord;
use pinnsoc_cycles::DriveSchedule;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of load produced a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CycleKind {
    /// Sandia-protocol lab cycle with the given discharge C-rate.
    Lab {
        /// Discharge C-rate (positive).
        discharge_c: f64,
    },
    /// A single repeated driving schedule (LG test cycles).
    Drive(DriveSchedule),
    /// A mixed cycle composed of several schedules (LG train cycles).
    Mixed {
        /// Index of the mixed cycle within its dataset (1-based, as in
        /// "MIXED8").
        index: u8,
    },
}

impl fmt::Display for CycleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleKind::Lab { discharge_c } => write!(f, "LAB-{discharge_c:.1}C"),
            CycleKind::Drive(s) => write!(f, "{s}"),
            CycleKind::Mixed { index } => write!(f, "MIXED{index}"),
        }
    }
}

/// Provenance of one cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleMeta {
    /// Load kind.
    pub kind: CycleKind,
    /// Ambient temperature during the cycle, °C.
    pub ambient_c: f64,
    /// Chemistry label (e.g. "NMC", "LG-HG2").
    pub cell: String,
    /// Rated capacity of the cycled cell, amp-hours (`C_rated` in the
    /// paper's Eq. 1 — per-battery, since the Sandia chemistries differ).
    pub capacity_ah: f64,
}

impl fmt::Display for CycleMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{:.0}C[{}]", self.kind, self.ambient_c, self.cell)
    }
}

/// One contiguous, uniformly sampled cycle of measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cycle {
    /// Provenance.
    pub meta: CycleMeta,
    /// Sampling interval, seconds.
    pub dt_s: f64,
    /// Measurement records, oldest first.
    pub records: Vec<SimRecord>,
}

impl Cycle {
    /// Creates a cycle, validating uniform non-empty sampling.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty or `dt_s` is not positive.
    pub fn new(meta: CycleMeta, dt_s: f64, records: Vec<SimRecord>) -> Self {
        assert!(dt_s > 0.0, "sampling interval must be positive");
        assert!(
            !records.is_empty(),
            "cycle must contain at least one record"
        );
        Self {
            meta,
            dt_s,
            records,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the cycle holds no records (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Duration covered by the records, seconds.
    pub fn duration_s(&self) -> f64 {
        self.records.len() as f64 * self.dt_s
    }

    /// SoC of the last record.
    pub fn final_soc(&self) -> f64 {
        self.records.last().expect("non-empty").soc
    }
}

/// A train/test split of cycles — one per paper dataset (Sandia or LG).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocDataset {
    /// Human-readable dataset name ("sandia", "lg").
    pub name: String,
    /// Training cycles.
    pub train: Vec<Cycle>,
    /// Held-out test cycles.
    pub test: Vec<Cycle>,
}

impl SocDataset {
    /// Total number of training records.
    pub fn train_len(&self) -> usize {
        self.train.iter().map(Cycle::len).sum()
    }

    /// Total number of test records.
    pub fn test_len(&self) -> usize {
        self.test.iter().map(Cycle::len).sum()
    }

    /// Test cycles at (approximately) the given ambient temperature.
    pub fn test_at_temperature(&self, ambient_c: f64) -> Vec<&Cycle> {
        self.test
            .iter()
            .filter(|c| (c.meta.ambient_c - ambient_c).abs() < 0.5)
            .collect()
    }

    /// All distinct currents in the training set (used by the physics
    /// sampler to mirror the dataset's current conditions, §III-B).
    pub fn train_currents(&self) -> Vec<f64> {
        self.train
            .iter()
            .flat_map(|c| c.records.iter().map(|r| r.current_a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: f64, soc: f64) -> SimRecord {
        SimRecord {
            time_s: t,
            voltage_v: 3.7,
            current_a: 1.0,
            temperature_c: 25.0,
            soc,
        }
    }

    fn meta() -> CycleMeta {
        CycleMeta {
            kind: CycleKind::Lab { discharge_c: 1.0 },
            ambient_c: 25.0,
            cell: "NMC".into(),
            capacity_ah: 3.0,
        }
    }

    #[test]
    fn cycle_basic_accessors() {
        let c = Cycle::new(meta(), 120.0, vec![record(120.0, 0.9), record(240.0, 0.8)]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.duration_s(), 240.0);
        assert_eq!(c.final_soc(), 0.8);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_cycle_panics() {
        let _ = Cycle::new(meta(), 1.0, vec![]);
    }

    #[test]
    fn kind_display() {
        assert_eq!(CycleKind::Lab { discharge_c: 2.0 }.to_string(), "LAB-2.0C");
        assert_eq!(CycleKind::Mixed { index: 8 }.to_string(), "MIXED8");
        assert_eq!(CycleKind::Drive(DriveSchedule::Us06).to_string(), "US06");
    }

    #[test]
    fn dataset_temperature_filter() {
        let mut meta0 = meta();
        meta0.ambient_c = 0.0;
        let ds = SocDataset {
            name: "t".into(),
            train: vec![],
            test: vec![
                Cycle::new(meta(), 1.0, vec![record(1.0, 0.5)]),
                Cycle::new(meta0, 1.0, vec![record(1.0, 0.5)]),
            ],
        };
        assert_eq!(ds.test_at_temperature(25.0).len(), 1);
        assert_eq!(ds.test_at_temperature(0.0).len(), 1);
        assert_eq!(ds.test_at_temperature(40.0).len(), 0);
        assert_eq!(ds.test_len(), 2);
    }

    #[test]
    fn train_currents_flattened() {
        let ds = SocDataset {
            name: "t".into(),
            train: vec![Cycle::new(
                meta(),
                1.0,
                vec![record(1.0, 0.5), record(2.0, 0.4)],
            )],
            test: vec![],
        };
        assert_eq!(ds.train_currents(), vec![1.0, 1.0]);
        assert_eq!(ds.train_len(), 2);
    }
}
