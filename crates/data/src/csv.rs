//! CSV import/export of cycles — the bridge to real measured data.
//!
//! The synthetic generators stand in for the paper's datasets, but a user
//! with access to the actual Sandia or LG files (or their own cycler logs)
//! can load them through this module and train on measurements instead.
//! Format: a header line `time_s,voltage_v,current_a,temperature_c,soc`
//! followed by one row per record.

use crate::dataset::{Cycle, CycleMeta};
use pinnsoc_battery::SimRecord;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Error loading a cycle from CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Filesystem failure.
    Io(io::Error),
    /// Structural problem with the file contents.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "cycle CSV I/O failed: {e}"),
            CsvError::Parse { line, message } => {
                write!(f, "cycle CSV parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

const HEADER: &str = "time_s,voltage_v,current_a,temperature_c,soc";

/// Serializes a cycle's records as CSV.
pub fn cycle_to_csv(cycle: &Cycle) -> String {
    let mut out = String::with_capacity(cycle.len() * 48 + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for r in &cycle.records {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            r.time_s, r.voltage_v, r.current_a, r.temperature_c, r.soc
        ));
    }
    out
}

/// Writes a cycle to a CSV file.
///
/// # Errors
///
/// Returns [`CsvError::Io`] on filesystem failure.
pub fn write_cycle_csv(cycle: &Cycle, path: impl AsRef<Path>) -> Result<(), CsvError> {
    fs::write(path, cycle_to_csv(cycle))?;
    Ok(())
}

/// Parses a cycle from CSV text, attaching the given metadata. The sampling
/// interval is inferred from the first two rows.
///
/// # Errors
///
/// Returns [`CsvError::Parse`] on a bad header, malformed row, non-finite
/// value, out-of-range SoC, or non-uniform sampling (tolerance 1 %).
pub fn cycle_from_csv(text: &str, meta: CycleMeta) -> Result<Cycle, CsvError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        Some((_, h)) => {
            return Err(CsvError::Parse {
                line: 1,
                message: format!("expected header `{HEADER}`, found `{}`", h.trim()),
            })
        }
        None => {
            return Err(CsvError::Parse {
                line: 1,
                message: "empty file".into(),
            })
        }
    }
    let mut records = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 5 {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("expected 5 fields, found {}", fields.len()),
            });
        }
        let mut values = [0.0f64; 5];
        for (k, field) in fields.iter().enumerate() {
            values[k] = field.trim().parse().map_err(|e| CsvError::Parse {
                line: line_no,
                message: format!("field {}: {e}", k + 1),
            })?;
            if !values[k].is_finite() {
                return Err(CsvError::Parse {
                    line: line_no,
                    message: format!("field {} is not finite", k + 1),
                });
            }
        }
        if !(0.0..=1.0).contains(&values[4]) {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("soc {} outside [0, 1]", values[4]),
            });
        }
        records.push(SimRecord {
            time_s: values[0],
            voltage_v: values[1],
            current_a: values[2],
            temperature_c: values[3],
            soc: values[4],
        });
    }
    if records.len() < 2 {
        return Err(CsvError::Parse {
            line: 1,
            message: "need at least two records to infer the sampling interval".into(),
        });
    }
    let dt = records[1].time_s - records[0].time_s;
    if dt <= 0.0 {
        return Err(CsvError::Parse {
            line: 3,
            message: "timestamps must be strictly increasing".into(),
        });
    }
    for (k, w) in records.windows(2).enumerate() {
        let step = w[1].time_s - w[0].time_s;
        if (step - dt).abs() > dt * 0.01 {
            return Err(CsvError::Parse {
                line: k + 3,
                message: format!("non-uniform sampling: {step} vs {dt}"),
            });
        }
    }
    Ok(Cycle::new(meta, dt, records))
}

/// Reads a cycle from a CSV file.
///
/// # Errors
///
/// See [`cycle_from_csv`]; additionally [`CsvError::Io`] if the file cannot
/// be read.
pub fn read_cycle_csv(path: impl AsRef<Path>, meta: CycleMeta) -> Result<Cycle, CsvError> {
    let text = fs::read_to_string(path)?;
    cycle_from_csv(&text, meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CycleKind;

    fn meta() -> CycleMeta {
        CycleMeta {
            kind: CycleKind::Lab { discharge_c: 1.0 },
            ambient_c: 25.0,
            cell: "NMC".into(),
            capacity_ah: 3.0,
        }
    }

    fn sample_cycle() -> Cycle {
        let records = (1..=4)
            .map(|k| SimRecord {
                time_s: k as f64 * 120.0,
                voltage_v: 4.0 - 0.05 * k as f64,
                current_a: 3.0,
                temperature_c: 25.0 + 0.1 * k as f64,
                soc: 1.0 - 0.03 * k as f64,
            })
            .collect();
        Cycle::new(meta(), 120.0, records)
    }

    #[test]
    fn roundtrip_preserves_records() {
        let cycle = sample_cycle();
        let csv = cycle_to_csv(&cycle);
        let back = cycle_from_csv(&csv, meta()).expect("parse");
        assert_eq!(back.records, cycle.records);
        assert_eq!(back.dt_s, cycle.dt_s);
    }

    #[test]
    fn file_roundtrip() {
        let cycle = sample_cycle();
        let dir = std::env::temp_dir().join("pinnsoc_csv_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle.csv");
        write_cycle_csv(&cycle, &path).expect("write");
        let back = read_cycle_csv(&path, meta()).expect("read");
        fs::remove_file(&path).ok();
        assert_eq!(back.records, cycle.records);
    }

    #[test]
    fn bad_header_rejected() {
        let err = cycle_from_csv("a,b,c\n1,2,3\n", meta()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn wrong_field_count_rejected() {
        let text = format!("{HEADER}\n120,3.9,3.0,25.0\n");
        let err = cycle_from_csv(&text, meta()).unwrap_err();
        assert!(err.to_string().contains("5 fields"));
    }

    #[test]
    fn out_of_range_soc_rejected() {
        let text = format!("{HEADER}\n120,3.9,3.0,25.0,1.5\n240,3.8,3.0,25.0,0.9\n");
        let err = cycle_from_csv(&text, meta()).unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn non_uniform_sampling_rejected() {
        let text =
            format!("{HEADER}\n120,3.9,3.0,25.0,0.9\n240,3.8,3.0,25.0,0.8\n500,3.7,3.0,25.0,0.7\n");
        let err = cycle_from_csv(&text, meta()).unwrap_err();
        assert!(err.to_string().contains("non-uniform"));
    }

    #[test]
    fn unparsable_number_points_at_line_and_field() {
        let text = format!("{HEADER}\n120,3.9,xyz,25.0,0.9\n240,3.8,3.0,25.0,0.8\n");
        let err = cycle_from_csv(&text, meta()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2") && msg.contains("field 3"), "{msg}");
    }

    #[test]
    fn blank_lines_ignored() {
        let text = format!("{HEADER}\n120,3.9,3.0,25.0,0.9\n\n240,3.8,3.0,25.0,0.8\n");
        let cycle = cycle_from_csv(&text, meta()).expect("parse");
        assert_eq!(cycle.len(), 2);
    }
}
