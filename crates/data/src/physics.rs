//! Label-free physics batch sampling for the PINN loss (§III-B).
//!
//! For each minibatch of real data, the paper evaluates the Coulomb-counting
//! equation (Eq. 1) on "a set of different, randomly generated values of
//! initial SoC, current, and time delta conditions", with currents matching
//! the dataset's current conditions and horizons `Np` drawn from a
//! configurable set 𝒩. No ground-truth labels are needed — the physics
//! equation *is* the label — which is what lets the PINN train across
//! horizons (and currents) absent from the data.
//!
//! Each draw picks a training record, inheriting its temperature and its
//! cycle's rated capacity (`C_rated` is per-battery; the Sandia chemistries
//! have different capacities). The current comes either from that record
//! ([`PhysicsCurrentMode::Pool`]) or from a uniform C-rate range
//! ([`PhysicsCurrentMode::CRateUniform`]) covering the dataset's documented
//! envelope — e.g. Sandia's 0.5C–3C (§IV-A).

use crate::dataset::SocDataset;
use crate::window::PredictionSample;
use pinnsoc_battery::{coulomb_predict, Soc};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the physics sampler draws currents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PhysicsCurrentMode {
    /// Use the drawn record's measured current (mirrors the empirical
    /// current distribution — suitable for drive-cycle datasets).
    Pool,
    /// Draw a C-rate uniformly in `[min_c, max_c]` and scale by the drawn
    /// cycle's rated capacity (covers the dataset's documented current
    /// envelope — suitable for lab-protocol datasets).
    CRateUniform {
        /// Lower C-rate bound (negative = charging).
        min_c: f64,
        /// Upper C-rate bound.
        max_c: f64,
    },
}

/// One pool entry: the per-record conditions a draw can inherit.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PoolEntry {
    current_a: f64,
    temperature_c: f64,
    capacity_ah: f64,
}

/// Samples label-free physics tuples matching a dataset's conditions.
#[derive(Debug, Clone)]
pub struct PhysicsSampler {
    pool: Vec<PoolEntry>,
    horizons_s: Vec<f64>,
    mode: PhysicsCurrentMode,
    rng: StdRng,
}

impl PhysicsSampler {
    /// Builds a sampler over the dataset's training records.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has no training records or `horizons_s` is
    /// empty or non-positive, or if a `CRateUniform` range is inverted.
    pub fn new(
        dataset: &SocDataset,
        horizons_s: Vec<f64>,
        mode: PhysicsCurrentMode,
        seed: u64,
    ) -> Self {
        assert!(!horizons_s.is_empty(), "horizon set must be non-empty");
        assert!(
            horizons_s.iter().all(|h| *h > 0.0),
            "horizons must be positive"
        );
        if let PhysicsCurrentMode::CRateUniform { min_c, max_c } = mode {
            assert!(min_c < max_c, "C-rate range must be non-empty");
        }
        let pool: Vec<PoolEntry> = dataset
            .train
            .iter()
            .flat_map(|c| {
                let capacity_ah = c.meta.capacity_ah;
                c.records.iter().map(move |r| PoolEntry {
                    current_a: r.current_a,
                    temperature_c: r.temperature_c,
                    capacity_ah,
                })
            })
            .collect();
        assert!(!pool.is_empty(), "dataset has no training records");
        Self {
            pool,
            horizons_s,
            mode,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The horizon set 𝒩.
    pub fn horizons_s(&self) -> &[f64] {
        &self.horizons_s
    }

    /// The current sampling mode.
    pub fn mode(&self) -> PhysicsCurrentMode {
        self.mode
    }

    /// Draws one label-free condition: uniform initial SoC plus
    /// dataset-derived current, temperature, and rated capacity.
    fn draw_condition(&mut self) -> (f64, f64, f64, f64) {
        let entry = self.pool[self.rng.gen_range(0..self.pool.len())];
        let soc_now: f64 = self.rng.gen_range(0.0..=1.0);
        let avg_current_a = match self.mode {
            PhysicsCurrentMode::Pool => entry.current_a,
            PhysicsCurrentMode::CRateUniform { min_c, max_c } => {
                self.rng.gen_range(min_c..=max_c) * entry.capacity_ah
            }
        };
        (
            soc_now,
            avg_current_a,
            entry.temperature_c,
            entry.capacity_ah,
        )
    }

    /// Completes a condition into a tuple at one horizon, with the
    /// Coulomb-counting target as `soc_next`.
    fn tuple_at(
        &self,
        (soc_now, avg_current_a, avg_temperature_c, capacity_ah): (f64, f64, f64, f64),
        horizon_s: f64,
    ) -> PredictionSample {
        let target = coulomb_predict(Soc::clamped(soc_now), avg_current_a, horizon_s, capacity_ah);
        PredictionSample {
            soc_now,
            avg_current_a,
            avg_temperature_c,
            horizon_s,
            soc_next: target.value(),
        }
    }

    /// Draws one physics tuple: uniform initial SoC, dataset-derived
    /// conditions, a horizon from 𝒩, and the Coulomb-counting target as
    /// `soc_next`.
    pub fn sample(&mut self) -> PredictionSample {
        let condition = self.draw_condition();
        let horizon_s = self.horizons_s[self.rng.gen_range(0..self.horizons_s.len())];
        self.tuple_at(condition, horizon_s)
    }

    /// Draws a batch of at least `n` physics tuples, stratified over the
    /// horizon set: each drawn `(SoC, I, T)` condition is expanded across
    /// *every* horizon in 𝒩. The paired tuples differ only in `Np`, which
    /// gives the optimizer a direct, low-variance signal for ∂SoC/∂N — the
    /// quantity the physics loss exists to teach — instead of relying on
    /// horizon contrasts to emerge across independent draws.
    pub fn sample_batch(&mut self, n: usize) -> Vec<PredictionSample> {
        let mut out = Vec::new();
        self.sample_batch_into(n, &mut out);
        out
    }

    /// [`PhysicsSampler::sample_batch`] into a caller-owned vector (cleared
    /// first), avoiding the per-step allocation — the steady-state training
    /// loop draws one physics batch per minibatch, so the buffer is reused
    /// across every step. Draw order (and therefore the RNG stream) is
    /// identical to [`PhysicsSampler::sample_batch`].
    pub fn sample_batch_into(&mut self, n: usize, out: &mut Vec<PredictionSample>) {
        out.clear();
        let k = self.horizons_s.len();
        let conditions = n.div_ceil(k);
        out.reserve(conditions * k);
        for _ in 0..conditions {
            let condition = self.draw_condition();
            for i in 0..k {
                out.push(self.tuple_at(condition, self.horizons_s[i]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Cycle, CycleKind, CycleMeta};
    use pinnsoc_battery::SimRecord;

    fn tiny_dataset() -> SocDataset {
        let records = vec![
            SimRecord {
                time_s: 1.0,
                voltage_v: 3.7,
                current_a: 3.0,
                temperature_c: 25.0,
                soc: 0.9,
            },
            SimRecord {
                time_s: 2.0,
                voltage_v: 3.6,
                current_a: 6.0,
                temperature_c: 24.0,
                soc: 0.8,
            },
        ];
        SocDataset {
            name: "t".into(),
            train: vec![Cycle::new(
                CycleMeta {
                    kind: CycleKind::Lab { discharge_c: 1.0 },
                    ambient_c: 25.0,
                    cell: "NMC".into(),
                    capacity_ah: 3.0,
                },
                1.0,
                records,
            )],
            test: vec![],
        }
    }

    #[test]
    fn pool_mode_mirrors_dataset() {
        let ds = tiny_dataset();
        let mut sampler = PhysicsSampler::new(&ds, vec![120.0], PhysicsCurrentMode::Pool, 1);
        for _ in 0..50 {
            let s = sampler.sample();
            assert!(s.avg_current_a == 3.0 || s.avg_current_a == 6.0);
            assert!(s.avg_temperature_c == 25.0 || s.avg_temperature_c == 24.0);
            assert_eq!(s.horizon_s, 120.0);
            assert!((0.0..=1.0).contains(&s.soc_now));
        }
    }

    #[test]
    fn crate_uniform_spans_the_range() {
        let ds = tiny_dataset();
        let mode = PhysicsCurrentMode::CRateUniform {
            min_c: -0.5,
            max_c: 3.0,
        };
        let mut sampler = PhysicsSampler::new(&ds, vec![120.0], mode, 2);
        let batch = sampler.sample_batch(500);
        // Capacity is 3 Ah, so currents span [-1.5, 9] A.
        assert!(batch
            .iter()
            .all(|s| (-1.5..=9.0).contains(&s.avg_current_a)));
        assert!(
            batch.iter().any(|s| s.avg_current_a < 0.0),
            "charging never sampled"
        );
        assert!(
            batch.iter().any(|s| s.avg_current_a > 6.0),
            "high rates never sampled"
        );
    }

    #[test]
    fn target_satisfies_coulomb_equation() {
        let ds = tiny_dataset();
        let mode = PhysicsCurrentMode::CRateUniform {
            min_c: -0.5,
            max_c: 3.0,
        };
        let mut sampler = PhysicsSampler::new(&ds, vec![60.0, 120.0], mode, 3);
        for s in sampler.sample_batch(100) {
            let expected =
                (s.soc_now - s.avg_current_a * s.horizon_s / (3600.0 * 3.0)).clamp(0.0, 1.0);
            assert!((s.soc_next - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn horizons_cover_the_whole_set() {
        let ds = tiny_dataset();
        let mut sampler =
            PhysicsSampler::new(&ds, vec![30.0, 50.0, 70.0], PhysicsCurrentMode::Pool, 3);
        let batch = sampler.sample_batch(300);
        for h in [30.0, 50.0, 70.0] {
            assert!(
                batch.iter().any(|s| s.horizon_s == h),
                "horizon {h} never sampled in 300 draws"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = tiny_dataset();
        let a = PhysicsSampler::new(&ds, vec![120.0], PhysicsCurrentMode::Pool, 7).sample_batch(10);
        let b = PhysicsSampler::new(&ds, vec![120.0], PhysicsCurrentMode::Pool, 7).sample_batch(10);
        assert_eq!(a, b);
    }

    #[test]
    fn sample_batch_into_matches_sample_batch_and_reuses_buffer() {
        let ds = tiny_dataset();
        let mut a = PhysicsSampler::new(&ds, vec![60.0, 120.0], PhysicsCurrentMode::Pool, 11);
        let mut b = a.clone();
        let mut buf = Vec::new();
        // Repeated draws through the reused buffer must track the
        // allocating path draw-for-draw (same RNG stream).
        for n in [10usize, 3, 16] {
            b.sample_batch_into(n, &mut buf);
            assert_eq!(a.sample_batch(n), buf);
        }
    }

    #[test]
    #[should_panic(expected = "horizon set must be non-empty")]
    fn empty_horizons_panic() {
        let ds = tiny_dataset();
        let _ = PhysicsSampler::new(&ds, vec![], PhysicsCurrentMode::Pool, 1);
    }

    #[test]
    #[should_panic(expected = "C-rate range")]
    fn inverted_range_panics() {
        let ds = tiny_dataset();
        let mode = PhysicsCurrentMode::CRateUniform {
            min_c: 3.0,
            max_c: -0.5,
        };
        let _ = PhysicsSampler::new(&ds, vec![120.0], mode, 1);
    }
}
