//! # pinnsoc-data
//!
//! Dataset layer of the `pinnsoc` workspace: synthetic equivalents of the
//! two public datasets the paper evaluates on, plus the preprocessing and
//! windowing that turn raw cycles into supervised samples for the
//! two-branch network.
//!
//! - [`sandia`] — lab-cycled 18650 cells (NCA/NMC/LFP), 120 s sampling,
//!   train at 1C discharge, test at 2C/3C (§IV-A).
//! - [`lg`] — LG HG2 cell driven by UDDS/HWFET/LA92/US06 and mixed cycles,
//!   30 s moving-average preprocessing (§IV-B).
//! - [`window`] — Branch-1 estimation samples and Branch-2 horizon pairs.
//! - [`physics`] — label-free Coulomb-counting batches for the PINN loss.
//!
//! ## Quick example
//!
//! ```no_run
//! use pinnsoc_data::{generate_lg, LgConfig, window};
//!
//! let dataset = generate_lg(&LgConfig::default());
//! let pairs = window::prediction_pairs_all(&dataset.train, 30.0);
//! assert!(!pairs.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod dataset;
pub mod lg;
pub mod physics;
pub mod preprocess;
pub mod sandia;
pub mod window;

pub use csv::{cycle_from_csv, cycle_to_csv, read_cycle_csv, write_cycle_csv, CsvError};
pub use dataset::{Cycle, CycleKind, CycleMeta, SocDataset};
pub use lg::{generate_lg, LgConfig};
pub use physics::{PhysicsCurrentMode, PhysicsSampler};
pub use preprocess::{moving_average, NoiseConfig, Normalizer};
pub use sandia::{generate_sandia, SandiaConfig};
pub use window::{
    estimation_samples, pipeline_samples, pipeline_samples_all, prediction_pairs,
    prediction_pairs_all, EstimationSample, PipelineSample, PredictionSample,
};
