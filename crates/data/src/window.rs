//! Windowing cycles into supervised samples for the two branches.
//!
//! - Branch 1 (estimation) learns `(V(t), I(t), T(t)) → SoC(t)`: every record
//!   is one sample.
//! - Branch 2 (prediction) learns
//!   `(SoC(t), Ī(t..t+N), T̄(t..t+N), N) → SoC(t+N)`: built here by sliding a
//!   window of `N` seconds over each cycle and averaging current and
//!   temperature inside it, exactly as §IV-A describes for the 240 s / 360 s
//!   test sets.

use crate::dataset::Cycle;
use serde::{Deserialize, Serialize};

/// One Branch-1 (SoC estimation) sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimationSample {
    /// Measured terminal voltage, volts.
    pub voltage_v: f64,
    /// Measured current, amps (positive = discharge).
    pub current_a: f64,
    /// Measured temperature, °C.
    pub temperature_c: f64,
    /// Ground-truth SoC label.
    pub soc: f64,
}

impl EstimationSample {
    /// Raw (unnormalized) feature vector in Branch-1 input order.
    pub fn features(&self) -> [f64; 3] {
        [self.voltage_v, self.current_a, self.temperature_c]
    }
}

/// One Branch-2 (SoC prediction) sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionSample {
    /// SoC at the window start (ground truth during training, §III-B).
    pub soc_now: f64,
    /// Average current over the horizon, amps.
    pub avg_current_a: f64,
    /// Average temperature over the horizon, °C.
    pub avg_temperature_c: f64,
    /// Prediction horizon, seconds.
    pub horizon_s: f64,
    /// Ground-truth SoC at the window end.
    pub soc_next: f64,
}

impl PredictionSample {
    /// Raw feature vector in Branch-2 input order
    /// `(SoC, Ī, T̄, N)`.
    pub fn features(&self) -> [f64; 4] {
        [
            self.soc_now,
            self.avg_current_a,
            self.avg_temperature_c,
            self.horizon_s,
        ]
    }
}

/// Extracts every record of a cycle as a Branch-1 sample.
pub fn estimation_samples(cycle: &Cycle) -> Vec<EstimationSample> {
    cycle
        .records
        .iter()
        .map(|r| EstimationSample {
            voltage_v: r.voltage_v,
            current_a: r.current_a,
            temperature_c: r.temperature_c,
            soc: r.soc,
        })
        .collect()
}

/// Builds Branch-2 samples for a horizon of `horizon_s` seconds by sliding a
/// window over the cycle and averaging current/temperature inside it.
///
/// Returns an empty vector if the cycle is shorter than the horizon.
///
/// # Panics
///
/// Panics if `horizon_s` is not a (near) positive multiple of the cycle's
/// sampling interval.
pub fn prediction_pairs(cycle: &Cycle, horizon_s: f64) -> Vec<PredictionSample> {
    assert!(horizon_s > 0.0, "horizon must be positive");
    let steps_f = horizon_s / cycle.dt_s;
    let steps = steps_f.round() as usize;
    assert!(
        steps >= 1 && (steps_f - steps as f64).abs() < 1e-6,
        "horizon {horizon_s}s is not a multiple of the sampling interval {}s",
        cycle.dt_s
    );
    let n = cycle.records.len();
    if n <= steps {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n - steps);
    // Prefix sums over current and temperature for O(1) window averages.
    let mut prefix_i = Vec::with_capacity(n + 1);
    let mut prefix_t = Vec::with_capacity(n + 1);
    prefix_i.push(0.0);
    prefix_t.push(0.0);
    for r in &cycle.records {
        prefix_i.push(prefix_i.last().unwrap() + r.current_a);
        prefix_t.push(prefix_t.last().unwrap() + r.temperature_c);
    }
    for start in 0..n - steps {
        let end = start + steps;
        // Average over the records *within* the horizon (exclusive of the
        // start sample, inclusive of the end), i.e. the load applied
        // between t and t+N.
        let avg_i = (prefix_i[end + 1] - prefix_i[start + 1]) / steps as f64;
        let avg_t = (prefix_t[end + 1] - prefix_t[start + 1]) / steps as f64;
        out.push(PredictionSample {
            soc_now: cycle.records[start].soc,
            avg_current_a: avg_i,
            avg_temperature_c: avg_t,
            horizon_s,
            soc_next: cycle.records[end].soc,
        });
    }
    out
}

/// Builds Branch-2 samples across several cycles, concatenated.
pub fn prediction_pairs_all(cycles: &[Cycle], horizon_s: f64) -> Vec<PredictionSample> {
    cycles
        .iter()
        .flat_map(|c| prediction_pairs(c, horizon_s))
        .collect()
}

/// One full-pipeline evaluation sample: the sensor readings at `t` (Branch-1
/// inputs), the workload description over `[t, t+N]` (Branch-2 inputs), and
/// both ground-truth SoC values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineSample {
    /// Measured voltage at `t`, volts.
    pub voltage_v: f64,
    /// Measured current at `t`, amps.
    pub current_a: f64,
    /// Measured temperature at `t`, °C.
    pub temperature_c: f64,
    /// Ground-truth SoC at `t`.
    pub soc_now: f64,
    /// Average current over the horizon, amps.
    pub avg_current_a: f64,
    /// Average temperature over the horizon, °C.
    pub avg_temperature_c: f64,
    /// Prediction horizon, seconds.
    pub horizon_s: f64,
    /// Ground-truth SoC at `t + N`.
    pub soc_next: f64,
}

/// Builds full-pipeline samples: [`prediction_pairs`] augmented with the
/// Branch-1 sensor readings at the window start.
///
/// # Panics
///
/// Panics under the same conditions as [`prediction_pairs`].
pub fn pipeline_samples(cycle: &Cycle, horizon_s: f64) -> Vec<PipelineSample> {
    let pairs = prediction_pairs(cycle, horizon_s);
    pairs
        .iter()
        .enumerate()
        .map(|(start, p)| {
            let r = &cycle.records[start];
            PipelineSample {
                voltage_v: r.voltage_v,
                current_a: r.current_a,
                temperature_c: r.temperature_c,
                soc_now: p.soc_now,
                avg_current_a: p.avg_current_a,
                avg_temperature_c: p.avg_temperature_c,
                horizon_s,
                soc_next: p.soc_next,
            }
        })
        .collect()
}

/// Builds full-pipeline samples across several cycles, concatenated.
pub fn pipeline_samples_all(cycles: &[Cycle], horizon_s: f64) -> Vec<PipelineSample> {
    cycles
        .iter()
        .flat_map(|c| pipeline_samples(c, horizon_s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{CycleKind, CycleMeta};
    use pinnsoc_battery::SimRecord;

    fn linear_cycle(n: usize, dt: f64) -> Cycle {
        let records = (0..n)
            .map(|i| SimRecord {
                time_s: (i + 1) as f64 * dt,
                voltage_v: 4.0 - i as f64 * 0.01,
                current_a: i as f64, // distinct per record for averaging checks
                temperature_c: 20.0 + i as f64,
                soc: 1.0 - i as f64 * 0.01,
            })
            .collect();
        Cycle::new(
            CycleMeta {
                kind: CycleKind::Lab { discharge_c: 1.0 },
                ambient_c: 25.0,
                cell: "NMC".into(),
                capacity_ah: 3.0,
            },
            dt,
            records,
        )
    }

    #[test]
    fn estimation_samples_mirror_records() {
        let c = linear_cycle(5, 120.0);
        let samples = estimation_samples(&c);
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[2].voltage_v, c.records[2].voltage_v);
        assert_eq!(samples[2].soc, c.records[2].soc);
        assert_eq!(samples[0].features(), [4.0, 0.0, 20.0]);
    }

    #[test]
    fn one_step_pairs_use_next_sample() {
        let c = linear_cycle(4, 120.0);
        let pairs = prediction_pairs(&c, 120.0);
        assert_eq!(pairs.len(), 3);
        let p = &pairs[0];
        assert_eq!(p.soc_now, 1.0);
        assert_eq!(p.soc_next, 0.99);
        // Window of one step: average = the record at t+N.
        assert_eq!(p.avg_current_a, 1.0);
        assert_eq!(p.avg_temperature_c, 21.0);
        assert_eq!(p.horizon_s, 120.0);
    }

    #[test]
    fn two_step_pairs_average_window() {
        let c = linear_cycle(5, 120.0);
        let pairs = prediction_pairs(&c, 240.0);
        assert_eq!(pairs.len(), 3);
        let p = &pairs[0];
        assert_eq!(p.soc_now, 1.0);
        assert_eq!(p.soc_next, 0.98);
        // Records 1 and 2 are inside the horizon: currents 1 and 2.
        assert!((p.avg_current_a - 1.5).abs() < 1e-12);
    }

    #[test]
    fn horizon_longer_than_cycle_gives_empty() {
        let c = linear_cycle(3, 120.0);
        assert!(prediction_pairs(&c, 120.0 * 5.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn non_multiple_horizon_panics() {
        let c = linear_cycle(10, 120.0);
        let _ = prediction_pairs(&c, 100.0);
    }

    #[test]
    fn pairs_all_concatenates() {
        let a = linear_cycle(4, 120.0);
        let b = linear_cycle(6, 120.0);
        let pairs = prediction_pairs_all(&[a, b], 120.0);
        assert_eq!(pairs.len(), 3 + 5);
    }

    #[test]
    fn pipeline_samples_carry_branch1_inputs() {
        let c = linear_cycle(5, 120.0);
        let samples = pipeline_samples(&c, 240.0);
        assert_eq!(samples.len(), 3);
        let s = &samples[1];
        // Window starting at index 1.
        assert_eq!(s.voltage_v, c.records[1].voltage_v);
        assert_eq!(s.current_a, c.records[1].current_a);
        assert_eq!(s.soc_now, c.records[1].soc);
        assert_eq!(s.soc_next, c.records[3].soc);
        // Must agree with the plain prediction pair.
        let p = prediction_pairs(&c, 240.0)[1];
        assert_eq!(s.avg_current_a, p.avg_current_a);
    }

    #[test]
    fn prediction_features_order() {
        let c = linear_cycle(3, 60.0);
        let p = prediction_pairs(&c, 60.0)[0];
        assert_eq!(
            p.features(),
            [p.soc_now, p.avg_current_a, p.avg_temperature_c, 60.0]
        );
    }
}
