//! Synthetic Sandia-like dataset (§IV-A of the paper).
//!
//! Protocol reproduced from \[5\] as the paper uses it: commercial 18650 cells
//! of three chemistries are charged at 0.5C and discharged at a fixed C-rate
//! until the voltage cutoffs, at ambient temperatures of 15–35 °C, sampled
//! every 120 s. Training uses the 0.5C/−1C condition; testing uses 0.5C/−2C
//! and 0.5C/−3C (unseen, harder rates).

use crate::dataset::{Cycle, CycleKind, CycleMeta, SocDataset};
use crate::preprocess::NoiseConfig;
use pinnsoc_battery::{CellParams, CellSim, Chemistry, SimRecord, Soc};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the Sandia-like generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SandiaConfig {
    /// Chemistries to cycle (the dataset has NCA, NMC, LFP).
    pub chemistries: Vec<Chemistry>,
    /// Ambient temperatures, °C (dataset range 15–35 °C).
    pub ambient_temps_c: Vec<f64>,
    /// Discharge C-rates used for training cycles.
    pub train_discharge_c: Vec<f64>,
    /// Discharge C-rates used for test cycles.
    pub test_discharge_c: Vec<f64>,
    /// Charge C-rate (0.5C throughout the paper's split).
    pub charge_c: f64,
    /// Recording interval, seconds (the dataset samples every 120 s).
    pub sample_dt_s: f64,
    /// Simulation integration step, seconds.
    pub sim_dt_s: f64,
    /// Full charge/discharge cycles generated per condition.
    pub cycles_per_condition: usize,
    /// Sensor noise added to the records.
    pub noise: NoiseConfig,
    /// Ratio of the cell's *actual* capacity to the datasheet value.
    /// Real cells deliver less than nominal (§II: "Qmax ... might not be an
    /// accurate guess"); the physics loss keeps using the datasheet
    /// `C_rated`, so this factor is what makes Eq. 1 an approximation
    /// rather than the truth — as it is on the measured datasets.
    pub true_capacity_factor: f64,
    /// Master seed for noise generation.
    pub seed: u64,
}

impl Default for SandiaConfig {
    fn default() -> Self {
        Self {
            chemistries: Chemistry::ALL.to_vec(),
            ambient_temps_c: vec![15.0, 25.0, 35.0],
            train_discharge_c: vec![1.0],
            test_discharge_c: vec![2.0, 3.0],
            charge_c: 0.5,
            sample_dt_s: 120.0,
            sim_dt_s: 1.0,
            cycles_per_condition: 3,
            noise: NoiseConfig::default(),
            true_capacity_factor: 0.92,
            seed: 0x5A9D,
        }
    }
}

/// Generates the Sandia-like dataset: train cycles at the training C-rates,
/// test cycles at the (harder, unseen) test C-rates.
///
/// # Panics
///
/// Panics if the configuration has no chemistries, temperatures, or rates,
/// or non-positive time steps.
pub fn generate_sandia(config: &SandiaConfig) -> SocDataset {
    assert!(
        !config.chemistries.is_empty(),
        "need at least one chemistry"
    );
    assert!(
        !config.ambient_temps_c.is_empty(),
        "need at least one temperature"
    );
    assert!(
        !config.train_discharge_c.is_empty() && !config.test_discharge_c.is_empty(),
        "need train and test discharge rates"
    );
    assert!(config.sim_dt_s > 0.0 && config.sample_dt_s >= config.sim_dt_s);
    assert!(
        config.cycles_per_condition > 0,
        "need at least one cycle per condition"
    );
    assert!(
        config.true_capacity_factor > 0.0 && config.true_capacity_factor <= 1.2,
        "true capacity factor must be a sane positive ratio"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dataset = SocDataset {
        name: "sandia".into(),
        train: Vec::new(),
        test: Vec::new(),
    };
    for &chem in &config.chemistries {
        for &temp in &config.ambient_temps_c {
            for &rate in &config.train_discharge_c {
                dataset
                    .train
                    .extend(condition_cycles(config, chem, temp, rate, &mut rng));
            }
            for &rate in &config.test_discharge_c {
                dataset
                    .test
                    .extend(condition_cycles(config, chem, temp, rate, &mut rng));
            }
        }
    }
    dataset
}

/// Simulates `cycles_per_condition` full discharge+charge cycles for one
/// (chemistry, temperature, rate) condition.
fn condition_cycles(
    config: &SandiaConfig,
    chemistry: Chemistry,
    ambient_c: f64,
    discharge_c: f64,
    rng: &mut StdRng,
) -> Vec<Cycle> {
    let mut params = CellParams::sandia(chemistry);
    // CycleMeta carries the datasheet capacity; the simulated cell gets the
    // (smaller) actual capacity.
    let capacity_ah = params.capacity_ah;
    params.capacity_ah *= config.true_capacity_factor;
    let mut sim = CellSim::new(params, Soc::FULL, ambient_c);
    let mut cycles = Vec::with_capacity(config.cycles_per_condition);
    for _ in 0..config.cycles_per_condition {
        let mut records: Vec<SimRecord> = Vec::new();
        let discharge = sim.discharge_to_cutoff(discharge_c, config.sim_dt_s, config.sample_dt_s);
        records.extend(discharge.records);
        let charge = sim.charge_to_cutoff(config.charge_c, config.sim_dt_s, config.sample_dt_s);
        records.extend(charge.records);
        let noisy: Vec<SimRecord> = records
            .iter()
            .map(|r| config.noise.corrupt(r, rng))
            .collect();
        cycles.push(Cycle::new(
            CycleMeta {
                kind: CycleKind::Lab { discharge_c },
                ambient_c,
                cell: chemistry.to_string(),
                capacity_ah,
            },
            config.sample_dt_s,
            noisy,
        ));
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SandiaConfig {
        SandiaConfig {
            chemistries: vec![Chemistry::Nmc],
            ambient_temps_c: vec![25.0],
            cycles_per_condition: 1,
            noise: NoiseConfig::none(),
            ..SandiaConfig::default()
        }
    }

    #[test]
    fn generates_expected_split() {
        let ds = generate_sandia(&small_config());
        assert_eq!(ds.train.len(), 1); // 1 chem × 1 temp × 1 rate × 1 cycle
        assert_eq!(ds.test.len(), 2); // rates 2C and 3C
        assert!(
            matches!(ds.train[0].meta.kind, CycleKind::Lab { discharge_c } if discharge_c == 1.0)
        );
    }

    #[test]
    fn cycles_span_full_discharge_and_recharge() {
        let ds = generate_sandia(&small_config());
        let cycle = &ds.train[0];
        let min_soc = cycle.records.iter().map(|r| r.soc).fold(1.0_f64, f64::min);
        let max_soc = cycle.records.iter().map(|r| r.soc).fold(0.0_f64, f64::max);
        assert!(
            min_soc < 0.15,
            "discharge should approach empty, got {min_soc}"
        );
        assert!(max_soc > 0.85, "charge should approach full, got {max_soc}");
    }

    #[test]
    fn sampling_interval_is_120s() {
        let ds = generate_sandia(&small_config());
        let rs = &ds.train[0].records;
        let dt = rs[1].time_s - rs[0].time_s;
        assert!((dt - 120.0).abs() < 1e-9);
    }

    #[test]
    fn test_rates_are_harder() {
        let ds = generate_sandia(&small_config());
        for c in &ds.test {
            if let CycleKind::Lab { discharge_c } = c.meta.kind {
                assert!(discharge_c > 1.0);
            } else {
                panic!("unexpected cycle kind");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_sandia(&small_config());
        let b = generate_sandia(&small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn full_default_config_has_all_conditions() {
        let config = SandiaConfig {
            cycles_per_condition: 1,
            ..SandiaConfig::default()
        };
        let ds = generate_sandia(&config);
        // 3 chemistries × 3 temps × 1 train rate.
        assert_eq!(ds.train.len(), 9);
        // 3 chemistries × 3 temps × 2 test rates.
        assert_eq!(ds.test.len(), 18);
    }
}
