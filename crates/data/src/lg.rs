//! Synthetic LG-like dataset (§IV-B of the paper).
//!
//! Protocol reproduced from \[6\] as the paper uses it: an LG HG2 3 Ah cell is
//! fully discharged through drive-cycle current profiles. Eight "mixed"
//! cycles interleave the four schedules; training uses seven of them at
//! temperatures between 0 °C and 25 °C, and testing uses the four pattern
//! cycles (UDDS, HWFET, LA92, US06) plus the final mixed cycle. A 30 s
//! moving average smooths V, I, and T before they reach the network.

use crate::dataset::{Cycle, CycleKind, CycleMeta, SocDataset};
use crate::preprocess::{moving_average, NoiseConfig};
use pinnsoc_battery::{CellParams, CellSim, SimRecord, Soc, StopReason};
use pinnsoc_cycles::{CurrentProfile, DriveSchedule, MixedCycleBuilder, Vehicle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the LG-like generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LgConfig {
    /// Number of mixed cycles used for training (the paper uses 7 of 8).
    pub train_mixed: usize,
    /// Ambient temperatures assigned round-robin to the training cycles
    /// (paper: 0 °C to 25 °C).
    pub train_temps_c: Vec<f64>,
    /// Temperatures at which each test cycle is generated (paper Table I
    /// evaluates 0 °C and 25 °C).
    pub test_temps_c: Vec<f64>,
    /// Recording interval, seconds. The real dataset logs at 0.1 s; we log
    /// at 1 s by default (the 30 s moving average and ≥30 s horizons make
    /// sub-second resolution irrelevant — see DESIGN.md).
    pub sample_dt_s: f64,
    /// Simulation integration step, seconds (0.1 s, the dataset's rate).
    pub sim_dt_s: f64,
    /// Moving-average window applied to V/I/T, seconds (§IV-B: 30 s).
    pub moving_avg_s: f64,
    /// Schedule segments per mixed cycle.
    pub mixed_segments: usize,
    /// Sensor noise added before smoothing.
    pub noise: NoiseConfig,
    /// Ratio of the cell's actual capacity to the datasheet 3 Ah (see
    /// `SandiaConfig::true_capacity_factor`).
    pub true_capacity_factor: f64,
    /// Master seed (drive-cycle shapes and noise).
    pub seed: u64,
}

impl Default for LgConfig {
    fn default() -> Self {
        Self {
            train_mixed: 7,
            train_temps_c: vec![0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 25.0],
            test_temps_c: vec![0.0, 25.0],
            sample_dt_s: 1.0,
            sim_dt_s: 0.1,
            moving_avg_s: 30.0,
            mixed_segments: 5,
            noise: NoiseConfig::default(),
            true_capacity_factor: 0.92,
            seed: 0x16AA,
        }
    }
}

/// Generates the LG-like dataset.
///
/// Training set: `train_mixed` mixed cycles at the configured temperatures.
/// Test set: for each test temperature, the four drive schedules plus the
/// eighth mixed cycle.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero cycles, empty temperature
/// lists, or non-positive time steps).
pub fn generate_lg(config: &LgConfig) -> SocDataset {
    assert!(config.train_mixed > 0, "need at least one training cycle");
    assert!(
        !config.train_temps_c.is_empty(),
        "need training temperatures"
    );
    assert!(!config.test_temps_c.is_empty(), "need test temperatures");
    assert!(config.sim_dt_s > 0.0 && config.sample_dt_s >= config.sim_dt_s);

    let vehicle = Vehicle::compact_ev();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dataset = SocDataset {
        name: "lg".into(),
        train: Vec::new(),
        test: Vec::new(),
    };

    // Training: mixed cycles 1..=train_mixed.
    let mixed_builder = MixedCycleBuilder::new()
        .segments(config.mixed_segments)
        .dt_s(config.sim_dt_s);
    for k in 0..config.train_mixed {
        let temp = config.train_temps_c[k % config.train_temps_c.len()];
        let speeds = mixed_builder.build(config.seed.wrapping_add(k as u64));
        let currents = vehicle.current_profile(&speeds);
        let kind = CycleKind::Mixed {
            index: (k + 1) as u8,
        };
        dataset
            .train
            .push(discharge_cycle(config, kind, temp, &currents, &mut rng));
    }

    // Test: the four pattern cycles + the final mixed cycle, per temperature.
    let mixed8_seed = config.seed.wrapping_add(1000);
    for &temp in &config.test_temps_c {
        for schedule in DriveSchedule::ALL {
            let speeds = schedule.generate_with_dt(
                config.seed.wrapping_add(2000) ^ schedule as u64,
                config.sim_dt_s,
            );
            let currents = vehicle.current_profile(&speeds);
            let kind = CycleKind::Drive(schedule);
            dataset
                .test
                .push(discharge_cycle(config, kind, temp, &currents, &mut rng));
        }
        let speeds = mixed_builder.build(mixed8_seed);
        let currents = vehicle.current_profile(&speeds);
        let kind = CycleKind::Mixed {
            index: (config.train_mixed + 1) as u8,
        };
        dataset
            .test
            .push(discharge_cycle(config, kind, temp, &currents, &mut rng));
    }
    dataset
}

/// Runs one full discharge: the profile repeats until the cell reaches a
/// cutoff, then records are noised and smoothed.
fn discharge_cycle(
    config: &LgConfig,
    kind: CycleKind,
    ambient_c: f64,
    currents: &CurrentProfile,
    rng: &mut StdRng,
) -> Cycle {
    let mut params = CellParams::lg_hg2();
    params.capacity_ah *= config.true_capacity_factor;
    let mut sim = CellSim::new(params, Soc::FULL, ambient_c);
    let mut records: Vec<SimRecord> = Vec::new();
    let per_sample = (config.sample_dt_s / config.sim_dt_s).round().max(1.0) as usize;
    let mut step_idx = 0usize;
    // A full discharge takes at most a few hundred profile repetitions; the
    // loop always terminates because every drive cycle net-discharges.
    'discharge: for _ in 0..10_000 {
        for &demand in currents.currents() {
            // Regen clamp: like a real BMS, refuse charge current that would
            // push the terminal voltage past the charge cutoff (e.g. braking
            // right after a full charge).
            let v_max = sim.params().v_max;
            let current = if demand < 0.0 && sim.terminal_voltage_if(demand) >= v_max - 0.01 {
                0.0
            } else {
                demand
            };
            let record = sim.step(current, config.sim_dt_s);
            step_idx += 1;
            if step_idx.is_multiple_of(per_sample) {
                records.push(record);
            }
            if let Some(reason) = sim.stop_reason_for(&record) {
                debug_assert!(matches!(
                    reason,
                    StopReason::LowVoltageCutoff | StopReason::Empty
                ));
                if !step_idx.is_multiple_of(per_sample) {
                    records.push(record);
                }
                break 'discharge;
            }
        }
    }
    let noisy: Vec<SimRecord> = records
        .iter()
        .map(|r| config.noise.corrupt(r, rng))
        .collect();
    let smoothed = moving_average(&noisy, config.sample_dt_s, config.moving_avg_s);
    Cycle::new(
        CycleMeta {
            kind,
            ambient_c,
            cell: "LG-HG2".into(),
            capacity_ah: 3.0,
        },
        config.sample_dt_s,
        smoothed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> LgConfig {
        LgConfig {
            train_mixed: 2,
            train_temps_c: vec![25.0],
            test_temps_c: vec![25.0],
            mixed_segments: 2,
            noise: NoiseConfig::none(),
            ..LgConfig::default()
        }
    }

    #[test]
    fn split_shape_matches_protocol() {
        let ds = generate_lg(&small_config());
        assert_eq!(ds.train.len(), 2);
        // 4 schedules + 1 mixed at one temperature.
        assert_eq!(ds.test.len(), 5);
        assert!(ds
            .test
            .iter()
            .any(|c| matches!(c.meta.kind, CycleKind::Mixed { .. })));
        assert!(ds
            .test
            .iter()
            .any(|c| matches!(c.meta.kind, CycleKind::Drive(DriveSchedule::Us06))));
    }

    #[test]
    fn cycles_are_full_discharges() {
        let ds = generate_lg(&small_config());
        for c in ds.test.iter().chain(&ds.train) {
            assert!(
                c.final_soc() < 0.12,
                "{} should end nearly empty, got {}",
                c.meta,
                c.final_soc()
            );
            assert!(c.records[0].soc > 0.9, "{} should start full", c.meta);
        }
    }

    #[test]
    fn soc_is_monotone_nonincreasing_within_tolerance() {
        // Regen charges briefly, so allow small upticks but no big jumps up.
        let ds = generate_lg(&small_config());
        let c = &ds.test[0];
        for w in c.records.windows(2) {
            assert!(
                w[1].soc <= w[0].soc + 0.002,
                "SoC jumped up at t={}",
                w[1].time_s
            );
        }
    }

    #[test]
    fn two_test_temperatures_double_the_test_set() {
        let config = LgConfig {
            test_temps_c: vec![0.0, 25.0],
            ..small_config()
        };
        let ds = generate_lg(&config);
        assert_eq!(ds.test.len(), 10);
        assert_eq!(ds.test_at_temperature(0.0).len(), 5);
        assert_eq!(ds.test_at_temperature(25.0).len(), 5);
    }

    #[test]
    fn cold_cycles_are_shorter() {
        // Higher resistance at 0 °C trips the cutoff earlier, so the cold
        // discharge delivers less charge (fewer records).
        let config = LgConfig {
            test_temps_c: vec![0.0, 25.0],
            ..small_config()
        };
        let ds = generate_lg(&config);
        let warm: f64 = ds
            .test_at_temperature(25.0)
            .iter()
            .map(|c| c.duration_s())
            .sum();
        let cold: f64 = ds
            .test_at_temperature(0.0)
            .iter()
            .map(|c| c.duration_s())
            .sum();
        assert!(cold < warm, "cold {cold} vs warm {warm}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_lg(&small_config());
        let b = generate_lg(&small_config());
        assert_eq!(a, b);
    }
}
