//! Property-based tests for the dataset layer: preprocessing and windowing
//! must preserve the invariants the trainer relies on.

use pinnsoc_battery::SimRecord;
use pinnsoc_data::{
    moving_average, prediction_pairs, Cycle, CycleKind, CycleMeta, Normalizer, PhysicsCurrentMode,
    PhysicsSampler, SocDataset,
};
use proptest::prelude::*;

fn record_seq(n: usize) -> impl Strategy<Value = Vec<SimRecord>> {
    proptest::collection::vec(
        (2.0f64..4.5, -5.0f64..10.0, -10.0f64..45.0, 0.0f64..=1.0),
        n..n + 1,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(k, (v, i, t, soc))| SimRecord {
                time_s: (k + 1) as f64,
                voltage_v: v,
                current_a: i,
                temperature_c: t,
                soc,
            })
            .collect()
    })
}

fn cycle_of(records: Vec<SimRecord>) -> Cycle {
    Cycle::new(
        CycleMeta {
            kind: CycleKind::Lab { discharge_c: 1.0 },
            ambient_c: 25.0,
            cell: "NMC".into(),
            capacity_ah: 3.0,
        },
        1.0,
        records,
    )
}

proptest! {
    #[test]
    fn moving_average_bounded_by_extremes(records in record_seq(40), window in 1.0f64..20.0) {
        let smoothed = moving_average(&records, 1.0, window);
        let (min_i, max_i) = records.iter().fold((f64::MAX, f64::MIN), |(lo, hi), r| {
            (lo.min(r.current_a), hi.max(r.current_a))
        });
        for s in &smoothed {
            prop_assert!(s.current_a >= min_i - 1e-9 && s.current_a <= max_i + 1e-9);
        }
    }

    #[test]
    fn moving_average_preserves_constants(value in -5.0f64..5.0, window in 1.0f64..30.0) {
        let records: Vec<SimRecord> = (0..30)
            .map(|k| SimRecord {
                time_s: k as f64,
                voltage_v: 3.7,
                current_a: value,
                temperature_c: 25.0,
                soc: 0.5,
            })
            .collect();
        let smoothed = moving_average(&records, 1.0, window);
        for s in &smoothed {
            prop_assert!((s.current_a - value).abs() < 1e-9);
        }
    }

    #[test]
    fn moving_average_never_touches_labels(records in record_seq(20), window in 1.0f64..10.0) {
        let smoothed = moving_average(&records, 1.0, window);
        for (a, b) in records.iter().zip(&smoothed) {
            prop_assert_eq!(a.soc, b.soc);
            prop_assert_eq!(a.time_s, b.time_s);
        }
    }

    #[test]
    fn prediction_pair_averages_bounded(records in record_seq(30), steps in 1usize..8) {
        let cycle = cycle_of(records);
        let pairs = prediction_pairs(&cycle, steps as f64);
        for p in &pairs {
            let (min_i, max_i) = cycle.records.iter().fold((f64::MAX, f64::MIN), |(lo, hi), r| {
                (lo.min(r.current_a), hi.max(r.current_a))
            });
            prop_assert!(p.avg_current_a >= min_i - 1e-9);
            prop_assert!(p.avg_current_a <= max_i + 1e-9);
            prop_assert!((0.0..=1.0).contains(&p.soc_now));
            prop_assert!((0.0..=1.0).contains(&p.soc_next));
        }
        prop_assert_eq!(pairs.len(), cycle.len().saturating_sub(steps));
    }

    #[test]
    fn normalizer_roundtrips(rows in proptest::collection::vec(
        proptest::collection::vec(-100.0f64..100.0, 3..4), 2..20)
    ) {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let norm = Normalizer::fit(refs.iter().copied());
        for r in &rows {
            let mut x = r.clone();
            norm.normalize(&mut x);
            prop_assert!(x.iter().all(|v| v.is_finite()));
            norm.denormalize(&mut x);
            for (a, b) in x.iter().zip(r) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn physics_targets_always_satisfy_equation(
        records in record_seq(10),
        seed in 0u64..1000,
        min_c in -2.0f64..0.0,
        span in 0.5f64..4.0,
    ) {
        let ds = SocDataset { name: "t".into(), train: vec![cycle_of(records)], test: vec![] };
        let mode = PhysicsCurrentMode::CRateUniform { min_c, max_c: min_c + span };
        let mut sampler = PhysicsSampler::new(&ds, vec![30.0, 120.0], mode, seed);
        for s in sampler.sample_batch(50) {
            let expected =
                (s.soc_now - s.avg_current_a * s.horizon_s / (3600.0 * 3.0)).clamp(0.0, 1.0);
            prop_assert!((s.soc_next - expected).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&s.soc_next));
        }
    }
}
