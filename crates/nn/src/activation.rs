//! Element-wise activation functions with analytic derivatives.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Element-wise activation function.
///
/// The derivative is expressed in terms of the *pre-activation* input `z`,
/// which is what the dense layers cache during the forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, z)` — used by both branches of the paper's network.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^{-z})`.
    Sigmoid,
    /// Identity (linear output layer).
    Identity,
    /// Leaky ReLU with slope 0.01 for negative inputs.
    LeakyRelu,
}

impl Activation {
    /// Applies the activation element-wise.
    pub fn forward(self, z: &Matrix) -> Matrix {
        z.map(|x| self.apply(x))
    }

    /// Applies the activation to a scalar.
    #[inline(always)]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => sigmoid(x),
            Activation::Identity => x,
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
        }
    }

    /// Derivative dσ/dz evaluated at pre-activation `z`, element-wise.
    pub fn derivative(self, z: &Matrix) -> Matrix {
        z.map(|x| self.derivative_scalar(x))
    }

    /// Scalar derivative at pre-activation `x`.
    pub fn derivative_scalar(self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
            Activation::Identity => 1.0,
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
        }
    }
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_derivative(act: Activation, xs: &[f32]) {
        let eps = 1e-3_f32;
        for &x in xs {
            let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
            let analytic = act.derivative_scalar(x);
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "{act:?} derivative mismatch at {x}: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn relu_values() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(-745.0).is_finite());
    }

    #[test]
    fn derivatives_match_finite_differences() {
        // Avoid the ReLU kink at exactly 0.
        let xs = [-2.0, -0.5, 0.3, 1.7];
        for act in [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
            Activation::LeakyRelu,
        ] {
            check_derivative(act, &xs);
        }
    }

    #[test]
    fn matrix_forward_matches_scalar() {
        let z = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        let y = Activation::Relu.forward(&z);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let json = serde_json::to_string(&Activation::Relu).unwrap();
        let back: Activation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Activation::Relu);
    }
}
