//! Regression losses with analytic gradients.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Regression loss function.
///
/// The paper trains both branches with MAE (§III-B); MSE and Huber are
/// provided for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean absolute error — the paper's loss for both branches and the
    /// physics term (Eq. 2).
    Mae,
    /// Mean squared error.
    Mse,
    /// Huber loss with the given transition point `delta`.
    Huber(f32),
}

impl Loss {
    /// Loss value averaged over all elements.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn value(self, prediction: &Matrix, target: &Matrix) -> f32 {
        assert_eq!(prediction.shape(), target.shape(), "loss shape mismatch");
        let n = prediction.len() as f32;
        let mut acc = 0.0_f32;
        for (&p, &t) in prediction.as_slice().iter().zip(target.as_slice()) {
            acc += self.pointwise(p - t);
        }
        acc / n
    }

    /// Gradient of the averaged loss with respect to the prediction.
    pub fn gradient(self, prediction: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(prediction.shape(), target.shape(), "loss shape mismatch");
        let n = prediction.len() as f32;
        prediction.zip_with(target, |p, t| self.pointwise_derivative(p - t) / n)
    }

    /// [`Loss::gradient`] into a caller-owned buffer (resized first),
    /// avoiding the allocation; element values are identical.
    pub fn gradient_into(self, prediction: &Matrix, target: &Matrix, out: &mut Matrix) {
        assert_eq!(prediction.shape(), target.shape(), "loss shape mismatch");
        let n = prediction.len() as f32;
        prediction.zip_into(target, out, |p, t| self.pointwise_derivative(p - t) / n);
    }

    /// Pointwise penalty of a single residual `r = prediction - target`.
    pub fn pointwise(self, r: f32) -> f32 {
        match self {
            Loss::Mae => r.abs(),
            Loss::Mse => r * r,
            Loss::Huber(delta) => {
                let a = r.abs();
                if a <= delta {
                    0.5 * r * r
                } else {
                    delta * (a - 0.5 * delta)
                }
            }
        }
    }

    /// Derivative of [`Loss::pointwise`] with respect to the residual.
    ///
    /// For MAE the subgradient at `r = 0` is taken as `0`.
    pub fn pointwise_derivative(self, r: f32) -> f32 {
        match self {
            Loss::Mae => {
                if r > 0.0 {
                    1.0
                } else if r < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            Loss::Mse => 2.0 * r,
            Loss::Huber(delta) => {
                if r.abs() <= delta {
                    r
                } else {
                    delta * r.signum()
                }
            }
        }
    }
}

/// Mean absolute error between two slices — the metric every experiment in
/// the paper reports.
///
/// # Panics
///
/// Panics if the slices have different or zero lengths.
pub fn mae(prediction: &[f32], target: &[f32]) -> f32 {
    assert_eq!(prediction.len(), target.len(), "mae length mismatch");
    assert!(!prediction.is_empty(), "mae of empty slices");
    prediction
        .iter()
        .zip(target)
        .map(|(p, t)| (p - t).abs())
        .sum::<f32>()
        / prediction.len() as f32
}

/// Root mean squared error between two slices.
///
/// # Panics
///
/// Panics if the slices have different or zero lengths.
pub fn rmse(prediction: &[f32], target: &[f32]) -> f32 {
    assert_eq!(prediction.len(), target.len(), "rmse length mismatch");
    assert!(!prediction.is_empty(), "rmse of empty slices");
    (prediction
        .iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f32>()
        / prediction.len() as f32)
        .sqrt()
}

/// Maximum absolute error between two slices.
///
/// # Panics
///
/// Panics if the slices have different or zero lengths.
pub fn max_abs_error(prediction: &[f32], target: &[f32]) -> f32 {
    assert_eq!(
        prediction.len(),
        target.len(),
        "max_abs_error length mismatch"
    );
    assert!(!prediction.is_empty(), "max_abs_error of empty slices");
    prediction
        .iter()
        .zip(target)
        .map(|(p, t)| (p - t).abs())
        .fold(0.0_f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_known_value() {
        let p = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let t = Matrix::from_rows(&[&[0.0, 2.0], &[5.0, 3.0]]);
        assert!((Loss::Mae.value(&p, &t) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_rows(&[&[2.0]]);
        let t = Matrix::from_rows(&[&[0.0]]);
        assert!((Loss::Mse.value(&p, &t) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn huber_is_quadratic_inside_linear_outside() {
        let h = Loss::Huber(1.0);
        assert!((h.pointwise(0.5) - 0.125).abs() < 1e-6);
        assert!((h.pointwise(3.0) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let p = Matrix::from_rows(&[&[0.7, -1.3, 2.1]]);
        let t = Matrix::from_rows(&[&[0.5, -1.0, 2.0]]);
        let eps = 1e-3;
        for loss in [Loss::Mae, Loss::Mse, Loss::Huber(0.5)] {
            let g = loss.gradient(&p, &t);
            for i in 0..3 {
                let mut pp = p.clone();
                pp[(0, i)] += eps;
                let mut pm = p.clone();
                pm[(0, i)] -= eps;
                let numeric = (loss.value(&pp, &t) - loss.value(&pm, &t)) / (2.0 * eps);
                assert!(
                    (numeric - g[(0, i)]).abs() < 1e-2,
                    "{loss:?} grad mismatch at {i}: numeric {numeric} analytic {}",
                    g[(0, i)]
                );
            }
        }
    }

    #[test]
    fn slice_metrics() {
        let p = [1.0, 2.0, 3.0];
        let t = [1.0, 3.0, 1.0];
        assert!((mae(&p, &t) - 1.0).abs() < 1e-6);
        assert!((rmse(&p, &t) - ((0.0_f32 + 1.0 + 4.0) / 3.0).sqrt()).abs() < 1e-6);
        assert!((max_abs_error(&p, &t) - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mae_length_mismatch_panics() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }
}
