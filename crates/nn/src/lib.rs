//! # pinnsoc-nn
//!
//! A minimal, fully gradient-checked neural-network substrate written for the
//! `pinnsoc` workspace — the Rust reproduction of *"Coupling Neural Networks
//! and Physics Equations For Li-Ion Battery State-of-Charge Prediction"*
//! (DATE 2025).
//!
//! The paper's models are small (the whole two-branch network is 2,322
//! parameters), so this crate favours correctness and auditability over raw
//! speed: plain `f32` matrices, explicit backpropagation, and
//! finite-difference gradient checking for every layer type.
//!
//! ## What's inside
//!
//! - [`matrix::Matrix`] — dense row-major `f32` matrix with shape-checked ops.
//! - [`dense::Dense`] / [`mlp::Mlp`] — fully-connected layers and networks
//!   (the paper's Branch 1 and Branch 2 are `Mlp`s).
//! - [`lstm::Lstm`] — single-layer LSTM with BPTT, for the Table I baselines.
//! - [`loss::Loss`] — MAE / MSE / Huber with analytic gradients.
//! - [`optim`] — SGD, momentum, Adam, and LR schedules.
//! - [`account`] — parameter / MAC / memory accounting (Table I columns).
//! - [`gradcheck`] — finite-difference gradient verification.
//! - [`persist`] — JSON model serialization.
//!
//! ## Quick example
//!
//! ```
//! use pinnsoc_nn::{Activation, Adam, Init, Loss, Matrix, Mlp, Optimizer};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let mut net = Mlp::new(&[2, 8, 1], Activation::Relu, Init::HeNormal, &mut rng);
//! let mut opt = Adam::new(0.01);
//! let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
//! let y = Matrix::from_rows(&[&[1.0], &[-1.0]]);
//! for _ in 0..100 {
//!     let pred = net.forward(&x);
//!     let grad = Loss::Mae.gradient(&pred, &y);
//!     net.zero_grad();
//!     net.backward(&grad);
//!     opt.step(&mut net);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod activation;
pub mod dense;
pub mod gradcheck;
pub mod init;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod persist;

pub use account::{Account, CostReport, LstmQuery};
pub use activation::Activation;
pub use dense::Dense;
pub use gradcheck::{check_mlp_gradients, GradCheckReport};
pub use init::Init;
pub use loss::{mae, max_abs_error, rmse, Loss};
pub use lstm::Lstm;
pub use matrix::Matrix;
pub use mlp::{InferScratch, Mlp};
pub use optim::{Adam, LrSchedule, Optimizer, Sgd, Trainable};
pub use persist::{load_json, save_json, PersistError};
