//! # pinnsoc-nn
//!
//! A minimal, fully gradient-checked neural-network substrate written for the
//! `pinnsoc` workspace — the Rust reproduction of *"Coupling Neural Networks
//! and Physics Equations For Li-Ion Battery State-of-Charge Prediction"*
//! (DATE 2025).
//!
//! The paper's models are small (the whole two-branch network is 2,322
//! parameters), so this crate favours correctness and auditability over raw
//! speed: plain `f32` matrices, explicit backpropagation, and
//! finite-difference gradient checking for every layer type.
//!
//! ## Bit-exactness contract
//!
//! The workspace serves the same model through several pipelines — scalar
//! [`Mlp::infer`], batched [`Mlp::forward_batch`], the fused packed-weight
//! path [`Mlp::forward_batch_fused`], and the scratch-reusing training
//! passes [`Mlp::forward_train`] / [`Mlp::backward_train`] — and the layers
//! above (`pinnsoc`, `pinnsoc-fleet`) promise that all of them compute
//! **bitwise identical** results per row (for training: identical
//! predictions *and* identical accumulated gradients to
//! [`Mlp::forward`] / [`Mlp::backward`]). That promise rests on three
//! invariants,
//! which every kernel in this crate must preserve:
//!
//! 1. **Ascending-`k` accumulation.** Each output element of a GEMM is the
//!    sum `Σ_k a[i,k]·b[k,j]` accumulated in ascending `k` order, one `f32`
//!    add per step, regardless of tile size, batch height, row blocking, or
//!    weight packing. Float addition is not associative, so any reordering
//!    (tree reductions, SIMD shuffles, `mul_add`) would break parity.
//!    The SIMD paths in [`kernel`] honour this by vectorizing across the
//!    *output column* dimension only — each lane is an independent
//!    ascending-`k` accumulator with separate multiply and add
//!    instructions (no FMA) — so **the f32 SIMD paths are bit-identical
//!    to the scalar reference**, proptested in `tests/proptest_nn.rs`.
//!    The int8 path accumulates in `i32` (exact integer arithmetic, so
//!    kernel paths trivially agree) and carries an analytic
//!    quantization-error bound instead; see [`quant`].
//! 2. **Row independence.** A row's result never depends on which other
//!    rows share its batch; batching is purely a storage/layout concern.
//! 3. **Epilogue equivalence.** Bias and activation are applied to the
//!    fully accumulated sum as `act(acc + bias)` — whether as a separate
//!    elementwise pass ([`Matrix::matmul_into`] + sweep) or inside the
//!    fused epilogue ([`Matrix::matmul_bias_act_into`]), the arithmetic per
//!    element is identical.
//!
//! Enforced by unit tests in [`matrix`], [`dense`], and [`mlp`], parity
//! proptests in `tests/proptest_nn.rs`, and the batched-vs-scalar tests in
//! `pinnsoc` and `pinnsoc-fleet`. When touching any forward path, keep all
//! pipelines in sync or the fleet parity suite will fail.
//!
//! ## What's inside
//!
//! - [`matrix::Matrix`] — dense row-major `f32` matrix with shape-checked ops.
//! - [`dense::Dense`] / [`mlp::Mlp`] — fully-connected layers and networks
//!   (the paper's Branch 1 and Branch 2 are `Mlp`s).
//! - [`lstm::Lstm`] — single-layer LSTM with BPTT, for the Table I baselines.
//! - [`loss::Loss`] — MAE / MSE / Huber with analytic gradients.
//! - [`optim`] — SGD, momentum, Adam, and LR schedules.
//! - [`account`] — parameter / MAC / memory accounting (Table I columns).
//! - [`gradcheck`] — finite-difference gradient verification.
//! - [`persist`] — JSON model serialization.
//!
//! ## Quick example
//!
//! ```
//! use pinnsoc_nn::{Activation, Adam, Init, Loss, Matrix, Mlp, Optimizer};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let mut net = Mlp::new(&[2, 8, 1], Activation::Relu, Init::HeNormal, &mut rng);
//! let mut opt = Adam::new(0.01);
//! let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
//! let y = Matrix::from_rows(&[&[1.0], &[-1.0]]);
//! for _ in 0..100 {
//!     let pred = net.forward(&x);
//!     let grad = Loss::Mae.gradient(&pred, &y);
//!     net.zero_grad();
//!     net.backward(&grad);
//!     opt.step(&mut net);
//! }
//! ```

// `unsafe` is denied crate-wide and allowed back in exactly one place:
// the `std::arch` SIMD intrinsics inside `kernel`, each with a
// `// SAFETY:` comment. Everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod activation;
pub mod dense;
pub mod gradcheck;
pub mod init;
pub mod kernel;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod persist;
pub mod quant;

pub use account::{Account, CostReport, LstmQuery};
pub use activation::Activation;
pub use dense::Dense;
pub use gradcheck::{check_mlp_gradients, GradCheckReport};
pub use init::Init;
pub use kernel::KernelPath;
pub use loss::{mae, max_abs_error, rmse, Loss};
pub use lstm::Lstm;
pub use matrix::{Matrix, PackedWeights};
pub use mlp::{InferScratch, Mlp, TrainScratch};
pub use optim::{Adam, LrSchedule, Optimizer, Sgd, Trainable};
pub use persist::{load_json, save_json, PersistError};
pub use quant::{CalibrationStats, QuantScratch, QuantizedMlp, QuantizedPackedWeights};
