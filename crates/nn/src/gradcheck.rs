//! Finite-difference gradient checking for [`Mlp`] networks.
//!
//! Used in tests across the workspace to guarantee that every loss we invent
//! (including the physics-informed Coulomb term) back-propagates correctly.

use crate::loss::Loss;
use crate::matrix::Matrix;
use crate::mlp::Mlp;

/// Outcome of a gradient check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference between numeric and analytic gradients.
    pub max_abs_diff: f32,
    /// Largest relative difference (normalized by magnitude).
    pub max_rel_diff: f32,
    /// Number of parameters checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// True if both absolute and relative tolerances hold.
    pub fn passes(&self, abs_tol: f32, rel_tol: f32) -> bool {
        self.max_abs_diff <= abs_tol || self.max_rel_diff <= rel_tol
    }
}

/// Compares backprop gradients of `loss(model(x), y)` against central finite
/// differences, checking every `stride`-th parameter.
///
/// # Panics
///
/// Panics if `stride` is zero or shapes are inconsistent.
pub fn check_mlp_gradients(
    model: &mut Mlp,
    x: &Matrix,
    y: &Matrix,
    loss: Loss,
    stride: usize,
) -> GradCheckReport {
    assert!(stride > 0, "stride must be positive");
    let eps = 1e-2_f32;

    // Analytic pass.
    model.zero_grad();
    let pred = model.forward(x);
    let grad = loss.gradient(&pred, y);
    model.backward(&grad);
    let mut analytic = Vec::new();
    model.visit_params(&mut |_p, g| analytic.extend_from_slice(g));

    let mut tensor_lens = Vec::new();
    model.visit_params(&mut |p, _| tensor_lens.push(p.len()));

    let mut max_abs = 0.0_f32;
    let mut max_rel = 0.0_f32;
    let mut checked = 0usize;
    for tensor in 0..tensor_lens.len() {
        for i in (0..tensor_lens[tensor]).step_by(stride) {
            let perturb = |m: &mut Mlp, delta: f32| {
                let mut idx = 0;
                m.visit_params(&mut |p, _| {
                    if idx == tensor {
                        p[i] += delta;
                    }
                    idx += 1;
                });
            };
            perturb(model, eps);
            let plus = loss.value(&model.infer(x), y) as f64;
            perturb(model, -2.0 * eps);
            let minus = loss.value(&model.infer(x), y) as f64;
            perturb(model, eps);
            let numeric = ((plus - minus) / (2.0 * eps as f64)) as f32;
            let offset: usize = tensor_lens[..tensor].iter().sum();
            let ana = analytic[offset + i];
            let abs = (numeric - ana).abs();
            let rel = abs / numeric.abs().max(ana.abs()).max(1e-6);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
            checked += 1;
        }
    }
    GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn smooth_net() -> Mlp {
        // Tanh is smooth, so finite differences are well behaved.
        let mut rng = StdRng::seed_from_u64(11);
        Mlp::new(
            &[3, 6, 5, 1],
            Activation::Tanh,
            Init::XavierUniform,
            &mut rng,
        )
    }

    #[test]
    fn mse_gradients_check_out() {
        let mut m = smooth_net();
        let x = Matrix::from_rows(&[&[0.3, -0.2, 0.9], &[-0.5, 0.1, 0.4]]);
        let y = Matrix::from_rows(&[&[0.25], &[-0.5]]);
        let report = check_mlp_gradients(&mut m, &x, &y, Loss::Mse, 1);
        assert!(report.checked > 50);
        assert!(
            report.passes(5e-3, 5e-2),
            "abs {} rel {}",
            report.max_abs_diff,
            report.max_rel_diff
        );
    }

    #[test]
    fn huber_gradients_check_out() {
        let mut m = smooth_net();
        let x = Matrix::from_rows(&[&[0.7, 0.2, -0.1]]);
        let y = Matrix::from_rows(&[&[2.0]]);
        let report = check_mlp_gradients(&mut m, &x, &y, Loss::Huber(0.3), 1);
        assert!(report.passes(5e-3, 5e-2));
    }

    #[test]
    fn relu_network_grads_check_with_tolerance() {
        // ReLU kinks make finite differences noisy near zero; use the shared
        // stride-1 check with a looser relative threshold.
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = Mlp::new(
            &[3, 16, 32, 16, 1],
            Activation::Relu,
            Init::HeNormal,
            &mut rng,
        );
        let x = Matrix::from_rows(&[&[0.4, 0.6, -0.3], &[0.9, -0.8, 0.2], &[0.1, 0.3, 0.7]]);
        let y = Matrix::from_rows(&[&[0.5], &[0.1], &[0.9]]);
        let report = check_mlp_gradients(&mut m, &x, &y, Loss::Mse, 7);
        assert!(
            report.passes(2e-2, 1e-1),
            "abs {} rel {}",
            report.max_abs_diff,
            report.max_rel_diff
        );
    }
}
