//! Multi-layer perceptron: a stack of [`Dense`] layers with backprop.

use crate::activation::Activation;
use crate::dense::Dense;
use crate::init::Init;
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A feed-forward network built from [`Dense`] layers.
///
/// The paper's branches are instances of this type with layer widths
/// `[in, 16, 32, 16, 1]`, ReLU hidden activations, and a linear output
/// (an "inverted bottleneck", §III-A).
///
/// # Examples
///
/// ```
/// use pinnsoc_nn::{Activation, Init, Matrix, Mlp};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// // Branch 1 of the paper: (V, I, T) -> SoC(t)
/// let branch1 = Mlp::new(&[3, 16, 32, 16, 1], Activation::Relu, Init::HeNormal, &mut rng);
/// assert_eq!(branch1.param_count(), 1153);
/// let soc = branch1.infer(&Matrix::row_vector(&[3.7, 0.5, 25.0]));
/// assert_eq!(soc.shape(), (1, 1));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Reusable ping-pong buffers for [`Mlp::forward_batch`].
///
/// Keep one per serving thread and steady-state batched inference allocates
/// nothing: each layer writes into one buffer while reading the other.
#[derive(Debug, Clone, Default)]
pub struct InferScratch {
    ping: Option<Matrix>,
    pong: Option<Matrix>,
}

/// Reusable ping-pong buffers for the scratch-reusing training passes
/// ([`Mlp::forward_train`] / [`Mlp::backward_train`]).
///
/// One instance serves both directions: the forward activations are
/// consumed layer-by-layer (each layer caches its own input), so the
/// backward pass can ping-pong its gradients through the same two buffers.
/// Keep one per training loop and the steady-state step allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct TrainScratch {
    ping: Option<Matrix>,
    pong: Option<Matrix>,
}

impl Mlp {
    /// Builds an MLP from layer `widths`, applying `hidden` activation to all
    /// layers except the last, which is linear ([`Activation::Identity`]).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given (need at least input and
    /// output) or any width is zero.
    pub fn new(widths: &[usize], hidden: Activation, init: Init, rng: &mut impl Rng) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        assert!(
            widths.iter().all(|&w| w > 0),
            "layer widths must be non-zero"
        );
        let mut layers = Vec::with_capacity(widths.len() - 1);
        for w in widths.windows(2) {
            let is_last = layers.len() == widths.len() - 2;
            let act = if is_last {
                Activation::Identity
            } else {
                hidden
            };
            layers.push(Dense::new(w[0], w[1], act, init, rng));
        }
        Self { layers }
    }

    /// Builds an MLP from pre-constructed layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive widths do not chain.
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "need at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].fan_out(),
                pair[1].fan_in(),
                "layer widths do not chain: {} -> {}",
                pair[0].fan_out(),
                pair[1].fan_in()
            );
        }
        Self { layers }
    }

    /// Network input width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].fan_in()
    }

    /// Network output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").fan_out()
    }

    /// Borrow of the layer stack.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Multiply–accumulate operations for one forward sample.
    pub fn macs(&self) -> usize {
        self.layers.iter().map(Dense::macs).sum()
    }

    /// Storage footprint of the parameters in bytes (fp32).
    pub fn memory_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    /// Training-mode forward pass (caches activations for [`Mlp::backward`]).
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Scratch-reusing training forward pass: each layer runs
    /// [`Dense::forward_train_into`] (fused GEMM-plus-bias over packed
    /// weight panels, activations cached for the backward pass),
    /// ping-ponging between the two scratch buffers so the steady-state
    /// training step performs **zero allocations**. Returns a borrow of the
    /// scratch buffer holding the `batch × output_dim` prediction.
    ///
    /// Outputs are bit-exact with [`Mlp::forward`] (the allocating
    /// training path) per the [bit-exactness
    /// contract](crate#bit-exactness-contract); call [`Mlp::backward_train`]
    /// next, on the same scratch.
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != self.input_dim()`.
    pub fn forward_train<'s>(
        &mut self,
        input: &Matrix,
        scratch: &'s mut TrainScratch,
    ) -> &'s Matrix {
        assert_eq!(
            input.cols(),
            self.input_dim(),
            "batch feature width mismatch"
        );
        for (li, layer) in self.layers.iter_mut().enumerate() {
            let (src, dst) = if li % 2 == 0 {
                (&scratch.ping, &mut scratch.pong)
            } else {
                (&scratch.pong, &mut scratch.ping)
            };
            let x = if li == 0 {
                input
            } else {
                src.as_ref().expect("previous layer ran")
            };
            let out = dst.get_or_insert_with(|| Matrix::zeros(1, 1));
            layer.forward_train_into(x, out);
        }
        let last = if self.layers.len().is_multiple_of(2) {
            &scratch.ping
        } else {
            &scratch.pong
        };
        last.as_ref().expect("at least one layer ran")
    }

    /// Scratch-reusing backward pass paired with [`Mlp::forward_train`]:
    /// propagates `dL/dy` through [`Dense::backward_into`], accumulating
    /// parameter gradients, with the inter-layer gradients ping-ponging
    /// through the scratch buffers (the forward activations they held are
    /// no longer needed). The input gradient is not returned; use
    /// [`Mlp::backward`] for cascaded networks.
    ///
    /// Accumulated gradients are bit-exact with [`Mlp::backward`].
    pub fn backward_train(&mut self, grad_output: &Matrix, scratch: &mut TrainScratch) {
        let depth = self.layers.len();
        for (li, layer) in self.layers.iter_mut().enumerate().rev() {
            let steps_done = depth - 1 - li;
            let (src, dst) = if steps_done.is_multiple_of(2) {
                (&scratch.pong, &mut scratch.ping)
            } else {
                (&scratch.ping, &mut scratch.pong)
            };
            let g = if steps_done == 0 {
                grad_output
            } else {
                src.as_ref().expect("later layer ran")
            };
            let out = dst.get_or_insert_with(|| Matrix::zeros(1, 1));
            layer.backward_into(g, out);
        }
    }

    /// Inference-only forward pass (no caching).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x);
        }
        x
    }

    /// Batched inference over a `batch × input_dim` matrix, ping-ponging
    /// between two scratch buffers so steady-state serving performs **zero
    /// allocations** per batch. Returns a borrow of the scratch buffer
    /// holding the `batch × output_dim` result.
    ///
    /// Per-row outputs are bit-exact with [`Mlp::infer`] /
    /// [`Mlp::infer_scalar`] on the corresponding single row (see
    /// [`Dense::forward_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != self.input_dim()`.
    pub fn forward_batch<'s>(&self, input: &Matrix, scratch: &'s mut InferScratch) -> &'s Matrix {
        self.forward_batch_impl(input, scratch, false)
    }

    /// [`Mlp::forward_batch`] through the fused GEMM-epilogue kernels
    /// ([`Dense::forward_batch_fused`]): per layer, one kernel computes
    /// GEMM + bias + activation from packed weight panels instead of a GEMM
    /// followed by an elementwise sweep. This is the serving engines' hot
    /// path.
    ///
    /// Bit-exact with [`Mlp::forward_batch`] and [`Mlp::infer`] (see the
    /// [bit-exactness contract](crate#bit-exactness-contract)).
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != self.input_dim()`.
    pub fn forward_batch_fused<'s>(
        &self,
        input: &Matrix,
        scratch: &'s mut InferScratch,
    ) -> &'s Matrix {
        self.forward_batch_impl(input, scratch, true)
    }

    fn forward_batch_impl<'s>(
        &self,
        input: &Matrix,
        scratch: &'s mut InferScratch,
        fused: bool,
    ) -> &'s Matrix {
        assert_eq!(
            input.cols(),
            self.input_dim(),
            "batch feature width mismatch"
        );
        for (li, layer) in self.layers.iter().enumerate() {
            let (src, dst) = if li % 2 == 0 {
                (&scratch.ping, &mut scratch.pong)
            } else {
                (&scratch.pong, &mut scratch.ping)
            };
            let x = if li == 0 {
                input
            } else {
                src.as_ref().expect("previous layer ran")
            };
            let out = dst.get_or_insert_with(|| Matrix::zeros(1, 1));
            if fused {
                layer.forward_batch_fused(x, out);
            } else {
                layer.forward_batch(x, out);
            }
        }
        let last = if self.layers.len().is_multiple_of(2) {
            &scratch.ping
        } else {
            &scratch.pong
        };
        last.as_ref().expect("at least one layer ran")
    }

    /// Convenience scalar inference for single-output networks.
    ///
    /// # Panics
    ///
    /// Panics if the network output width is not 1 or the feature length is
    /// wrong.
    pub fn infer_scalar(&self, features: &[f32]) -> f32 {
        assert_eq!(
            self.output_dim(),
            1,
            "infer_scalar requires a single-output network"
        );
        self.infer(&Matrix::row_vector(features))[(0, 0)]
    }

    /// Backpropagates `dL/dy`, accumulating parameter gradients, and returns
    /// `dL/dx` (useful for cascaded networks).
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Clears accumulated gradients on all layers.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Visits all `(param, grad)` slices in a deterministic order.
    pub fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }

    /// Scales the output layer's weights (not biases) by `factor`.
    ///
    /// Shrinking the final layer at initialization (e.g. `factor = 0.1`) is
    /// the standard small-output-init trick: the network starts near its
    /// mean prediction, which removes the chaotic early phase where large
    /// random outputs can steer composite losses (like the PINN's
    /// data + physics objective) into poor basins.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite.
    pub fn scale_output_weights(&mut self, factor: f32) {
        assert!(factor.is_finite(), "scale factor must be finite");
        self.layers
            .last_mut()
            .expect("non-empty")
            .scale_weights(factor);
    }

    /// Global L2 norm of the accumulated gradients.
    pub fn grad_norm(&mut self) -> f32 {
        let mut sq = 0.0_f32;
        self.visit_params(&mut |_p, g| {
            sq += g.iter().map(|x| x * x).sum::<f32>();
        });
        sq.sqrt()
    }

    /// Scales all gradients so the global norm does not exceed `max_norm`.
    ///
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        assert!(max_norm > 0.0, "max_norm must be positive");
        let norm = self.grad_norm();
        if norm > max_norm {
            let scale = max_norm / norm;
            self.visit_params(&mut |_p, g| {
                for x in g.iter_mut() {
                    *x *= scale;
                }
            });
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn paper_branch_parameter_counts() {
        // §III-A: branches have hidden widths 16/32/16; Branch 1 has 3 inputs,
        // Branch 2 has 4. Together: 2,322 parameters ≈ 9 kB fp32.
        let b1 = Mlp::new(
            &[3, 16, 32, 16, 1],
            Activation::Relu,
            Init::HeNormal,
            &mut rng(),
        );
        let b2 = Mlp::new(
            &[4, 16, 32, 16, 1],
            Activation::Relu,
            Init::HeNormal,
            &mut rng(),
        );
        assert_eq!(b1.param_count(), 1153);
        assert_eq!(b2.param_count(), 1169);
        assert_eq!(b1.param_count() + b2.param_count(), 2322);
        assert_eq!(b1.memory_bytes() + b2.memory_bytes(), 9288);
    }

    #[test]
    fn forward_shapes() {
        let mut m = Mlp::new(&[3, 8, 1], Activation::Relu, Init::HeNormal, &mut rng());
        let y = m.forward(&Matrix::zeros(5, 3));
        assert_eq!(y.shape(), (5, 1));
    }

    #[test]
    fn infer_matches_forward() {
        let mut m = Mlp::new(
            &[2, 4, 4, 1],
            Activation::Tanh,
            Init::XavierUniform,
            &mut rng(),
        );
        let x = Matrix::from_rows(&[&[0.3, -0.8], &[1.2, 0.4]]);
        assert_eq!(m.forward(&x), m.infer(&x));
    }

    #[test]
    fn last_layer_is_linear() {
        let m = Mlp::new(&[2, 4, 1], Activation::Relu, Init::HeNormal, &mut rng());
        assert_eq!(m.layers()[1].activation(), Activation::Identity);
        assert_eq!(m.layers()[0].activation(), Activation::Relu);
    }

    #[test]
    fn training_reduces_loss_on_linear_target() {
        use crate::loss::Loss;
        use crate::optim::{Adam, Optimizer};
        // y = 2a - b; an MLP should fit this quickly.
        let mut m = Mlp::new(&[2, 8, 1], Activation::Relu, Init::HeNormal, &mut rng());
        let mut opt = Adam::new(0.01);
        let x = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[0.5, 0.25],
        ]);
        let y = Matrix::from_rows(&[&[0.0], &[2.0], &[-1.0], &[1.0], &[0.75]]);
        let initial = Loss::Mse.value(&m.infer(&x), &y);
        for _ in 0..500 {
            let pred = m.forward(&x);
            let grad = Loss::Mse.gradient(&pred, &y);
            m.zero_grad();
            m.backward(&grad);
            opt.step(&mut m);
        }
        let fin = Loss::Mse.value(&m.infer(&x), &y);
        assert!(
            fin < initial * 0.05,
            "loss {initial} -> {fin} did not improve enough"
        );
    }

    #[test]
    fn grad_clip_bounds_norm() {
        let mut m = Mlp::new(&[2, 16, 1], Activation::Relu, Init::HeNormal, &mut rng());
        let x = Matrix::from_rows(&[&[10.0, -10.0]]);
        let y = m.forward(&x);
        m.backward(&y.map(|_| 100.0));
        let pre = m.clip_grad_norm(1.0);
        assert!(pre > 1.0);
        assert!(m.grad_norm() <= 1.0 + 1e-4);
    }

    #[test]
    fn cascaded_backward_returns_input_gradient() {
        let mut m = Mlp::new(&[3, 4, 1], Activation::Relu, Init::HeNormal, &mut rng());
        let x = Matrix::from_rows(&[&[0.5, 0.5, 0.5]]);
        let _ = m.forward(&x);
        let dx = m.backward(&Matrix::from_rows(&[&[1.0]]));
        assert_eq!(dx.shape(), (1, 3));
    }

    #[test]
    #[should_panic(expected = "do not chain")]
    fn mismatched_layers_panic() {
        let mut r = rng();
        let l1 = Dense::new(2, 4, Activation::Relu, Init::HeNormal, &mut r);
        let l2 = Dense::new(5, 1, Activation::Identity, Init::HeNormal, &mut r);
        let _ = Mlp::from_layers(vec![l1, l2]);
    }

    #[test]
    fn forward_batch_rows_bitwise_match_scalar_inference() {
        let m = Mlp::new(
            &[3, 16, 32, 16, 1],
            Activation::Relu,
            Init::HeNormal,
            &mut rng(),
        );
        let mut rows = Vec::new();
        for i in 0..37 {
            let t = i as f32 / 36.0;
            rows.push([t, 1.0 - 2.0 * t, (t - 0.5) * 3.0]);
        }
        let x = Matrix::from_vec(rows.len(), 3, rows.iter().flatten().copied().collect());
        let mut scratch = InferScratch::default();
        let batch = m.forward_batch(&x, &mut scratch).clone();
        assert_eq!(batch.shape(), (rows.len(), 1));
        for (i, row) in rows.iter().enumerate() {
            let scalar = m.infer_scalar(row);
            assert_eq!(
                batch[(i, 0)].to_bits(),
                scalar.to_bits(),
                "row {i}: batch {} vs scalar {scalar}",
                batch[(i, 0)]
            );
        }
        // Scratch reuse across differently sized batches stays correct.
        let x2 = x.slice_rows(0, 5);
        let batch2 = m.forward_batch(&x2, &mut scratch);
        assert_eq!(batch2.shape(), (5, 1));
        assert_eq!(batch2[(4, 0)].to_bits(), batch[(4, 0)].to_bits());
    }

    #[test]
    fn forward_batch_fused_bitwise_matches_unfused_and_scalar() {
        let m = Mlp::new(
            &[3, 16, 32, 16, 1],
            Activation::Relu,
            Init::HeNormal,
            &mut rng(),
        );
        let rows: Vec<[f32; 3]> = (0..23)
            .map(|i| {
                let t = i as f32 / 22.0;
                [t, 1.0 - 2.0 * t, (t - 0.5) * 3.0]
            })
            .collect();
        let x = Matrix::from_vec(rows.len(), 3, rows.iter().flatten().copied().collect());
        let mut scratch = InferScratch::default();
        let unfused = m.forward_batch(&x, &mut scratch).clone();
        let mut scratch_fused = InferScratch::default();
        let fused = m.forward_batch_fused(&x, &mut scratch_fused).clone();
        assert_eq!(fused.shape(), unfused.shape());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(fused[(i, 0)].to_bits(), unfused[(i, 0)].to_bits());
            assert_eq!(fused[(i, 0)].to_bits(), m.infer_scalar(row).to_bits());
        }
        // Scratch reuse across sizes and across fused/unfused calls.
        let x2 = x.slice_rows(3, 4);
        let again = m.forward_batch_fused(&x2, &mut scratch).clone();
        assert_eq!(again[(0, 0)].to_bits(), unfused[(3, 0)].to_bits());
    }

    #[test]
    fn forward_batch_matches_infer_on_multi_output_networks() {
        let m = Mlp::new(
            &[4, 8, 3],
            Activation::Tanh,
            Init::XavierUniform,
            &mut rng(),
        );
        let x = Matrix::from_rows(&[&[0.1, -0.4, 0.7, 0.0], &[1.0, 0.5, -0.5, 2.0]]);
        let mut scratch = InferScratch::default();
        assert_eq!(m.forward_batch(&x, &mut scratch), &m.infer(&x));
    }

    #[test]
    fn train_path_matches_classic_path_bitwise() {
        use crate::loss::Loss;
        use crate::optim::{Adam, Optimizer};
        // The scratch-reusing fused training path must reproduce the
        // allocating path bit-for-bit: predictions, accumulated gradients
        // (including a second weighted backward per step, as the PINN
        // objective performs), and the resulting weight trajectories.
        let x = Matrix::from_vec(10, 3, (0..30).map(|i| (i as f32 * 0.29).sin()).collect());
        let y = Matrix::from_vec(10, 1, (0..10).map(|i| (i as f32 * 0.13).cos()).collect());
        let x2 = Matrix::from_vec(6, 3, (0..18).map(|i| (i as f32 * 0.41).cos()).collect());
        let y2 = Matrix::from_vec(6, 1, (0..6).map(|i| (i as f32 * 0.57).sin()).collect());
        let mut classic = Mlp::new(
            &[3, 16, 32, 16, 1],
            Activation::Relu,
            Init::HeNormal,
            &mut rng(),
        );
        let mut fused = classic.clone();
        let mut opt_c = Adam::new(0.01);
        let mut opt_f = Adam::new(0.01);
        let mut scratch = TrainScratch::default();
        let mut grad_buf = Matrix::zeros(1, 1);
        for step in 0..20 {
            // Classic step: data term + weighted auxiliary term.
            let pred = classic.forward(&x);
            let grad = Loss::Mae.gradient(&pred, &y);
            classic.zero_grad();
            classic.backward(&grad);
            let pred2 = classic.forward(&x2);
            let grad2 = Loss::Mae.gradient(&pred2, &y2).scale(0.7);
            classic.backward(&grad2);
            opt_c.step(&mut classic);
            // Fused scratch-reusing step.
            {
                let pred_f = fused.forward_train(&x, &mut scratch);
                assert_eq!(pred_f.shape(), pred.shape());
                for (a, b) in pred_f.as_slice().iter().zip(pred.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "step {step}: prediction");
                }
                Loss::Mae.gradient_into(pred_f, &y, &mut grad_buf);
            }
            fused.zero_grad();
            fused.backward_train(&grad_buf, &mut scratch);
            {
                let pred2_f = fused.forward_train(&x2, &mut scratch);
                Loss::Mae.gradient_into(pred2_f, &y2, &mut grad_buf);
            }
            grad_buf.map_inplace(|g| g * 0.7);
            fused.backward_train(&grad_buf, &mut scratch);
            // Accumulated gradients must match bitwise before the step.
            let mut grads = (Vec::new(), Vec::new());
            classic.visit_params(&mut |_p, g| grads.0.extend_from_slice(g));
            fused.visit_params(&mut |_p, g| grads.1.extend_from_slice(g));
            for (i, (a, b)) in grads.0.iter().zip(&grads.1).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "step {step}: grad {i}");
            }
            opt_f.step(&mut fused);
        }
        // Final weights identical -> identical models.
        let probe = Matrix::from_rows(&[&[0.2, -0.4, 0.9]]);
        assert_eq!(
            classic.infer(&probe)[(0, 0)].to_bits(),
            fused.infer(&probe)[(0, 0)].to_bits()
        );
    }

    #[test]
    fn train_path_handles_changing_batch_sizes() {
        use crate::loss::Loss;
        use crate::optim::{Adam, Optimizer};
        // Partial final minibatches shrink the batch height between steps;
        // the reused buffers must track the shape and stay bit-exact.
        let mut classic = Mlp::new(
            &[2, 8, 1],
            Activation::Tanh,
            Init::XavierUniform,
            &mut rng(),
        );
        let mut fused = classic.clone();
        let mut opt_c = Adam::new(0.02);
        let mut opt_f = Adam::new(0.02);
        let mut scratch = TrainScratch::default();
        let mut grad_buf = Matrix::zeros(1, 1);
        for &b in &[7usize, 3, 7, 1, 4] {
            let x = Matrix::from_vec(b, 2, (0..2 * b).map(|i| (i as f32 * 0.31).sin()).collect());
            let y = Matrix::from_vec(b, 1, (0..b).map(|i| i as f32 * 0.1).collect());
            let pred = classic.forward(&x);
            let grad = Loss::Mae.gradient(&pred, &y);
            classic.zero_grad();
            classic.backward(&grad);
            opt_c.step(&mut classic);
            {
                let pred_f = fused.forward_train(&x, &mut scratch);
                Loss::Mae.gradient_into(pred_f, &y, &mut grad_buf);
            }
            fused.zero_grad();
            fused.backward_train(&grad_buf, &mut scratch);
            opt_f.step(&mut fused);
        }
        let probe = Matrix::from_rows(&[&[0.5, -0.25]]);
        assert_eq!(
            classic.infer(&probe)[(0, 0)].to_bits(),
            fused.infer(&probe)[(0, 0)].to_bits()
        );
    }

    #[test]
    fn scale_output_weights_scales_predictions_linearly() {
        let mut m = Mlp::new(&[2, 4, 1], Activation::Relu, Init::HeNormal, &mut rng());
        let x = Matrix::from_rows(&[&[0.3, -0.9]]);
        let before = m.infer(&x)[(0, 0)];
        m.scale_output_weights(0.5);
        let after = m.infer(&x)[(0, 0)];
        // Output layer is linear with zero bias at init, so scaling weights
        // halves the prediction.
        assert!((after - 0.5 * before).abs() < 1e-6, "{before} -> {after}");
    }

    #[test]
    fn serde_roundtrip_preserves_inference() {
        let m = Mlp::new(
            &[3, 16, 32, 16, 1],
            Activation::Relu,
            Init::HeNormal,
            &mut rng(),
        );
        let json = serde_json::to_string(&m).unwrap();
        let m2: Mlp = serde_json::from_str(&json).unwrap();
        let x = Matrix::row_vector(&[0.1, 0.9, 0.5]);
        assert_eq!(m.infer(&x), m2.infer(&x));
    }
}
