//! Single-layer LSTM with a linear per-step head and full BPTT.
//!
//! Used to reproduce the baselines of Table I: the LSTM SoC estimator of
//! Wong et al. \[17\] and the DE-LSTM of Dang et al. \[7\]. Gate layout follows
//! the PyTorch convention `(input, forget, cell, output)`.

use crate::activation::sigmoid;
use crate::init::Init;
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single-layer LSTM with a shared linear output head applied at every
/// time step.
///
/// Input is a sequence of `batch × input_dim` matrices; output is one
/// `batch × output_dim` matrix per step.
///
/// # Examples
///
/// ```
/// use pinnsoc_nn::{Lstm, Matrix};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut lstm = Lstm::new(3, 16, 1, &mut rng);
/// let steps = vec![Matrix::zeros(2, 3); 5];
/// let outputs = lstm.forward_sequence(&steps);
/// assert_eq!(outputs.len(), 5);
/// assert_eq!(outputs[0].shape(), (2, 1));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    input_dim: usize,
    hidden_dim: usize,
    output_dim: usize,
    /// `input_dim × 4·hidden` input-to-hidden weights.
    w_ih: Matrix,
    /// `hidden × 4·hidden` hidden-to-hidden weights.
    w_hh: Matrix,
    /// `4·hidden` gate biases.
    bias: Vec<f32>,
    /// `hidden × output_dim` head weights.
    w_ho: Matrix,
    /// `output_dim` head bias.
    b_o: Vec<f32>,
    #[serde(skip)]
    grads: Option<Grads>,
    #[serde(skip)]
    caches: Vec<StepCache>,
}

#[derive(Debug, Clone)]
struct Grads {
    w_ih: Matrix,
    w_hh: Matrix,
    bias: Vec<f32>,
    w_ho: Matrix,
    b_o: Vec<f32>,
}

#[derive(Debug, Clone)]
struct StepCache {
    input: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    /// Post-nonlinearity gate values `(i, f, g, o)`, each `batch × hidden`.
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    tanh_c: Matrix,
    h: Matrix,
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights, zero biases, and the
    /// forget-gate bias set to 1 (standard trick for gradient flow).
    pub fn new(input_dim: usize, hidden_dim: usize, output_dim: usize, rng: &mut impl Rng) -> Self {
        assert!(
            input_dim > 0 && hidden_dim > 0 && output_dim > 0,
            "dimensions must be non-zero"
        );
        let mut bias = vec![0.0; 4 * hidden_dim];
        for b in bias.iter_mut().skip(hidden_dim).take(hidden_dim) {
            *b = 1.0; // forget gate
        }
        Self {
            input_dim,
            hidden_dim,
            output_dim,
            w_ih: Init::XavierUniform.sample(input_dim, 4 * hidden_dim, rng),
            w_hh: Init::XavierUniform.sample(hidden_dim, 4 * hidden_dim, rng),
            bias,
            w_ho: Init::XavierUniform.sample(hidden_dim, output_dim, rng),
            b_o: vec![0.0; output_dim],
            grads: None,
            caches: Vec::new(),
        }
    }

    /// Input feature width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden state width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Output width of the per-step head.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Total trainable parameters (gates + head).
    pub fn param_count(&self) -> usize {
        self.w_ih.len() + self.w_hh.len() + self.bias.len() + self.w_ho.len() + self.b_o.len()
    }

    /// Multiply–accumulate operations for one forward *step* of one sample.
    pub fn macs_per_step(&self) -> usize {
        self.w_ih.len() + self.w_hh.len() + self.w_ho.len()
    }

    /// Multiply–accumulate operations for a whole sequence of `steps` steps.
    pub fn macs_for_sequence(&self, steps: usize) -> usize {
        self.macs_per_step() * steps
    }

    /// Parameter storage in bytes (fp32).
    pub fn memory_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    fn gate_pre_activations(&self, x: &Matrix, h: &Matrix) -> Matrix {
        x.matmul(&self.w_ih)
            .add(&h.matmul(&self.w_hh))
            .add_row_broadcast(&self.bias)
    }

    fn step(&self, x: &Matrix, h_prev: &Matrix, c_prev: &Matrix) -> StepCache {
        let hd = self.hidden_dim;
        let z = self.gate_pre_activations(x, h_prev);
        let i = z.slice_cols(0, hd).map(sigmoid);
        let f = z.slice_cols(hd, hd).map(sigmoid);
        let g = z.slice_cols(2 * hd, hd).map(f32::tanh);
        let o = z.slice_cols(3 * hd, hd).map(sigmoid);
        let c = f.hadamard(c_prev).add(&i.hadamard(&g));
        let tanh_c = c.map(f32::tanh);
        let h = o.hadamard(&tanh_c);
        let _ = c;
        StepCache {
            input: x.clone(),
            h_prev: h_prev.clone(),
            c_prev: c_prev.clone(),
            i,
            f,
            g,
            o,
            tanh_c,
            h,
        }
    }

    /// Runs the sequence forward in training mode (caches every step) and
    /// returns the per-step head outputs.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or the feature width is wrong.
    pub fn forward_sequence(&mut self, steps: &[Matrix]) -> Vec<Matrix> {
        assert!(!steps.is_empty(), "empty sequence");
        let batch = steps[0].rows();
        let mut h = Matrix::zeros(batch, self.hidden_dim);
        let mut c = Matrix::zeros(batch, self.hidden_dim);
        self.caches.clear();
        let mut outputs = Vec::with_capacity(steps.len());
        for x in steps {
            assert_eq!(x.cols(), self.input_dim, "input width mismatch");
            assert_eq!(x.rows(), batch, "batch size changed mid-sequence");
            let cache = self.step(x, &h, &c);
            h = cache.h.clone();
            c = cache
                .f
                .hadamard(&cache.c_prev)
                .add(&cache.i.hadamard(&cache.g));
            outputs.push(h.matmul(&self.w_ho).add_row_broadcast(&self.b_o));
            self.caches.push(cache);
        }
        outputs
    }

    /// Inference-only pass returning per-step outputs without caching.
    pub fn infer_sequence(&self, steps: &[Matrix]) -> Vec<Matrix> {
        assert!(!steps.is_empty(), "empty sequence");
        let batch = steps[0].rows();
        let mut h = Matrix::zeros(batch, self.hidden_dim);
        let mut c = Matrix::zeros(batch, self.hidden_dim);
        let mut outputs = Vec::with_capacity(steps.len());
        for x in steps {
            let cache = self.step(x, &h, &c);
            c = cache.f.hadamard(&c).add(&cache.i.hadamard(&cache.g));
            h = cache.h;
            outputs.push(h.matmul(&self.w_ho).add_row_broadcast(&self.b_o));
        }
        outputs
    }

    /// Backpropagation through time.
    ///
    /// `grad_outputs` must contain one `batch × output_dim` gradient per step
    /// (zero matrices for steps without supervision). Gradients accumulate
    /// into the internal buffers until [`Lstm::zero_grad`].
    ///
    /// # Panics
    ///
    /// Panics if called before [`Lstm::forward_sequence`] or with a
    /// mismatched number of steps.
    pub fn backward_sequence(&mut self, grad_outputs: &[Matrix]) {
        assert_eq!(
            grad_outputs.len(),
            self.caches.len(),
            "gradient steps {} do not match cached steps {}",
            grad_outputs.len(),
            self.caches.len()
        );
        assert!(!self.caches.is_empty(), "backward called before forward");
        let hd = self.hidden_dim;
        let batch = self.caches[0].input.rows();
        let mut grads = self.grads.take().unwrap_or_else(|| Grads {
            w_ih: Matrix::zeros(self.input_dim, 4 * hd),
            w_hh: Matrix::zeros(hd, 4 * hd),
            bias: vec![0.0; 4 * hd],
            w_ho: Matrix::zeros(hd, self.output_dim),
            b_o: vec![0.0; self.output_dim],
        });

        let mut dh_next = Matrix::zeros(batch, hd);
        let mut dc_next = Matrix::zeros(batch, hd);
        for (cache, dy) in self.caches.iter().zip(grad_outputs).rev() {
            // Head: y = h·W_ho + b_o
            grads.w_ho.add_assign(&cache.h.matmul_tn(dy));
            for (b, s) in grads.b_o.iter_mut().zip(dy.column_sums()) {
                *b += s;
            }
            let mut dh = dy.matmul_nt(&self.w_ho);
            dh.add_assign(&dh_next);

            // h = o ⊙ tanh(c)
            let d_o = dh.hadamard(&cache.tanh_c);
            let mut dc = dh
                .hadamard(&cache.o)
                .hadamard(&cache.tanh_c.map(|t| 1.0 - t * t));
            dc.add_assign(&dc_next);

            // c = f ⊙ c_prev + i ⊙ g
            let d_i = dc.hadamard(&cache.g);
            let d_g = dc.hadamard(&cache.i);
            let d_f = dc.hadamard(&cache.c_prev);
            dc_next = dc.hadamard(&cache.f);

            // Through the gate nonlinearities to pre-activations.
            let dz_i = d_i.zip_with(&cache.i, |d, s| d * s * (1.0 - s));
            let dz_f = d_f.zip_with(&cache.f, |d, s| d * s * (1.0 - s));
            let dz_g = d_g.zip_with(&cache.g, |d, t| d * (1.0 - t * t));
            let dz_o = d_o.zip_with(&cache.o, |d, s| d * s * (1.0 - s));
            let dz = dz_i.hstack(&dz_f).hstack(&dz_g).hstack(&dz_o);

            grads.w_ih.add_assign(&cache.input.matmul_tn(&dz));
            grads.w_hh.add_assign(&cache.h_prev.matmul_tn(&dz));
            for (b, s) in grads.bias.iter_mut().zip(dz.column_sums()) {
                *b += s;
            }
            dh_next = dz.matmul_nt(&self.w_hh);
        }
        self.grads = Some(grads);
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grads = None;
    }

    /// Visits `(param, grad)` slices in a deterministic order
    /// (`w_ih`, `w_hh`, `bias`, `w_ho`, `b_o`).
    pub fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        let hd = self.hidden_dim;
        let grads = self.grads.get_or_insert_with(|| Grads {
            w_ih: Matrix::zeros(self.input_dim, 4 * hd),
            w_hh: Matrix::zeros(hd, 4 * hd),
            bias: vec![0.0; 4 * hd],
            w_ho: Matrix::zeros(hd, self.output_dim),
            b_o: vec![0.0; self.output_dim],
        });
        visitor(self.w_ih.as_mut_slice(), grads.w_ih.as_mut_slice());
        visitor(self.w_hh.as_mut_slice(), grads.w_hh.as_mut_slice());
        visitor(&mut self.bias, &mut grads.bias);
        visitor(self.w_ho.as_mut_slice(), grads.w_ho.as_mut_slice());
        visitor(&mut self.b_o, &mut grads.b_o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn shapes_and_param_count() {
        let lstm = Lstm::new(3, 8, 1, &mut rng());
        // 4h(in + h) + 4h gates, h·out + out head
        assert_eq!(lstm.param_count(), 4 * 8 * (3 + 8) + 4 * 8 + 8 + 1);
        assert_eq!(lstm.macs_per_step(), 3 * 32 + 8 * 32 + 8);
    }

    #[test]
    fn paper_scale_lstm_size() {
        // Table I: LSTM [17] ≈ 4 MB ≈ 1M fp32 params. Hidden 500 on 3 inputs:
        let lstm = Lstm::new(3, 500, 1, &mut rng());
        let params = lstm.param_count();
        assert!(
            (1_000_000..1_100_000).contains(&params),
            "params = {params}"
        );
        assert!(lstm.memory_bytes() > 4_000_000);
    }

    #[test]
    fn infer_matches_forward() {
        let mut lstm = Lstm::new(2, 4, 1, &mut rng());
        let steps: Vec<Matrix> = (0..6)
            .map(|t| Matrix::from_rows(&[&[t as f32 * 0.1, -0.2]]))
            .collect();
        let a = lstm.forward_sequence(&steps);
        let b = lstm.infer_sequence(&steps);
        assert_eq!(a, b);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // Tiny LSTM, loss = MSE of final-step output against a constant.
        let mut lstm = Lstm::new(2, 3, 1, &mut rng());
        let steps: Vec<Matrix> = vec![
            Matrix::from_rows(&[&[0.5, -0.3]]),
            Matrix::from_rows(&[&[-0.1, 0.8]]),
            Matrix::from_rows(&[&[0.2, 0.2]]),
        ];
        let target = Matrix::from_rows(&[&[0.7]]);

        let loss_of = |l: &Lstm| -> f64 {
            let outs = l.infer_sequence(&steps);
            let last = outs.last().unwrap();
            Loss::Mse.value(last, &target) as f64
        };

        // Analytic gradients.
        let outs = lstm.forward_sequence(&steps);
        let mut grads: Vec<Matrix> = outs
            .iter()
            .map(|o| Matrix::zeros(o.rows(), o.cols()))
            .collect();
        let gl = grads.len();
        grads[gl - 1] = Loss::Mse.gradient(outs.last().unwrap(), &target);
        lstm.zero_grad();
        lstm.backward_sequence(&grads);

        // Collect analytic grads into a flat vec via visit_params.
        let mut analytic = Vec::new();
        lstm.visit_params(&mut |_p, g| analytic.extend_from_slice(g));

        // Numeric gradients for a sample of parameters.
        let eps = 1e-3_f32;
        let mut flat_index = 0usize;
        let mut checked = 0usize;
        let total_params = lstm.param_count();
        let stride = (total_params / 40).max(1);
        for tensor in 0..5 {
            // Re-visit to perturb individual entries.
            let mut lens = Vec::new();
            lstm.visit_params(&mut |p, _| lens.push(p.len()));
            let len = lens[tensor];
            for i in (0..len).step_by(stride) {
                let mut idx = 0;
                // +eps
                lstm.visit_params(&mut |p, _| {
                    if idx == tensor {
                        p[i] += eps;
                    }
                    idx += 1;
                });
                let plus = loss_of(&lstm);
                // -2eps
                idx = 0;
                lstm.visit_params(&mut |p, _| {
                    if idx == tensor {
                        p[i] -= 2.0 * eps;
                    }
                    idx += 1;
                });
                let minus = loss_of(&lstm);
                // restore
                idx = 0;
                lstm.visit_params(&mut |p, _| {
                    if idx == tensor {
                        p[i] += eps;
                    }
                    idx += 1;
                });
                let numeric = ((plus - minus) / (2.0 * eps as f64)) as f32;
                let offset: usize = lens[..tensor].iter().sum();
                let ana = analytic[offset + i];
                assert!(
                    (numeric - ana).abs() < 2e-2 * (1.0 + numeric.abs().max(ana.abs())),
                    "tensor {tensor} index {i}: numeric {numeric} vs analytic {ana}"
                );
                checked += 1;
            }
            flat_index += len;
        }
        assert_eq!(flat_index, total_params);
        assert!(checked > 10, "checked too few parameters ({checked})");
    }

    #[test]
    fn learns_running_mean() {
        // Target at each step = mean of inputs so far; LSTM should reduce loss.
        let mut r = rng();
        let mut lstm = Lstm::new(1, 8, 1, &mut r);
        let mut opt = Adam::new(0.01);
        use rand::Rng;
        let make_seq = |r: &mut StdRng| -> (Vec<Matrix>, Vec<Matrix>) {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            let mut acc = 0.0f32;
            for t in 0..8 {
                let v: f32 = r.gen_range(-1.0..1.0);
                acc += v;
                xs.push(Matrix::from_rows(&[&[v]]));
                ys.push(Matrix::from_rows(&[&[acc / (t + 1) as f32]]));
            }
            (xs, ys)
        };
        let (vx, vy) = make_seq(&mut r);
        let eval = |l: &Lstm| -> f32 {
            let outs = l.infer_sequence(&vx);
            outs.iter()
                .zip(&vy)
                .map(|(o, y)| Loss::Mse.value(o, y))
                .sum::<f32>()
                / vx.len() as f32
        };
        let before = eval(&lstm);
        for _ in 0..200 {
            let (xs, ys) = make_seq(&mut r);
            let outs = lstm.forward_sequence(&xs);
            let grads: Vec<Matrix> = outs
                .iter()
                .zip(&ys)
                .map(|(o, y)| Loss::Mse.gradient(o, y))
                .collect();
            lstm.zero_grad();
            lstm.backward_sequence(&grads);
            opt.step(&mut lstm);
        }
        let after = eval(&lstm);
        assert!(
            after < before * 0.5,
            "LSTM did not learn: {before} -> {after}"
        );
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut lstm = Lstm::new(1, 2, 1, &mut rng());
        let _ = lstm.forward_sequence(&[]);
    }

    #[test]
    fn serde_roundtrip_preserves_inference() {
        let lstm = Lstm::new(3, 5, 1, &mut rng());
        let json = serde_json::to_string(&lstm).unwrap();
        let lstm2: Lstm = serde_json::from_str(&json).unwrap();
        let steps = vec![Matrix::from_rows(&[&[0.1, 0.2, 0.3]]); 4];
        assert_eq!(lstm.infer_sequence(&steps), lstm2.infer_sequence(&steps));
    }
}
