//! Fully-connected (dense) layer with cached-activation backpropagation.

use crate::activation::Activation;
use crate::init::Init;
use crate::matrix::{Matrix, PackedWeights};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A fully-connected layer `y = σ(x·W + b)`.
///
/// Weights are stored `fan_in × fan_out` so a batch-first input
/// (`batch × fan_in`) multiplies directly. The layer caches the forward
/// input and pre-activation, so `backward` must be called after `forward`
/// on the same batch.
///
/// # Examples
///
/// ```
/// use pinnsoc_nn::{Activation, Dense, Init, Matrix};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut layer = Dense::new(3, 16, Activation::Relu, Init::HeNormal, &mut rng);
/// let x = Matrix::zeros(4, 3);
/// let y = layer.forward(&x);
/// assert_eq!(y.shape(), (4, 16));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    weight: Matrix,
    bias: Vec<f32>,
    activation: Activation,
    #[serde(skip)]
    grad_weight: Option<Matrix>,
    #[serde(skip)]
    grad_bias: Vec<f32>,
    #[serde(skip)]
    cache: Option<Cache>,
    /// Lazily packed weight panels for [`Dense::forward_batch_fused`].
    /// Invalidated (taken) whenever the weights can change — the serving
    /// path packs once per trained model and reuses it for every batch.
    #[serde(skip)]
    packed: OnceLock<PackedWeights>,
    /// Packed weight panels for the *training* forward pass
    /// ([`Dense::forward_train_into`]). Unlike `packed`, which is dropped
    /// on invalidation, this buffer is repacked **in place** after each
    /// optimizer step (weights change every step during training, so
    /// dropping it would allocate per step).
    #[serde(skip)]
    train_packed: Option<PackedWeights>,
    /// Set whenever the weights may have changed; the next training
    /// forward repacks `train_packed` in place.
    #[serde(skip)]
    train_packed_stale: bool,
}

#[derive(Debug, Clone)]
struct Cache {
    input: Matrix,
    pre_activation: Matrix,
    /// δ = dL/dy ⊙ σ'(z) of the latest backward pass (reused buffer).
    delta: Matrix,
    /// This pass's `xᵀ·δ` contribution, staged before accumulating into
    /// `grad_weight` so repeated backward calls (data + physics terms of
    /// one step) sum exactly like the allocating path.
    grad_w_pass: Matrix,
    /// This pass's per-column δ sums, staged like `grad_w_pass`.
    bias_sums: Vec<f32>,
}

impl Cache {
    fn empty() -> Self {
        Self {
            input: Matrix::zeros(1, 1),
            pre_activation: Matrix::zeros(1, 1),
            delta: Matrix::zeros(1, 1),
            grad_w_pass: Matrix::zeros(1, 1),
            bias_sums: Vec::new(),
        }
    }
}

impl Dense {
    /// Creates a layer with `init`-sampled weights and zero biases.
    pub fn new(
        fan_in: usize,
        fan_out: usize,
        activation: Activation,
        init: Init,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            weight: init.sample(fan_in, fan_out, rng),
            bias: vec![0.0; fan_out],
            activation,
            grad_weight: None,
            grad_bias: vec![0.0; fan_out],
            cache: None,
            packed: OnceLock::new(),
            train_packed: None,
            train_packed_stale: false,
        }
    }

    /// Creates a layer from explicit weights and biases (used in tests and
    /// when loading persisted models).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weight.cols()`.
    pub fn from_parts(weight: Matrix, bias: Vec<f32>, activation: Activation) -> Self {
        assert_eq!(bias.len(), weight.cols(), "bias length must equal fan_out");
        let fan_out = weight.cols();
        Self {
            weight,
            bias,
            activation,
            grad_weight: None,
            grad_bias: vec![0.0; fan_out],
            cache: None,
            packed: OnceLock::new(),
            train_packed: None,
            train_packed_stale: false,
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.weight.rows()
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.weight.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Borrow of the weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Borrow of the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Number of trainable parameters (`fan_in·fan_out + fan_out`).
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Multiply–accumulate operations for one forward sample.
    pub fn macs(&self) -> usize {
        self.weight.len()
    }

    /// Invalidates every packed snapshot of the weights. Must be called by
    /// every path that can mutate them — the serving panels are dropped
    /// (repacked lazily on next use) and the training panels are marked for
    /// an in-place repack.
    fn invalidate_packed(&mut self) {
        self.packed.take();
        self.train_packed_stale = true;
    }

    /// Scales the weight matrix (not the bias) by `factor` — used for
    /// small-output initialization of the final layer.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite.
    pub fn scale_weights(&mut self, factor: f32) {
        assert!(factor.is_finite(), "scale factor must be finite");
        self.weight.map_inplace(|w| w * factor);
        self.invalidate_packed();
    }

    /// Forward pass; caches activations for a subsequent [`Dense::backward`].
    ///
    /// The cached input and pre-activation reuse the same buffers across
    /// training steps (copy-in instead of clone), so steady-state training
    /// allocates only the returned output per layer.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let cache = self.cache.get_or_insert_with(Cache::empty);
        cache.input.copy_from(input);
        input.matmul_into(&self.weight, &mut cache.pre_activation);
        for r in 0..cache.pre_activation.rows() {
            for (x, &b) in cache.pre_activation.row_mut(r).iter_mut().zip(&self.bias) {
                *x += b;
            }
        }
        self.activation.forward(&cache.pre_activation)
    }

    /// Training forward pass into a caller-owned buffer: the fused
    /// GEMM-plus-bias kernel ([`Matrix::matmul_bias_act_into`] over
    /// in-place-repacked [`PackedWeights`] panels) produces the
    /// pre-activation, which is cached for [`Dense::backward_into`], then
    /// the activation is applied into `out`. Steady-state training steps
    /// allocate nothing in this layer: the cache buffers, the packed
    /// panels, and `out` are all reused.
    ///
    /// Per-element outputs are bit-exact with [`Dense::forward`] (the
    /// allocating training path) per the [bit-exactness
    /// contract](crate#bit-exactness-contract).
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != self.fan_in()`.
    pub fn forward_train_into(&mut self, input: &Matrix, out: &mut Matrix) {
        let cache = self.cache.get_or_insert_with(Cache::empty);
        cache.input.copy_from(input);
        // Repack in place only when the weights changed (once per optimizer
        // step, amortized over the data and physics forward passes).
        let stale = self.train_packed_stale;
        match &mut self.train_packed {
            Some(packed) => {
                if stale {
                    packed.pack_into(&self.weight);
                }
            }
            none => *none = Some(PackedWeights::pack(&self.weight)),
        }
        self.train_packed_stale = false;
        let packed = self.train_packed.as_ref().expect("just packed");
        // Fused GEMM + bias (identity epilogue): the cached pre-activation
        // includes the bias, exactly as in `forward`.
        input.matmul_bias_act_into(
            packed,
            &self.bias,
            Activation::Identity,
            &mut cache.pre_activation,
        );
        let act = self.activation;
        cache.pre_activation.map_into(out, |x| act.apply(x));
    }

    /// Forward pass without caching (inference-only, avoids the clone).
    ///
    /// This is the simple allocating reference pipeline (`matmul →
    /// broadcast → activate`); the serving engines use
    /// [`Dense::forward_batch`], which computes the same values (bit-exact
    /// per row) without the intermediate allocations.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let pre = input.matmul(&self.weight).add_row_broadcast(&self.bias);
        self.activation.forward(&pre)
    }

    /// Batched inference into a caller-owned buffer: one register-blocked
    /// GEMM over the whole `batch × fan_in` input, then a single
    /// bias-and-activation sweep. No allocation once `out` has capacity.
    ///
    /// This is a separate implementation from [`Dense::infer`]'s allocating
    /// pipeline, but per-row results are bit-exact across the two paths and
    /// across batch heights — see the [bit-exactness
    /// contract](crate#bit-exactness-contract).
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != self.fan_in()`.
    pub fn forward_batch(&self, input: &Matrix, out: &mut Matrix) {
        input.matmul_into(&self.weight, out);
        let act = self.activation;
        for r in 0..out.rows() {
            for (x, &b) in out.row_mut(r).iter_mut().zip(&self.bias) {
                *x = act.apply(*x + b);
            }
        }
    }

    /// Batched inference through the fused GEMM epilogue: one kernel
    /// computes `σ((x·W) + b)` directly from packed weight panels
    /// ([`PackedWeights`], built lazily on first use and reused until the
    /// weights change), applying bias and activation while the accumulators
    /// are still in registers.
    ///
    /// Bit-exact with [`Dense::forward_batch`] and [`Dense::infer`] per the
    /// [bit-exactness contract](crate#bit-exactness-contract); the parity
    /// proptests in this crate enforce it.
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != self.fan_in()`.
    pub fn forward_batch_fused(&self, input: &Matrix, out: &mut Matrix) {
        let packed = self
            .packed
            .get_or_init(|| PackedWeights::pack(&self.weight));
        input.matmul_bias_act_into(packed, &self.bias, self.activation, out);
    }

    /// Backward pass: consumes `dL/dy`, accumulates `dL/dW`, `dL/db`, and
    /// returns `dL/dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Dense::forward`] or with a gradient whose
    /// shape does not match the cached batch.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let cache = self.cache.as_ref().expect("backward called before forward");
        assert_eq!(
            grad_output.shape(),
            (cache.input.rows(), self.fan_out()),
            "gradient shape mismatch"
        );
        // δ = dL/dy ⊙ σ'(z)
        let delta = grad_output.hadamard(&self.activation.derivative(&cache.pre_activation));
        // dW = xᵀ·δ, db = Σ_batch δ, dx = δ·Wᵀ
        let grad_w = cache.input.matmul_tn(&delta);
        match &mut self.grad_weight {
            Some(g) => g.add_assign(&grad_w),
            None => self.grad_weight = Some(grad_w),
        }
        for (gb, d) in self.grad_bias.iter_mut().zip(delta.column_sums()) {
            *gb += d;
        }
        delta.matmul_nt(&self.weight)
    }

    /// Backward pass into a caller-owned buffer: consumes `dL/dy`,
    /// accumulates `dL/dW`, `dL/db`, and writes `dL/dx` into `grad_input`.
    /// All intermediates (δ, this pass's weight-gradient and bias-sum
    /// contributions) live in reused cache buffers, so steady-state
    /// training steps allocate nothing here.
    ///
    /// Gradient values are bit-exact with [`Dense::backward`]: each pass's
    /// contribution is staged from zero and then added to the accumulator,
    /// exactly like the allocating path.
    ///
    /// # Panics
    ///
    /// Panics if called before a forward pass or with a gradient whose
    /// shape does not match the cached batch.
    pub fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        let fan_out = self.weight.cols();
        let cache = self.cache.as_mut().expect("backward called before forward");
        assert_eq!(
            grad_output.shape(),
            (cache.input.rows(), fan_out),
            "gradient shape mismatch"
        );
        // δ = dL/dy ⊙ σ'(z), elementwise into the reused buffer.
        let act = self.activation;
        grad_output.zip_into(&cache.pre_activation, &mut cache.delta, |g, z| {
            g * act.derivative_scalar(z)
        });
        // dW = xᵀ·δ, db = Σ_batch δ, dx = δ·Wᵀ
        cache
            .input
            .matmul_tn_into(&cache.delta, &mut cache.grad_w_pass);
        match &mut self.grad_weight {
            Some(g) => g.add_assign(&cache.grad_w_pass),
            None => self.grad_weight = Some(cache.grad_w_pass.clone()),
        }
        cache.delta.column_sums_into(&mut cache.bias_sums);
        for (gb, &d) in self.grad_bias.iter_mut().zip(&cache.bias_sums) {
            *gb += d;
        }
        cache.delta.matmul_nt_into(&self.weight, grad_input);
    }

    /// Clears accumulated gradients. The weight-gradient buffer is kept
    /// (zero-filled) once allocated, so steady-state training steps do not
    /// reallocate it; a zeroed accumulator receives bit-identical values to
    /// a freshly created one.
    pub fn zero_grad(&mut self) {
        if let Some(g) = &mut self.grad_weight {
            g.as_mut_slice().fill(0.0);
        }
        self.grad_bias.fill(0.0);
    }

    /// Visits `(param, grad)` slice pairs in a deterministic order
    /// (weights first, then biases). Optimizers rely on this ordering to
    /// associate their per-parameter state.
    pub fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        // The visitor gets mutable parameter access (optimizer steps), so
        // any packed snapshot of the weights is stale after this.
        self.invalidate_packed();
        let grad_w = self
            .grad_weight
            .get_or_insert_with(|| Matrix::zeros(self.weight.rows(), self.weight.cols()));
        visitor(self.weight.as_mut_slice(), grad_w.as_mut_slice());
        visitor(&mut self.bias, &mut self.grad_bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_layer() -> Dense {
        Dense::from_parts(
            Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 2.0]]),
            vec![0.1, -0.2],
            Activation::Identity,
        )
    }

    #[test]
    fn forward_linear_known_values() {
        let mut l = tiny_layer();
        let y = l.forward(&Matrix::from_rows(&[&[1.0, 1.0]]));
        // [1*1 + 1*0.5 + 0.1, 1*(-1) + 1*2 - 0.2]
        assert_eq!(y.row(0), &[1.6, 0.8]);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Dense::new(3, 5, Activation::Relu, Init::HeNormal, &mut rng);
        let x = Matrix::from_rows(&[&[0.2, -0.7, 1.3], &[1.0, 0.0, -1.0]]);
        assert_eq!(l.forward(&x), l.infer(&x));
    }

    #[test]
    fn backward_input_gradient_identity_activation() {
        let mut l = tiny_layer();
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let _ = l.forward(&x);
        let dx = l.backward(&Matrix::from_rows(&[&[1.0, 0.0]]));
        // dL/dx = δ·Wᵀ with δ = [1, 0] → first row of Wᵀ = first col of W = [1, -1]?
        // W is fan_in×fan_out = [[1,-1],[0.5,2]]; δ·Wᵀ = [1*1 + 0*(-1), 1*0.5 + 0*2]
        assert_eq!(dx.row(0), &[1.0, 0.5]);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut l = tiny_layer();
        let x = Matrix::from_rows(&[&[1.0, 0.0]]);
        let g = Matrix::from_rows(&[&[1.0, 1.0]]);
        let _ = l.forward(&x);
        let _ = l.backward(&g);
        let _ = l.forward(&x);
        let _ = l.backward(&g);
        let mut first_grad = None;
        l.visit_params(&mut |_p, gr| {
            if first_grad.is_none() {
                first_grad = Some(gr.to_vec());
            }
        });
        // dW for one pass = xᵀδ = [[1,1],[0,0]]; accumulated twice → [[2,2],[0,0]]
        assert_eq!(first_grad.unwrap(), vec![2.0, 2.0, 0.0, 0.0]);
        l.zero_grad();
        let mut all_zero = true;
        l.visit_params(&mut |_p, gr| all_zero &= gr.iter().all(|&x| x == 0.0));
        assert!(all_zero);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut l = tiny_layer();
        let _ = l.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn param_count_and_macs() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Dense::new(3, 16, Activation::Relu, Init::HeNormal, &mut rng);
        assert_eq!(l.param_count(), 3 * 16 + 16);
        assert_eq!(l.macs(), 48);
    }

    #[test]
    fn forward_batch_matches_infer() {
        let mut rng = StdRng::seed_from_u64(9);
        let l = Dense::new(3, 7, Activation::LeakyRelu, Init::HeNormal, &mut rng);
        let x = Matrix::from_rows(&[&[0.2, -0.7, 1.3], &[1.0, 0.0, -1.0], &[0.0, 0.0, 0.0]]);
        let mut out = Matrix::zeros(1, 1);
        l.forward_batch(&x, &mut out);
        assert_eq!(out, l.infer(&x));
    }

    #[test]
    fn forward_batch_fused_matches_forward_batch_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        for (fan_in, fan_out, act) in [
            (3usize, 16usize, Activation::Relu),
            (16, 32, Activation::Relu),
            (32, 16, Activation::Tanh),
            (16, 1, Activation::Identity),
            (5, 37, Activation::LeakyRelu),
        ] {
            let l = Dense::new(fan_in, fan_out, act, Init::HeNormal, &mut rng);
            let x = Matrix::from_vec(
                6,
                fan_in,
                (0..6 * fan_in).map(|i| (i as f32 * 0.23).sin()).collect(),
            );
            let mut plain = Matrix::zeros(1, 1);
            let mut fused = Matrix::zeros(1, 1);
            l.forward_batch(&x, &mut plain);
            l.forward_batch_fused(&x, &mut fused);
            assert_eq!(plain.shape(), fused.shape());
            for (p, f) in plain.as_slice().iter().zip(fused.as_slice()) {
                assert_eq!(p.to_bits(), f.to_bits(), "{fan_in}->{fan_out} {act:?}");
            }
        }
    }

    #[test]
    fn fused_packed_cache_invalidated_on_weight_mutation() {
        let mut l = tiny_layer();
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        let mut out = Matrix::zeros(1, 1);
        l.forward_batch_fused(&x, &mut out);
        let before = out.clone();
        l.scale_weights(2.0);
        l.forward_batch_fused(&x, &mut out);
        assert_ne!(out, before, "stale packed weights served after scale");
        assert_eq!(out, l.infer(&x));
        // Optimizer-style mutation through visit_params must also repack.
        l.visit_params(&mut |p, _g| {
            for w in p.iter_mut() {
                *w += 0.25;
            }
        });
        l.forward_batch_fused(&x, &mut out);
        assert_eq!(out, l.infer(&x));
    }

    #[test]
    fn forward_cache_reuse_keeps_backward_correct_across_batch_sizes() {
        // The cache buffers are reused across steps; gradients after a
        // larger-then-smaller batch sequence must match a fresh layer's.
        let x_big = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let g_big = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.5, 0.5]]);
        let x_small = Matrix::from_rows(&[&[2.0, -1.0]]);
        let g_small = Matrix::from_rows(&[&[1.0, 1.0]]);
        let mut reused = tiny_layer();
        let _ = reused.forward(&x_big);
        let _ = reused.backward(&g_big);
        reused.zero_grad();
        let _ = reused.forward(&x_small);
        let dx_reused = reused.backward(&g_small);
        let mut fresh = tiny_layer();
        let _ = fresh.forward(&x_small);
        let dx_fresh = fresh.backward(&g_small);
        assert_eq!(dx_reused, dx_fresh);
        let mut grads = (Vec::new(), Vec::new());
        reused.visit_params(&mut |_p, g| grads.0.push(g.to_vec()));
        fresh.visit_params(&mut |_p, g| grads.1.push(g.to_vec()));
        assert_eq!(grads.0, grads.1);
    }

    #[test]
    fn scale_weights_leaves_bias_untouched() {
        let mut l = tiny_layer();
        l.scale_weights(2.0);
        assert_eq!(l.weight(), &Matrix::from_rows(&[&[2.0, -2.0], &[1.0, 4.0]]));
        assert_eq!(l.bias(), &[0.1, -0.2]);
    }

    #[test]
    fn serde_roundtrip_preserves_inference() {
        let mut rng = StdRng::seed_from_u64(5);
        let l = Dense::new(4, 4, Activation::Tanh, Init::XavierUniform, &mut rng);
        let json = serde_json::to_string(&l).unwrap();
        let l2: Dense = serde_json::from_str(&json).unwrap();
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3, 0.4]]);
        assert_eq!(l.infer(&x), l2.infer(&x));
    }
}
