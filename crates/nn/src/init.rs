//! Weight initialization schemes.
//!
//! All initializers draw from a caller-supplied [`rand::Rng`] so that every
//! experiment in the workspace is reproducible from a single seed.

use crate::matrix::Matrix;
use rand::Rng;

/// Weight initialization scheme for dense and recurrent layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Init {
    /// Uniform in `[-limit, limit]` with `limit = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// The classic Glorot/Xavier scheme; appropriate for tanh/sigmoid layers
    /// and a safe default for small networks.
    XavierUniform,
    /// Normal with standard deviation `sqrt(2 / fan_in)` (He et al.), suited
    /// to ReLU activations. Used for the paper's two branches.
    #[default]
    HeNormal,
    /// Uniform in `[-limit, limit]` with `limit = 1 / sqrt(fan_in)` —
    /// PyTorch's default for `nn.Linear`, kept for parity experiments.
    LecunUniform,
    /// All zeros (useful for biases and for tests).
    Zeros,
}

impl Init {
    /// Samples a `fan_in × fan_out` weight matrix.
    pub fn sample(self, fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
        assert!(fan_in > 0 && fan_out > 0, "fan dimensions must be non-zero");
        let mut m = Matrix::zeros(fan_in, fan_out);
        match self {
            Init::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
                m.map_inplace(|_| 0.0);
                for v in m.as_mut_slice() {
                    *v = rng.gen_range(-limit..=limit);
                }
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in as f64).sqrt();
                for v in m.as_mut_slice() {
                    *v = sample_standard_normal(rng) as f32 * std as f32;
                }
            }
            Init::LecunUniform => {
                let limit = (1.0 / fan_in as f64).sqrt() as f32;
                for v in m.as_mut_slice() {
                    *v = rng.gen_range(-limit..=limit);
                }
            }
            Init::Zeros => {}
        }
        m
    }
}

/// Box–Muller standard normal sample.
///
/// Implemented locally so `pinnsoc-nn` does not need `rand_distr`.
fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Init::XavierUniform.sample(16, 32, &mut rng);
        let limit = (6.0_f32 / 48.0).sqrt();
        assert!(m.as_slice().iter().all(|x| x.abs() <= limit + 1e-6));
    }

    #[test]
    fn he_normal_std_close_to_expected() {
        let mut rng = StdRng::seed_from_u64(9);
        let fan_in = 64;
        let m = Init::HeNormal.sample(fan_in, 256, &mut rng);
        let n = m.len() as f32;
        let mean = m.mean();
        let var = m.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n;
        let expected = 2.0 / fan_in as f32;
        assert!(
            (var - expected).abs() < expected * 0.2,
            "var {var} vs expected {expected}"
        );
    }

    #[test]
    fn lecun_respects_limit() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Init::LecunUniform.sample(25, 4, &mut rng);
        assert!(m.as_slice().iter().all(|x| x.abs() <= 0.2 + 1e-6));
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = Init::Zeros.sample(3, 3, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Init::HeNormal.sample(8, 8, &mut StdRng::seed_from_u64(42));
        let b = Init::HeNormal.sample(8, 8, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
