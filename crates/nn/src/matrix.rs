//! Dense row-major `f32` matrix used throughout the NN substrate.
//!
//! The matrix is deliberately minimal: it supports exactly the operations the
//! training loops in this workspace need (GEMM, transposed GEMM variants,
//! element-wise maps, row broadcasts and column reductions), with shape checks
//! on every operation. All layouts are row-major, batch-first: a batch of `b`
//! samples with `f` features is a `b × f` matrix.

use crate::activation::Activation;
use crate::kernel::{self, KernelPath};
use serde::{Deserialize, Serialize};
use std::fmt;

/// GEMM micro-tile: accumulates `IB` rows × `JB` columns of the product in
/// registers over the whole depth and stores each element once. `lhs` holds
/// the IB-row block (row-major, `IB × depth`), `out` the matching
/// `IB × n` output block. Per output element the additions happen in
/// ascending-`k` order, independent of `IB`/`JB` — part of the
/// [bit-exactness contract](crate#bit-exactness-contract) every tile size
/// shares.
#[inline(always)]
fn micro_tile<const IB: usize, const JB: usize>(
    lhs: &[f32],
    depth: usize,
    rhs: &[f32],
    n: usize,
    out: &mut [f32],
    j0: usize,
) {
    let mut acc = [[0.0f32; JB]; IB];
    for k in 0..depth {
        let b: &[f32; JB] = rhs[k * n + j0..k * n + j0 + JB]
            .try_into()
            .expect("tile slice has JB elements");
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let a = lhs[r * depth + k];
            for (acc_l, &b_l) in acc_r.iter_mut().zip(b) {
                *acc_l += a * b_l;
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        out[r * n + j0..r * n + j0 + JB].copy_from_slice(acc_r);
    }
}

/// Column sweep of one IB-row block: wide tiles first, then narrower ones,
/// then a scalar tail — every output element of the block is assigned
/// exactly once.
#[inline(always)]
fn gemm_row_block<const IB: usize>(
    lhs: &[f32],
    depth: usize,
    rhs: &[f32],
    n: usize,
    out: &mut [f32],
) {
    let mut j0 = 0;
    while j0 + 32 <= n {
        micro_tile::<IB, 32>(lhs, depth, rhs, n, out, j0);
        j0 += 32;
    }
    while j0 + 16 <= n {
        micro_tile::<IB, 16>(lhs, depth, rhs, n, out, j0);
        j0 += 16;
    }
    while j0 + 8 <= n {
        micro_tile::<IB, 8>(lhs, depth, rhs, n, out, j0);
        j0 += 8;
    }
    for j in j0..n {
        for r in 0..IB {
            let mut acc = 0.0f32;
            for k in 0..depth {
                acc += lhs[r * depth + k] * rhs[k * n + j];
            }
            out[r * n + j] = acc;
        }
    }
}

/// One column panel of a [`PackedWeights`] layout: `width` output columns
/// starting at `j0`, stored k-major (`panel[k * stride + j]`) at `offset`
/// into the packed buffer. `stride` is the *stored* column count: tail
/// panels narrower than a SIMD lane group are zero-padded to `stride = 8`
/// so the vector kernels never need a tail branch (the padded lanes
/// accumulate exact zeros and are simply not copied out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Panel {
    j0: u32,
    width: u32,
    stride: u32,
    offset: u32,
}

/// A GEMM right-hand side repacked into contiguous column panels matching
/// the micro-tile sweep (32 → 16 → 8 columns → tail).
///
/// In the row-major layout, a `JB`-column micro-tile reads `JB` values at
/// stride `n` per depth step; packing stores each panel's `depth × width`
/// block contiguously (k-major), so the fused kernels stream the weights
/// linearly regardless of the full matrix width. Packing only reorders
/// storage — each output element still accumulates the identical products
/// in ascending-`k` order, so results stay bit-exact with the row-major
/// kernels (see the [bit-exactness
/// contract](crate#bit-exactness-contract)).
///
/// # Examples
///
/// ```
/// use pinnsoc_nn::matrix::{Matrix, PackedWeights};
/// use pinnsoc_nn::Activation;
///
/// let w = Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 2.0]]);
/// let packed = PackedWeights::pack(&w);
/// let x = Matrix::from_rows(&[&[1.0, 1.0]]);
/// let mut out = Matrix::zeros(1, 1);
/// x.matmul_bias_act_into(&packed, &[0.0, 0.0], Activation::Identity, &mut out);
/// assert_eq!(out, x.matmul(&w));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PackedWeights {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
    panels: Vec<Panel>,
}

impl PackedWeights {
    /// Repacks `weight` (a `fan_in × fan_out` GEMM right-hand side) into
    /// column panels. Panel widths mirror the `gemm_row_block` column sweep
    /// exactly, so the fused kernels tile the output identically.
    pub fn pack(weight: &Matrix) -> Self {
        let mut packed = Self {
            rows: 0,
            cols: 0,
            data: Vec::with_capacity(weight.len()),
            panels: Vec::new(),
        };
        packed.pack_into(weight);
        packed
    }

    /// Repacks `weight` into this buffer, reusing its storage — the
    /// training path repacks once per optimizer step, so the panels must
    /// not reallocate in the steady state. Produces exactly the layout of
    /// [`PackedWeights::pack`].
    pub fn pack_into(&mut self, weight: &Matrix) {
        let (rows, cols) = weight.shape();
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.panels.clear();
        let mut j0 = 0usize;
        while j0 < cols {
            let width = match cols - j0 {
                w if w >= 32 => 32,
                w if w >= 16 => 16,
                w if w >= 8 => 8,
                w => w,
            };
            // Lane-aligned storage: a tail narrower than one 8-lane group
            // is padded with zero columns so the SIMD kernels can always
            // run a full strip (the padded lanes sum exact zeros and are
            // discarded on store).
            let stride = width.max(8);
            self.panels.push(Panel {
                j0: j0 as u32,
                width: width as u32,
                stride: stride as u32,
                offset: self.data.len() as u32,
            });
            for k in 0..rows {
                self.data.extend_from_slice(&weight.row(k)[j0..j0 + width]);
                self.data.resize(self.data.len() + (stride - width), 0.0);
            }
            j0 += width;
        }
    }

    /// Fan-in of the packed weight (GEMM depth).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Fan-out of the packed weight (GEMM output width).
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// Packed-panel micro-tile: accumulates `IB × JB` outputs in registers
/// (ascending-`k`, like [`micro_tile`]) and stores each raw sum once. The
/// `chunks_exact` iteration hands the optimizer a provably-JB-long weight
/// slice per depth step, so the loop vectorizes like the row-major kernel
/// while streaming the packed panel linearly.
#[inline(always)]
fn micro_tile_packed<const IB: usize, const JB: usize>(
    lhs: &[f32],
    depth: usize,
    panel: &[f32],
    n: usize,
    out: &mut [f32],
    j0: usize,
) {
    let mut acc = [[0.0f32; JB]; IB];
    for (k, b) in panel.chunks_exact(JB).take(depth).enumerate() {
        let b: &[f32; JB] = b.try_into().expect("chunk has JB elements");
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let a = lhs[r * depth + k];
            for (acc_l, &b_l) in acc_r.iter_mut().zip(b) {
                *acc_l += a * b_l;
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        out[r * n + j0..r * n + j0 + JB].copy_from_slice(acc_r);
    }
}

/// Fused column sweep of one IB-row block over all packed panels, with the
/// bias-and-activation epilogue applied to the whole `IB × n` block right
/// after its GEMM — while it is still L1-resident — instead of as a second
/// full-matrix pass. Each output element is written as its raw ascending-`k`
/// sum and then rewritten once as `act(sum + bias)`: the identical
/// arithmetic to the unfused `GEMM → sweep` pipeline, per the
/// [bit-exactness contract](crate#bit-exactness-contract).
#[inline(always)]
fn gemm_row_block_fused<const IB: usize, F: Fn(f32) -> f32 + Copy>(
    lhs: &[f32],
    depth: usize,
    packed: &PackedWeights,
    out: &mut [f32],
    bias: &[f32],
    act: F,
) {
    let n = packed.cols;
    for panel in &packed.panels {
        let j0 = panel.j0 as usize;
        let width = panel.width as usize;
        let stride = panel.stride as usize;
        let data = &packed.data[panel.offset as usize..panel.offset as usize + depth * stride];
        match width {
            32 => micro_tile_packed::<IB, 32>(lhs, depth, data, n, out, j0),
            16 => micro_tile_packed::<IB, 16>(lhs, depth, data, n, out, j0),
            8 => micro_tile_packed::<IB, 8>(lhs, depth, data, n, out, j0),
            _ => {
                // Narrow tail panel (< 8 columns, zero-padded to `stride`):
                // scalar per live column, still ascending-`k` per output
                // element.
                for jj in 0..width {
                    for r in 0..IB {
                        let mut acc = 0.0f32;
                        for k in 0..depth {
                            acc += lhs[r * depth + k] * data[k * stride + jj];
                        }
                        out[r * n + j0 + jj] = acc;
                    }
                }
            }
        }
    }
    for r in 0..IB {
        for (o, &b) in out[r * n..r * n + n].iter_mut().zip(bias) {
            *o = act(*o + b);
        }
    }
}

/// A dense, row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use pinnsoc_nn::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for Matrix {
    /// A `1 × 1` zero matrix — the smallest valid shape, for scratch
    /// buffers that are resized on first use.
    fn default() -> Self {
        Matrix::zeros(1, 1)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(12) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(r, c)])?;
            }
            if self.cols > 12 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equally sized rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} (expected {cols})",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self::from_vec(rows.len(), cols, data)
    }

    /// Creates a single-row matrix from a feature slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates a single-column matrix from a slice.
    pub fn column_vector(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false: zero-dimension matrices cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrows row `r` as a feature slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over column `c` without allocating (row-major storage, so
    /// this is a strided walk).
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = f32> + '_ {
        assert!(
            c < self.cols,
            "column index {c} out of bounds ({})",
            self.cols
        );
        self.data[c..].iter().step_by(self.cols).copied()
    }

    /// Copies column `c` into `out`, whose length must equal the row
    /// count. The allocation-free replacement for the old
    /// `col(&self) -> Vec<f32>`.
    pub fn col_into(&self, c: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.rows, "column buffer length mismatch");
        for (o, v) in out.iter_mut().zip(self.col_iter(c)) {
            *o = v;
        }
    }

    /// Reuses this matrix's storage as a zeroed `rows × cols` buffer,
    /// reallocating only when the new shape needs more capacity. This is
    /// the allocation-free backbone of the batched inference paths.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Reshapes without zeroing, for callers that assign every element
    /// before reading any (batch-assembly buffers in the serving hot path).
    /// Existing contents become **unspecified** (stale values from earlier
    /// uses); newly grown capacity is still zero-filled (no `unsafe` in
    /// this crate). A steady-state reuse at the same size is free.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reset_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.reshape_for_overwrite(rows, cols);
    }

    /// Reuses this matrix's buffer as `src`'s shape and copies `src` in —
    /// an allocation-free `clone_from` for cache buffers.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.reshape_for_overwrite(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Reshapes without zeroing, for kernels that assign every element.
    /// Newly grown capacity is still zero-filled (no `unsafe` in this
    /// crate); a steady-state reuse at the same size is free.
    fn reshape_for_overwrite(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        let len = rows * cols;
        if self.data.len() < len {
            self.data.resize(len, 0.0);
        } else {
            self.data.truncate(len);
        }
        self.rows = rows;
        self.cols = cols;
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols.max(1));
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self · rhs` written into `out` (resized first),
    /// avoiding the allocation of [`Matrix::matmul`]. Accumulation order is
    /// identical to `matmul`, so results are bit-exact between the two
    /// paths (see the [bit-exactness
    /// contract](crate#bit-exactness-contract)).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_into_with(rhs, out, kernel::active());
    }

    /// [`Matrix::matmul_into`] on an explicit kernel path — the parity
    /// tests and microbenches compare paths without touching the
    /// process-global selection. Paths the host cannot run clamp down to
    /// its best supported one; every path is bit-identical.
    pub fn matmul_into_with(&self, rhs: &Matrix, out: &mut Matrix, path: KernelPath) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        // The kernel assigns every output element, so no zeroing pass.
        out.reshape_for_overwrite(self.rows, rhs.cols);
        let n = rhs.cols;
        let depth = self.cols;
        match path.min(kernel::detect()) {
            #[cfg(target_arch = "x86_64")]
            KernelPath::Sse2 | KernelPath::Avx2 => {
                let avx2 = path == KernelPath::Avx2;
                // AVX2 sweeps the strip-aligned columns for the whole
                // batch in a single kernel call; the narrow column tail —
                // and the whole matrix on SSE2 — runs the per-block
                // kernels.
                let mut j = 0;
                if avx2 {
                    let strips = n / 8;
                    if strips > 0 {
                        kernel::x86::gemm_batch(
                            &self.data,
                            self.rows,
                            depth,
                            &rhs.data,
                            n,
                            strips,
                            &mut out.data,
                            n,
                        );
                        j = strips * 8;
                    }
                }
                if j < n {
                    let mut i = 0;
                    while i < self.rows {
                        let ib = if self.rows - i >= 8 { 8 } else { 1 };
                        let lhs = &self.data[i * depth..(i + ib) * depth];
                        let out_block = &mut out.data[i * n + j..(i + ib - 1) * n + n];
                        if ib == 8 {
                            kernel::x86::gemm_block::<8>(
                                avx2,
                                lhs,
                                depth,
                                &rhs.data[j..],
                                n,
                                n - j,
                                false,
                                out_block,
                                n,
                            );
                        } else {
                            kernel::x86::gemm_block::<1>(
                                avx2,
                                lhs,
                                depth,
                                &rhs.data[j..],
                                n,
                                n - j,
                                false,
                                out_block,
                                n,
                            );
                        }
                        i += ib;
                    }
                }
            }
            _ => {
                // Register-blocked scalar GEMM: 4-row blocks swept by the
                // widest micro-tile that fits (32 → 16 → 8 columns →
                // scalar tail), with a 1-row pass for the remainder rows.
                // See [`micro_tile`] for the register-blocking rationale
                // and the bit-parity guarantee.
                const IB: usize = 4;
                let mut i = 0;
                while i + IB <= self.rows {
                    gemm_row_block::<IB>(
                        &self.data[i * depth..(i + IB) * depth],
                        depth,
                        &rhs.data,
                        n,
                        &mut out.data[i * n..(i + IB) * n],
                    );
                    i += IB;
                }
                while i < self.rows {
                    gemm_row_block::<1>(
                        &self.data[i * depth..(i + 1) * depth],
                        depth,
                        &rhs.data,
                        n,
                        &mut out.data[i * n..(i + 1) * n],
                    );
                    i += 1;
                }
            }
        }
    }

    /// Fused dense-layer forward: `out = act(self · packed + bias)` in one
    /// kernel — the GEMM epilogue applies the bias and activation while the
    /// accumulators are still in registers, eliminating the separate
    /// bias-and-activation sweep over the output (`out` is resized first;
    /// every element is assigned exactly once).
    ///
    /// Accumulation order per output element is identical to
    /// [`Matrix::matmul_into`] followed by an elementwise
    /// `act(x + bias)` pass, so the two pipelines are bit-exact — see the
    /// [bit-exactness contract](crate#bit-exactness-contract).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != packed.rows()` or
    /// `bias.len() != packed.cols()`.
    pub fn matmul_bias_act_into(
        &self,
        packed: &PackedWeights,
        bias: &[f32],
        act: Activation,
        out: &mut Matrix,
    ) {
        self.matmul_bias_act_into_with(packed, bias, act, out, kernel::active());
    }

    /// [`Matrix::matmul_bias_act_into`] on an explicit kernel path — see
    /// [`Matrix::matmul_into_with`].
    pub fn matmul_bias_act_into_with(
        &self,
        packed: &PackedWeights,
        bias: &[f32],
        act: Activation,
        out: &mut Matrix,
        path: KernelPath,
    ) {
        assert_eq!(
            self.cols,
            packed.rows(),
            "matmul_bias_act_into shape mismatch: {}x{} · {}x{}",
            self.rows,
            self.cols,
            packed.rows(),
            packed.cols()
        );
        assert_eq!(bias.len(), packed.cols(), "bias length must equal fan_out");
        let path = path.min(kernel::detect());
        // Dispatch on the activation once, monomorphizing the whole kernel
        // per variant: a runtime `Activation` in the epilogue's inner loop
        // would leave a 5-way branch per output element (LLVM refuses to
        // unswitch across the `tanh`/`exp` arms), costing ~10× on the wide
        // tiles. `Activation::apply` on the matching scalar stays the
        // source of truth for each variant's arithmetic.
        match act {
            Activation::Relu => {
                self.fused_gemm_impl(packed, bias, out, |x| Activation::Relu.apply(x), path)
            }
            Activation::Tanh => {
                self.fused_gemm_impl(packed, bias, out, |x| Activation::Tanh.apply(x), path)
            }
            Activation::Sigmoid => {
                self.fused_gemm_impl(packed, bias, out, |x| Activation::Sigmoid.apply(x), path)
            }
            Activation::Identity => {
                self.fused_gemm_impl(packed, bias, out, |x| Activation::Identity.apply(x), path)
            }
            Activation::LeakyRelu => {
                self.fused_gemm_impl(packed, bias, out, |x| Activation::LeakyRelu.apply(x), path)
            }
        }
    }

    fn fused_gemm_impl<F: Fn(f32) -> f32 + Copy>(
        &self,
        packed: &PackedWeights,
        bias: &[f32],
        out: &mut Matrix,
        act: F,
        path: KernelPath,
    ) {
        let n = packed.cols();
        let depth = self.cols;
        out.reshape_for_overwrite(self.rows, n);
        match path {
            #[cfg(target_arch = "x86_64")]
            KernelPath::Sse2 | KernelPath::Avx2 => {
                let avx2 = path == KernelPath::Avx2;
                for panel in &packed.panels {
                    let j0 = panel.j0 as usize;
                    let width = panel.width as usize;
                    let stride = panel.stride as usize;
                    let data =
                        &packed.data[panel.offset as usize..panel.offset as usize + depth * stride];
                    let padded = stride != width;
                    // A full panel's width is a whole number of 8-column
                    // strips, so AVX2 sweeps it for the entire batch in
                    // one kernel call; padded tail panels — and every
                    // panel on SSE2 — run the per-block kernels.
                    if avx2 && !padded {
                        kernel::x86::gemm_batch(
                            &self.data,
                            self.rows,
                            depth,
                            data,
                            stride,
                            width / 8,
                            &mut out.data[j0..],
                            n,
                        );
                        continue;
                    }
                    let mut i = 0;
                    while i < self.rows {
                        let ib = if self.rows - i >= 8 { 8 } else { 1 };
                        let lhs = &self.data[i * depth..(i + ib) * depth];
                        let out_block = &mut out.data[i * n + j0..(i + ib - 1) * n + n];
                        if ib == 8 {
                            kernel::x86::gemm_block::<8>(
                                avx2, lhs, depth, data, stride, width, padded, out_block, n,
                            );
                        } else {
                            kernel::x86::gemm_block::<1>(
                                avx2, lhs, depth, data, stride, width, padded, out_block, n,
                            );
                        }
                        i += ib;
                    }
                }
                // Identical scalar epilogue to the reference kernel: each
                // element is rewritten once as `act(sum + bias)`.
                for row in out.data.chunks_exact_mut(n).take(self.rows) {
                    for (o, &b) in row.iter_mut().zip(bias) {
                        *o = act(*o + b);
                    }
                }
            }
            _ => {
                const IB: usize = 4;
                let mut i = 0;
                while i + IB <= self.rows {
                    gemm_row_block_fused::<IB, F>(
                        &self.data[i * depth..(i + IB) * depth],
                        depth,
                        packed,
                        &mut out.data[i * n..(i + IB) * n],
                        bias,
                        act,
                    );
                    i += IB;
                }
                while i < self.rows {
                    gemm_row_block_fused::<1, F>(
                        &self.data[i * depth..(i + 1) * depth],
                        depth,
                        packed,
                        &mut out.data[i * n..(i + 1) * n],
                        bias,
                        act,
                    );
                    i += 1;
                }
            }
        }
    }

    /// Computes `selfᵀ · rhs` without materializing the transpose.
    ///
    /// Shapes: `self` is `m × n`, `rhs` is `m × p`, result is `n × p`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(1, 1);
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul_tn`] into a caller-owned buffer (zeroed and resized
    /// first), avoiding the allocation. Accumulation order is identical, so
    /// the two paths are bit-exact — see the [bit-exactness
    /// contract](crate#bit-exactness-contract).
    pub fn matmul_tn_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_tn_into_with(rhs, out, kernel::active());
    }

    /// [`Matrix::matmul_tn_into`] on an explicit kernel path — see
    /// [`Matrix::matmul_into_with`].
    pub fn matmul_tn_into_with(&self, rhs: &Matrix, out: &mut Matrix, path: KernelPath) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        // The rank-1 update sweep accumulates, so start from zeros. Every
        // path applies the identical per-element `+= a * b` updates in
        // ascending-`i` order (SIMD vectorizes across `j`, which holds
        // independent output elements), including the exact-zero skip, so
        // results are bit-exact across paths.
        out.reset(self.cols, rhs.cols);
        let path = path.min(kernel::detect());
        for i in 0..self.rows {
            let lhs_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let rhs_row = &rhs.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in lhs_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[k * rhs.cols..(k + 1) * rhs.cols];
                match path {
                    #[cfg(target_arch = "x86_64")]
                    KernelPath::Sse2 | KernelPath::Avx2 => {
                        kernel::x86::axpy_row(path == KernelPath::Avx2, a, rhs_row, out_row);
                    }
                    _ => {
                        for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
    }

    /// Computes `self · rhsᵀ` without materializing the transpose.
    ///
    /// Shapes: `self` is `m × n`, `rhs` is `p × n`, result is `m × p`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(1, 1);
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] into a caller-owned buffer (resized first),
    /// avoiding the allocation. Accumulation order is identical, so the two
    /// paths are bit-exact — see the [bit-exactness
    /// contract](crate#bit-exactness-contract).
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_nt_into_with(rhs, out, kernel::active());
    }

    /// [`Matrix::matmul_nt_into`] on an explicit kernel path — see
    /// [`Matrix::matmul_into_with`].
    pub fn matmul_nt_into_with(&self, rhs: &Matrix, out: &mut Matrix, path: KernelPath) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let path = path.min(kernel::detect());
        #[cfg(not(target_arch = "x86_64"))]
        let _ = path;
        #[cfg(target_arch = "x86_64")]
        if matches!(path, KernelPath::Sse2 | KernelPath::Avx2) {
            // A dot-product form would need horizontal lane sums, which
            // reorder the accumulation. Instead transpose `rhs` into a
            // thread-local scratch and run the column-vectorized GEMM:
            // each output element still sums `a[i][k] * b[j][k]` in
            // ascending shared-dimension order, bit-exact with the scalar
            // loop below.
            thread_local! {
                static NT_SCRATCH: std::cell::RefCell<Matrix> =
                    std::cell::RefCell::new(Matrix::zeros(1, 1));
            }
            NT_SCRATCH.with(|scratch| {
                let mut rhs_t = scratch.borrow_mut();
                rhs_t.reshape_for_overwrite(rhs.cols, rhs.rows);
                for r in 0..rhs.rows {
                    for c in 0..rhs.cols {
                        rhs_t.data[c * rhs.rows + r] = rhs.data[r * rhs.cols + c];
                    }
                }
                self.matmul_into_with(&rhs_t, out, path);
            });
            return;
        }
        // Every element is assigned from a register accumulator.
        out.reshape_for_overwrite(self.rows, rhs.rows);
        for i in 0..self.rows {
            let lhs_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs.rows {
                let rhs_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let mut acc = 0.0;
                for (&a, &b) in lhs_row.iter().zip(rhs_row) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Element-wise sum; shapes must match.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference; shapes must match.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product; shapes must match.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Element-wise combination of two equal-shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_with(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "element-wise op shape mismatch: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place element-wise accumulate: `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place scaled accumulate: `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise combination written into a caller-owned buffer (resized
    /// first) — the allocation-free sibling of [`Matrix::zip_with`].
    ///
    /// # Panics
    ///
    /// Panics if the input shapes differ.
    pub fn zip_into(&self, rhs: &Matrix, out: &mut Matrix, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "element-wise op shape mismatch: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        out.reshape_for_overwrite(self.rows, self.cols);
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = f(a, b);
        }
    }

    /// Returns a copy with every element transformed by `f`.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Transforms every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Writes `f` applied to every element into a caller-owned buffer
    /// (resized first) — the allocation-free sibling of [`Matrix::map`].
    pub fn map_into(&self, out: &mut Matrix, f: impl Fn(f32) -> f32) {
        out.reshape_for_overwrite(self.rows, self.cols);
        for (o, &x) in out.data.iter_mut().zip(&self.data) {
            *o = f(x);
        }
    }

    /// Returns a copy scaled by `alpha`.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|x| x * alpha)
    }

    /// Adds a row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "broadcast length mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (x, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
        out
    }

    /// Sums each column into a length-`cols` vector (bias gradient reduction).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = Vec::new();
        self.column_sums_into(&mut sums);
        sums
    }

    /// [`Matrix::column_sums`] into a caller-owned vector (cleared and
    /// resized first), avoiding the allocation. Accumulation order is
    /// identical, so the two paths are bit-exact.
    pub fn column_sums_into(&self, sums: &mut Vec<f32>) {
        sums.clear();
        sums.resize(self.cols, 0.0);
        for r in 0..self.rows {
            for (s, &x) in sums.iter_mut().zip(self.row(r)) {
                *s += x;
            }
        }
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Maximum absolute element value (`0.0` never occurs: matrices are non-empty).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Vertically concatenates two matrices with equal column counts.
    pub fn vstack(&self, below: &Matrix) -> Matrix {
        assert_eq!(self.cols, below.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&below.data);
        Matrix::from_vec(self.rows + below.rows, self.cols, data)
    }

    /// Horizontally concatenates two matrices with equal row counts.
    pub fn hstack(&self, right: &Matrix) -> Matrix {
        assert_eq!(self.rows, right.rows, "hstack row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + right.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(right.row(r));
        }
        out
    }

    /// Extracts a contiguous block of rows `[start, start + count)`.
    pub fn slice_rows(&self, start: usize, count: usize) -> Matrix {
        assert!(start + count <= self.rows, "row slice out of bounds");
        assert!(count > 0, "row slice must be non-empty");
        let data = self.data[start * self.cols..(start + count) * self.cols].to_vec();
        Matrix::from_vec(count, self.cols, data)
    }

    /// Gathers the given rows (in order, repeats allowed) into a new matrix.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(1, 1);
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// [`Matrix::gather_rows`] into a caller-owned buffer (resized first),
    /// avoiding the allocation — the minibatch gather of the steady-state
    /// training step.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of bounds.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        assert!(
            !indices.is_empty(),
            "gather_rows requires at least one index"
        );
        out.reshape_for_overwrite(indices.len(), self.cols);
        for (r, &i) in indices.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i));
        }
    }

    /// Extracts a contiguous block of columns `[start, start + count)`.
    pub fn slice_cols(&self, start: usize, count: usize) -> Matrix {
        assert!(start + count <= self.cols, "column slice out of bounds");
        assert!(count > 0, "column slice must be non-empty");
        let mut out = Matrix::zeros(self.rows, count);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..start + count]);
        }
        out
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, -0.5, 0.0], &[0.0, 1.0, 1.0]]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[-1.0, 1.0, 0.5]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn col_iter_and_col_into_match_strided_walk() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.col_iter(1).collect::<Vec<_>>(), vec![2.0, 5.0]);
        let mut buf = [0.0f32; 2];
        a.col_into(2, &mut buf);
        assert_eq!(buf, [3.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 10.0]]));
    }

    #[test]
    fn broadcast_and_column_sums_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let with_bias = m.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(
            with_bias,
            Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]])
        );
        assert_eq!(m.column_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.vstack(&b), Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        assert_eq!(a.hstack(&b), Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
    }

    #[test]
    fn slicing_and_gather() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        assert_eq!(m.slice_rows(1, 2).row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(
            m.slice_cols(1, 2),
            Matrix::from_rows(&[&[2.0, 3.0], &[5.0, 6.0], &[8.0, 9.0]])
        );
        assert_eq!(m.gather_rows(&[2, 0]).row(0), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn norms_and_stats() {
        let m = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.mean() + 0.5).abs() < 1e-6);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(1, 2);
        assert!(!m.has_non_finite());
        m[(0, 1)] = f32::NAN;
        assert!(m.has_non_finite());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, -2.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 0.0]]));
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[-1.0, 0.5]]);
        let b = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.0, -0.5]]);
        let mut out = Matrix::zeros(1, 1);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Second use with a different shape reuses the same buffer.
        let c = Matrix::identity(2);
        c.matmul_into(&b, &mut out);
        assert_eq!(out, b);
    }

    #[test]
    fn packed_fused_matches_unfused_pipeline_bitwise() {
        // Widths that exercise every tile path: 32-panel, 16, 8, and the
        // scalar tail, plus row counts around the 4-row block boundary.
        for &(m, k, n) in &[
            (1usize, 3usize, 16usize),
            (4, 16, 32),
            (5, 32, 16),
            (7, 16, 1),
            (9, 5, 40),
            (3, 8, 37),
            (6, 4, 7),
        ] {
            let a = Matrix::from_vec(
                m,
                k,
                (0..m * k).map(|i| (i as f32 * 0.37).sin() * 2.0).collect(),
            );
            let w = Matrix::from_vec(
                k,
                n,
                (0..k * n).map(|i| (i as f32 * 0.11).cos() * 1.5).collect(),
            );
            let bias: Vec<f32> = (0..n).map(|i| (i as f32 * 0.71).sin()).collect();
            let packed = PackedWeights::pack(&w);
            assert_eq!((packed.rows(), packed.cols()), (k, n));
            for act in [
                Activation::Relu,
                Activation::Tanh,
                Activation::Identity,
                Activation::LeakyRelu,
            ] {
                let mut fused = Matrix::zeros(1, 1);
                a.matmul_bias_act_into(&packed, &bias, act, &mut fused);
                let mut reference = a.matmul(&w).add_row_broadcast(&bias);
                reference.map_inplace(|x| act.apply(x));
                assert_eq!(fused.shape(), reference.shape());
                for (f, r) in fused.as_slice().iter().zip(reference.as_slice()) {
                    assert_eq!(f.to_bits(), r.to_bits(), "{m}x{k}x{n} {act:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "matmul_bias_act_into shape mismatch")]
    fn fused_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let packed = PackedWeights::pack(&Matrix::zeros(4, 2));
        let mut out = Matrix::zeros(1, 1);
        a.matmul_bias_act_into(&packed, &[0.0, 0.0], Activation::Identity, &mut out);
    }

    #[test]
    fn copy_from_and_reset_for_overwrite_reuse_buffers() {
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut dst = Matrix::zeros(5, 7);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.reset_for_overwrite(1, 3);
        assert_eq!(dst.shape(), (1, 3));
    }

    #[test]
    fn reset_resizes_and_zeroes() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        m.reset(2, 2);
        assert_eq!(m.shape(), (2, 2));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn serde_roundtrip() {
        let m = Matrix::from_rows(&[&[1.5, -2.5], &[0.0, 3.25]]);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
