//! First-order optimizers over any model exposing `visit_params`.
//!
//! Optimizers associate per-parameter state (momentum, Adam moments) with the
//! deterministic visit order of the model's parameter tensors, so the same
//! optimizer instance must always be used with the same model.

use crate::lstm::Lstm;
use crate::mlp::Mlp;

/// Anything whose `(param, grad)` tensors can be visited in a stable order.
pub trait Trainable {
    /// Visits `(param, grad)` slice pairs in a deterministic order.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32]));
}

impl Trainable for Mlp {
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        Mlp::visit_params(self, visitor)
    }
}

impl Trainable for Lstm {
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        Lstm::visit_params(self, visitor)
    }
}

/// A gradient-descent style optimizer.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated in
    /// `model`, then leaves the gradients untouched (call `zero_grad` on the
    /// model before the next accumulation).
    fn step(&mut self, model: &mut dyn Trainable);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by LR schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent, optionally with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// SGD with no momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with classical momentum `β v + g`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Trainable) {
        let mut idx = 0;
        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |p, g| {
            if velocity.len() <= idx {
                velocity.push(vec![0.0; p.len()]);
            }
            let v = &mut velocity[idx];
            assert_eq!(v.len(), p.len(), "parameter tensor changed size");
            for ((pi, gi), vi) in p.iter_mut().zip(g.iter()).zip(v.iter_mut()) {
                *vi = momentum * *vi + *gi;
                *pi -= lr * *vi;
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction — the workspace default, as
/// is standard for training small PINNs.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    moments: Vec<AdamSlot>,
}

#[derive(Debug, Clone)]
struct AdamSlot {
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Adam with standard hyper-parameters (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        Self::with_config(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully parameterized constructor; `weight_decay` is decoupled (AdamW).
    pub fn with_config(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "betas in [0,1)"
        );
        assert!(eps > 0.0, "eps must be positive");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Self {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            moments: Vec::new(),
        }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Trainable) {
        self.t += 1;
        let t = self.t as f64;
        let bc1 = 1.0 - (self.beta1 as f64).powf(t);
        let bc2 = 1.0 - (self.beta2 as f64).powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let moments = &mut self.moments;
        let mut idx = 0;
        model.visit_params(&mut |p, g| {
            if moments.len() <= idx {
                moments.push(AdamSlot {
                    m: vec![0.0; p.len()],
                    v: vec![0.0; p.len()],
                });
            }
            let slot = &mut moments[idx];
            assert_eq!(slot.m.len(), p.len(), "parameter tensor changed size");
            for i in 0..p.len() {
                let grad = g[i];
                slot.m[i] = b1 * slot.m[i] + (1.0 - b1) * grad;
                slot.v[i] = b2 * slot.v[i] + (1.0 - b2) * grad * grad;
                let m_hat = slot.m[i] as f64 / bc1;
                let v_hat = slot.v[i] as f64 / bc2;
                let update = m_hat / (v_hat.sqrt() + eps as f64);
                p[i] -= lr * update as f32 + lr * wd * p[i];
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Learning-rate schedule applied on top of an optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    StepDecay {
        /// Epoch period between decays.
        every: usize,
        /// Multiplicative factor per decay.
        gamma: f32,
    },
    /// Cosine annealing from the base LR to `min_lr` over `total` epochs.
    Cosine {
        /// Total epochs of the schedule.
        total: usize,
        /// Floor learning rate.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// Learning rate for `epoch` (0-based) given the base rate.
    pub fn rate_at(self, base_lr: f32, epoch: usize) -> f32 {
        match self {
            LrSchedule::Constant => base_lr,
            LrSchedule::StepDecay { every, gamma } => {
                base_lr * gamma.powi((epoch / every.max(1)) as i32)
            }
            LrSchedule::Cosine { total, min_lr } => {
                if total <= 1 {
                    return min_lr;
                }
                let progress = (epoch.min(total - 1)) as f32 / (total - 1) as f32;
                min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * progress).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::Init;
    use crate::loss::Loss;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quadratic_problem() -> (Mlp, Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(77);
        let m = Mlp::new(&[1, 8, 1], Activation::Tanh, Init::XavierUniform, &mut rng);
        let xs: Vec<f32> = (0..20).map(|i| i as f32 / 10.0 - 1.0).collect();
        let ys: Vec<f32> = xs.iter().map(|x| x * x).collect();
        let x = Matrix::from_vec(20, 1, xs);
        let y = Matrix::from_vec(20, 1, ys);
        (m, x, y)
    }

    fn train_with(mut opt: impl Optimizer, iters: usize) -> f32 {
        let (mut m, x, y) = quadratic_problem();
        for _ in 0..iters {
            let pred = m.forward(&x);
            let grad = Loss::Mse.gradient(&pred, &y);
            m.zero_grad();
            m.backward(&grad);
            opt.step(&mut m);
        }
        Loss::Mse.value(&m.infer(&x), &y)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(train_with(Sgd::new(0.1), 2000) < 0.01);
    }

    #[test]
    fn momentum_beats_plain_sgd_early() {
        let plain = train_with(Sgd::new(0.05), 300);
        let mom = train_with(Sgd::with_momentum(0.05, 0.9), 300);
        assert!(mom < plain, "momentum {mom} should beat plain {plain}");
    }

    #[test]
    fn adam_converges_fast() {
        assert!(train_with(Adam::new(0.01), 500) < 0.005);
    }

    #[test]
    fn adam_step_counter() {
        let (mut m, x, y) = quadratic_problem();
        let mut opt = Adam::new(0.001);
        let pred = m.forward(&x);
        let grad = Loss::Mse.gradient(&pred, &y);
        m.backward(&grad);
        opt.step(&mut m);
        opt.step(&mut m);
        assert_eq!(opt.steps(), 2);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = Mlp::new(&[2, 4, 1], Activation::Relu, Init::HeNormal, &mut rng);
        let mut opt = Adam::with_config(0.01, 0.9, 0.999, 1e-8, 0.1);
        let norm_before: f32 = {
            let mut sq = 0.0;
            m.visit_params(&mut |p, _| sq += p.iter().map(|x| x * x).sum::<f32>());
            sq
        };
        // Zero gradients: only decay acts.
        for _ in 0..50 {
            m.zero_grad();
            let x = Matrix::zeros(1, 2);
            let _ = m.forward(&x);
            let _ = m.backward(&Matrix::zeros(1, 1));
            opt.step(&mut m);
        }
        let norm_after: f32 = {
            let mut sq = 0.0;
            m.visit_params(&mut |p, _| sq += p.iter().map(|x| x * x).sum::<f32>());
            sq
        };
        assert!(norm_after < norm_before);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_lr_panics() {
        let _ = Adam::new(-1.0);
    }

    #[test]
    fn step_decay_schedule() {
        let s = LrSchedule::StepDecay {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.rate_at(1.0, 0), 1.0);
        assert_eq!(s.rate_at(1.0, 10), 0.5);
        assert_eq!(s.rate_at(1.0, 25), 0.25);
    }

    #[test]
    fn cosine_schedule_endpoints() {
        let s = LrSchedule::Cosine {
            total: 100,
            min_lr: 0.001,
        };
        assert!((s.rate_at(0.1, 0) - 0.1).abs() < 1e-6);
        assert!((s.rate_at(0.1, 99) - 0.001).abs() < 1e-6);
        let mid = s.rate_at(0.1, 50);
        assert!(mid < 0.1 && mid > 0.001);
    }
}
