//! Model cost accounting: parameters, operations, and memory.
//!
//! Table I of the paper compares models by MAE, memory footprint, and
//! operation count (the two-branch network: ≈9 kB / ≈1150 ops per query;
//! the LSTM of \[17\]: ≈4 MB / ≈300 M ops). This module provides a uniform
//! way to compute those numbers for any model in the workspace.

use crate::lstm::Lstm;
use crate::mlp::Mlp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cost summary of a model for one inference query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostReport {
    /// Trainable parameter count.
    pub params: usize,
    /// Multiply–accumulate operations per query.
    pub macs: usize,
    /// Parameter storage in bytes (fp32).
    pub memory_bytes: usize,
}

impl CostReport {
    /// Ratio of another report's parameters to this one's (how many times
    /// smaller this model is).
    pub fn param_ratio_vs(&self, other: &CostReport) -> f64 {
        other.params as f64 / self.params as f64
    }

    /// Ratio of another report's MACs to this one's.
    pub fn macs_ratio_vs(&self, other: &CostReport) -> f64 {
        other.macs as f64 / self.macs as f64
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} params, {} MACs/query, {}",
            self.params,
            self.macs,
            human_bytes(self.memory_bytes)
        )
    }
}

/// Formats a byte count with binary-ish units as the paper does (kb/Mb).
pub fn human_bytes(bytes: usize) -> String {
    if bytes >= 1_000_000 {
        format!("{:.1} MB", bytes as f64 / 1_000_000.0)
    } else if bytes >= 1_000 {
        format!("{:.1} kB", bytes as f64 / 1_000.0)
    } else {
        format!("{bytes} B")
    }
}

/// Anything whose inference cost can be summarized.
pub trait Account {
    /// Cost of a single inference query.
    fn cost(&self) -> CostReport;
}

impl Account for Mlp {
    fn cost(&self) -> CostReport {
        CostReport {
            params: self.param_count(),
            macs: self.macs(),
            memory_bytes: self.memory_bytes(),
        }
    }
}

/// An [`Lstm`] paired with the sequence length it is queried with; the cost
/// of a recurrent model is only defined per-sequence.
#[derive(Debug, Clone, Copy)]
pub struct LstmQuery<'a> {
    /// The model being costed.
    pub lstm: &'a Lstm,
    /// Time steps per query.
    pub sequence_len: usize,
}

impl Account for LstmQuery<'_> {
    fn cost(&self) -> CostReport {
        CostReport {
            params: self.lstm.param_count(),
            macs: self.lstm.macs_for_sequence(self.sequence_len),
            memory_bytes: self.lstm.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_ratio_reproduced() {
        // Two-branch model vs hidden-500 LSTM over a 300-step window:
        // the paper quotes ≈409× fewer parameters and ≈260k× fewer ops.
        let mut rng = StdRng::seed_from_u64(0);
        let b1 = Mlp::new(
            &[3, 16, 32, 16, 1],
            Activation::Relu,
            Init::HeNormal,
            &mut rng,
        );
        let b2 = Mlp::new(
            &[4, 16, 32, 16, 1],
            Activation::Relu,
            Init::HeNormal,
            &mut rng,
        );
        let two_branch = CostReport {
            params: b1.param_count() + b2.param_count(),
            macs: b1.macs() + b2.macs(),
            memory_bytes: b1.memory_bytes() + b2.memory_bytes(),
        };
        let lstm = Lstm::new(3, 500, 1, &mut rng);
        let lstm_cost = LstmQuery {
            lstm: &lstm,
            sequence_len: 300,
        }
        .cost();
        let param_ratio = two_branch.param_ratio_vs(&lstm_cost);
        let macs_ratio = two_branch.macs_ratio_vs(&lstm_cost);
        assert!(
            (350.0..500.0).contains(&param_ratio),
            "param ratio {param_ratio}"
        );
        assert!(macs_ratio > 100_000.0, "macs ratio {macs_ratio}");
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(9_288), "9.3 kB");
        assert_eq!(human_bytes(4_032_000), "4.0 MB");
    }

    #[test]
    fn display_is_nonempty() {
        let r = CostReport {
            params: 10,
            macs: 20,
            memory_bytes: 40,
        };
        assert!(!format!("{r}").is_empty());
    }
}
