//! Runtime-dispatched SIMD kernel paths for the GEMM layer.
//!
//! The scalar micro-tile kernels in [`crate::matrix`] are the universal
//! fallback and the bit-exactness reference. On `x86_64` this module adds
//! hand-written SSE2 and AVX2 kernels that vectorize across the *output
//! column* dimension: each output element still accumulates its products in
//! ascending-`k` order with one multiply and one add per step (no FMA, no
//! tree reductions), so every path produces bit-identical results — the
//! SIMD lanes simply compute eight (or four) independent ascending-`k`
//! accumulators side by side. See the crate-level [bit-exactness
//! contract](crate#bit-exactness-contract).
//!
//! The int8 quantized kernels (serving [`crate::quant`]) ride the same
//! dispatch: SSE2/AVX2 `maddubs → madd` pair products, upgraded in place to
//! AVX-VNNI `vpdpbusd` and further to AVX-512-VNNI (two 8-column panels per
//! 512-bit accumulate) when the host supports them. Unlike the f32 paths,
//! these sub-variants need no lane-order discipline to agree: every flavor
//! computes the *exact* i32 sum of the same products, and integer addition
//! is associative — so all int8 variants are bit-identical to each other
//! (and to the scalar int8 reference) by construction, just not to f32.
//!
//! # Path selection
//!
//! [`active`] resolves the path every GEMM dispatches on:
//!
//! 1. a programmatic override installed with [`force`] (tests, engine
//!    config), else
//! 2. the `PINNSOC_FORCE_KERNEL` environment variable (`scalar` / `sse2` /
//!    `avx2`, read once per process), else
//! 3. the best path the host supports ([`detect`], using
//!    `is_x86_feature_detected!`).
//!
//! Forcing a path the host cannot run clamps down to the best supported
//! one (forcing `avx2` on an SSE2-only host yields `sse2`), so a forced
//! process can never execute illegal instructions. Because every path is
//! bit-identical, forcing is always observably safe — it only changes
//! speed.

use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// One of the implementations the GEMM layer can dispatch to.
///
/// Discriminants are ordered by capability so clamping a forced path to
/// the host's best supported path is a `min`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum KernelPath {
    /// Portable scalar micro-tile kernels (the reference implementation).
    Scalar = 1,
    /// 128-bit SSE2 kernels (baseline on every `x86_64`).
    Sse2 = 2,
    /// 256-bit AVX2 kernels (runtime-detected).
    Avx2 = 3,
}

impl KernelPath {
    /// Stable lowercase name, used by bench metadata, observability and
    /// the `PINNSOC_FORCE_KERNEL` variable.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Sse2 => "sse2",
            KernelPath::Avx2 => "avx2",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(KernelPath::Scalar),
            2 => Some(KernelPath::Sse2),
            3 => Some(KernelPath::Avx2),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for KernelPath {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(KernelPath::Scalar),
            "sse2" => Ok(KernelPath::Sse2),
            "avx2" => Ok(KernelPath::Avx2),
            other => Err(format!(
                "unknown kernel path '{other}' (expected scalar, sse2 or avx2)"
            )),
        }
    }
}

/// Best kernel path the host supports.
pub fn detect() -> KernelPath {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            KernelPath::Avx2
        } else {
            // SSE2 is part of the x86_64 baseline.
            KernelPath::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        KernelPath::Scalar
    }
}

/// Programmatic override: 0 = none, else a `KernelPath` discriminant.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// `PINNSOC_FORCE_KERNEL`, parsed once per process. Unparseable values are
/// ignored (the serving fleet must not crash on a typo'd env).
fn env_force() -> Option<KernelPath> {
    static ENV: OnceLock<Option<KernelPath>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PINNSOC_FORCE_KERNEL")
            .ok()
            .and_then(|v| v.parse().ok())
    })
}

/// Installs (`Some`) or clears (`None`) the process-wide kernel-path
/// override. Takes precedence over `PINNSOC_FORCE_KERNEL`. Forcing above
/// the host's capability clamps to [`detect`]; since all paths are
/// bit-identical, concurrent forcing only ever changes speed, never
/// results.
pub fn force(path: Option<KernelPath>) {
    FORCED.store(path.map_or(0, |p| p as u8), Ordering::Release);
}

/// The kernel path the next GEMM call will dispatch to: forced override,
/// else `PINNSOC_FORCE_KERNEL`, else the detected best ([`detect`]).
pub fn active() -> KernelPath {
    let detected = detect();
    let requested = KernelPath::from_u8(FORCED.load(Ordering::Acquire))
        .or_else(env_force)
        .unwrap_or(detected);
    requested.min(detected)
}

/// The int8 accumulate flavor the quantized GEMMs will dispatch to under
/// the current [`active`] path — bench/observability metadata only (all
/// flavors are bit-identical; see the module docs). The `Avx2` path
/// sub-dispatches on VNNI support, which `active()` alone cannot express.
pub fn int8_flavor() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        match active() {
            KernelPath::Scalar => "scalar",
            KernelPath::Sse2 => "sse2-madd",
            KernelPath::Avx2 => {
                if x86::vnni512() {
                    "avx512-vnni"
                } else if x86::vnni() {
                    "avx-vnni"
                } else {
                    "avx2-madd"
                }
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "scalar"
    }
}

/// x86_64 SIMD kernels. Each output element accumulates in ascending-`k`
/// order with separate multiply and add instructions, so results are
/// bit-identical to the scalar reference kernels (lanes are independent
/// columns; vectorization never reorders any element's sum).
///
/// All pointer arithmetic is bounds-justified at the call sites in
/// `matrix.rs`, which pass slices whose lengths they have already
/// asserted; the `// SAFETY:` comments on each block record the exact
/// obligations.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod x86 {
    use std::arch::x86_64::*;

    /// AVX2 column-strip kernel: `IB` rows × 16 columns of
    /// `out += lhs · b`, accumulated in eight-lane registers over the full
    /// depth and stored once. `b` is any k-major operand (row-major GEMM
    /// rhs or a packed panel) with row stride `b_stride`; the strip starts
    /// at `b` itself.
    ///
    /// # Safety
    ///
    /// - `lhs` must hold `IB * depth` readable floats (row-major, stride
    ///   `depth`).
    /// - `b` must hold `(depth - 1) * b_stride + 16` readable floats.
    /// - `out` must hold `(IB - 1) * out_stride + 16` writable floats.
    #[target_feature(enable = "avx2")]
    unsafe fn strip16<const IB: usize>(
        lhs: *const f32,
        depth: usize,
        b: *const f32,
        b_stride: usize,
        out: *mut f32,
        out_stride: usize,
    ) {
        // SAFETY: all loads/stores below stay inside the ranges the
        // caller guarantees: lhs reads `r * depth + k` with r < IB and
        // k < depth; b reads `k * b_stride + {0..16}`; out writes
        // `r * out_stride + {0..16}`.
        unsafe {
            let mut acc0 = [_mm256_setzero_ps(); IB];
            let mut acc1 = [_mm256_setzero_ps(); IB];
            for k in 0..depth {
                let w0 = _mm256_loadu_ps(b.add(k * b_stride));
                let w1 = _mm256_loadu_ps(b.add(k * b_stride + 8));
                for r in 0..IB {
                    let a = _mm256_broadcast_ss(&*lhs.add(r * depth + k));
                    // One multiply, one add per step — no FMA, so each
                    // lane's rounding matches the scalar kernel exactly.
                    acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(a, w0));
                    acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(a, w1));
                }
            }
            for r in 0..IB {
                _mm256_storeu_ps(out.add(r * out_stride), acc0[r]);
                _mm256_storeu_ps(out.add(r * out_stride + 8), acc1[r]);
            }
        }
    }

    /// AVX2 eight-column variant of [`strip16`].
    ///
    /// # Safety
    ///
    /// As [`strip16`] with 8 columns instead of 16: `b` must hold
    /// `(depth - 1) * b_stride + 8` floats, `out` must hold
    /// `(IB - 1) * out_stride + 8`.
    #[target_feature(enable = "avx2")]
    unsafe fn strip8<const IB: usize>(
        lhs: *const f32,
        depth: usize,
        b: *const f32,
        b_stride: usize,
        out: *mut f32,
        out_stride: usize,
    ) {
        // SAFETY: same access pattern as `strip16` narrowed to 8 columns,
        // inside the caller-guaranteed ranges.
        unsafe {
            let mut acc = [_mm256_setzero_ps(); IB];
            for k in 0..depth {
                let w = _mm256_loadu_ps(b.add(k * b_stride));
                for (r, acc_r) in acc.iter_mut().enumerate() {
                    let a = _mm256_broadcast_ss(&*lhs.add(r * depth + k));
                    *acc_r = _mm256_add_ps(*acc_r, _mm256_mul_ps(a, w));
                }
            }
            for (r, &acc_r) in acc.iter().enumerate() {
                _mm256_storeu_ps(out.add(r * out_stride), acc_r);
            }
        }
    }

    /// AVX2 multi-strip kernel: `strips` consecutive eight-column strips
    /// of `out = lhs · b` in one call — the strip loop lives inside the
    /// `#[target_feature]` boundary, so tall row blocks (which cannot use
    /// [`strip16`] without spilling accumulators) pay the call glue once
    /// per block instead of once per strip.
    ///
    /// # Safety
    ///
    /// As [`strip8`] over `strips * 8` columns: `b` must hold
    /// `(depth - 1) * b_stride + strips * 8` floats, `out` must hold
    /// `(IB - 1) * out_stride + strips * 8`.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn strips8_avx2<const IB: usize>(
        lhs: *const f32,
        depth: usize,
        b: *const f32,
        b_stride: usize,
        strips: usize,
        out: *mut f32,
        out_stride: usize,
    ) {
        // SAFETY: strip `s` touches columns `s * 8 .. s * 8 + 8`, inside
        // the caller-guaranteed `strips * 8`; per-strip accesses are
        // exactly those of `strip8`.
        unsafe {
            for s in 0..strips {
                let bs = b.add(s * 8);
                let os = out.add(s * 8);
                let mut acc = [_mm256_setzero_ps(); IB];
                for k in 0..depth {
                    let w = _mm256_loadu_ps(bs.add(k * b_stride));
                    for (r, acc_r) in acc.iter_mut().enumerate() {
                        let a = _mm256_broadcast_ss(&*lhs.add(r * depth + k));
                        *acc_r = _mm256_add_ps(*acc_r, _mm256_mul_ps(a, w));
                    }
                }
                for (r, &acc_r) in acc.iter().enumerate() {
                    _mm256_storeu_ps(os.add(r * out_stride), acc_r);
                }
            }
        }
    }

    /// AVX2 whole-batch GEMM over the strip-aligned columns: eight-row
    /// blocks with a single-row sweep for the remainder, all inside one
    /// `#[target_feature]` call — per-block call glue is measurable
    /// against these small model shapes.
    ///
    /// # Safety
    ///
    /// As [`strips8_avx2`] with `rows` rows: `lhs` must hold
    /// `rows * depth` readable floats and `out` must hold
    /// `(rows - 1) * out_stride + strips * 8` writable floats.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn gemm_batch_avx2(
        lhs: *const f32,
        rows: usize,
        depth: usize,
        b: *const f32,
        b_stride: usize,
        strips: usize,
        out: *mut f32,
        out_stride: usize,
    ) {
        // SAFETY: each block call covers rows `r..r+IB` within the
        // caller-guaranteed `rows`; per-block obligations are documented
        // on `strips8_avx2`.
        unsafe {
            let mut r = 0;
            while r + 8 <= rows {
                strips8_avx2::<8>(
                    lhs.add(r * depth),
                    depth,
                    b,
                    b_stride,
                    strips,
                    out.add(r * out_stride),
                    out_stride,
                );
                r += 8;
            }
            while r < rows {
                strips8_avx2::<1>(
                    lhs.add(r * depth),
                    depth,
                    b,
                    b_stride,
                    strips,
                    out.add(r * out_stride),
                    out_stride,
                );
                r += 1;
            }
        }
    }

    /// Safe wrapper over [`gemm_batch_avx2`]: `out[.., ..strips*8] =
    /// lhs · b` for the whole batch in one kernel call. AVX2-only — the
    /// caller must have verified support (debug-asserted) and fall back
    /// to [`gemm_block`] loops otherwise.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gemm_batch(
        lhs: &[f32],
        rows: usize,
        depth: usize,
        b: &[f32],
        b_stride: usize,
        strips: usize,
        out: &mut [f32],
        out_stride: usize,
    ) {
        if rows == 0 || strips == 0 {
            return;
        }
        debug_assert!(lhs.len() >= rows * depth);
        debug_assert!(b.len() >= (depth - 1) * b_stride + strips * 8);
        debug_assert!(out.len() >= (rows - 1) * out_stride + strips * 8);
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: the slice lengths debug-asserted above are exactly the
        // kernel's documented obligations; AVX2 support is the caller's
        // contract (debug-asserted).
        unsafe {
            gemm_batch_avx2(
                lhs.as_ptr(),
                rows,
                depth,
                b.as_ptr(),
                b_stride,
                strips,
                out.as_mut_ptr(),
                out_stride,
            );
        }
    }

    /// SSE2 column-strip kernel: `IB` rows × 8 columns in two four-lane
    /// registers per row.
    ///
    /// # Safety
    ///
    /// As [`strip16`] with 8 columns: `b` must hold
    /// `(depth - 1) * b_stride + 8` floats, `out` must hold
    /// `(IB - 1) * out_stride + 8`.
    unsafe fn sse2_strip8<const IB: usize>(
        lhs: *const f32,
        depth: usize,
        b: *const f32,
        b_stride: usize,
        out: *mut f32,
        out_stride: usize,
    ) {
        // SAFETY: same access pattern as `strip16` narrowed to 8 columns,
        // inside the caller-guaranteed ranges. SSE2 is part of the x86_64
        // baseline, so no runtime feature check is needed.
        unsafe {
            let mut acc0 = [_mm_setzero_ps(); IB];
            let mut acc1 = [_mm_setzero_ps(); IB];
            for k in 0..depth {
                let w0 = _mm_loadu_ps(b.add(k * b_stride));
                let w1 = _mm_loadu_ps(b.add(k * b_stride + 4));
                for r in 0..IB {
                    let a = _mm_set1_ps(*lhs.add(r * depth + k));
                    acc0[r] = _mm_add_ps(acc0[r], _mm_mul_ps(a, w0));
                    acc1[r] = _mm_add_ps(acc1[r], _mm_mul_ps(a, w1));
                }
            }
            for r in 0..IB {
                _mm_storeu_ps(out.add(r * out_stride), acc0[r]);
                _mm_storeu_ps(out.add(r * out_stride + 4), acc1[r]);
            }
        }
    }

    /// SSE2 four-column variant of [`sse2_strip8`].
    ///
    /// # Safety
    ///
    /// As [`strip16`] with 4 columns: `b` must hold
    /// `(depth - 1) * b_stride + 4` floats, `out` must hold
    /// `(IB - 1) * out_stride + 4`.
    unsafe fn sse2_strip4<const IB: usize>(
        lhs: *const f32,
        depth: usize,
        b: *const f32,
        b_stride: usize,
        out: *mut f32,
        out_stride: usize,
    ) {
        // SAFETY: same access pattern as `sse2_strip8` narrowed to 4
        // columns, inside the caller-guaranteed ranges.
        unsafe {
            let mut acc = [_mm_setzero_ps(); IB];
            for k in 0..depth {
                let w = _mm_loadu_ps(b.add(k * b_stride));
                for (r, acc_r) in acc.iter_mut().enumerate() {
                    let a = _mm_set1_ps(*lhs.add(r * depth + k));
                    *acc_r = _mm_add_ps(*acc_r, _mm_mul_ps(a, w));
                }
            }
            for (r, &acc_r) in acc.iter().enumerate() {
                _mm_storeu_ps(out.add(r * out_stride), acc_r);
            }
        }
    }

    /// Safe wrapper: one `IB`-row block of `out = lhs · b` over `cols`
    /// columns of a k-major operand, SIMD strips first, scalar tail after.
    /// `spill` provides scratch the strip kernels can overshoot into when
    /// `cols` is not a multiple of the strip width **and** the caller has
    /// no padded columns (`b_padded == false` means tails run scalar
    /// instead).
    ///
    /// `avx2` selects the 256-bit kernels; the caller must have verified
    /// AVX2 support (this wrapper debug-asserts it).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gemm_block<const IB: usize>(
        avx2: bool,
        lhs: &[f32],
        depth: usize,
        b: &[f32],
        b_stride: usize,
        cols: usize,
        b_padded: bool,
        out: &mut [f32],
        out_stride: usize,
    ) {
        debug_assert!(lhs.len() >= IB * depth);
        debug_assert!(out.len() >= (IB - 1) * out_stride + cols);
        debug_assert!(!avx2 || std::arch::is_x86_feature_detected!("avx2"));
        let simd_cols = if b_padded {
            cols
        } else if avx2 {
            cols - cols % 8
        } else {
            cols - cols % 4
        };
        let padded_cols = if b_padded {
            simd_cols.next_multiple_of(if avx2 { 8 } else { 4 })
        } else {
            simd_cols
        };
        debug_assert!(b.len() >= (depth - 1) * b_stride + padded_cols.max(1));
        let mut j = 0;
        // Full-width strips that store straight into `out`. The 16-column
        // strip needs two accumulator registers per row, so it only fits
        // the register file for row blocks of at most 4 — taller blocks
        // sweep 8 columns at a time instead (same port-limited throughput,
        // half the per-block call overhead).
        if avx2 {
            while IB <= 4 && j + 16 <= simd_cols {
                // SAFETY: j + 16 <= simd_cols <= cols keeps every read of
                // `b` (k * b_stride + j..+16) and write of `out`
                // (r * out_stride + j..+16) inside the slices, per the
                // debug-asserted lengths above. AVX2 support is the
                // caller's contract, debug-asserted above.
                unsafe {
                    strip16::<IB>(
                        lhs.as_ptr(),
                        depth,
                        b.as_ptr().add(j),
                        b_stride,
                        out.as_mut_ptr().add(j),
                        out_stride,
                    )
                };
                j += 16;
            }
            let strips = (simd_cols - j) / 8;
            if strips > 0 {
                // SAFETY: as above over `strips * 8` columns starting at
                // `j` — `j + strips * 8 <= simd_cols <= cols` keeps every
                // access inside the debug-asserted slice lengths.
                unsafe {
                    strips8_avx2::<IB>(
                        lhs.as_ptr(),
                        depth,
                        b.as_ptr().add(j),
                        b_stride,
                        strips,
                        out.as_mut_ptr().add(j),
                        out_stride,
                    )
                };
                j += strips * 8;
            }
        } else {
            while j + 8 <= simd_cols {
                // SAFETY: as the AVX2 strips above, with SSE2 kernels
                // (baseline on x86_64, no feature check needed).
                unsafe {
                    sse2_strip8::<IB>(
                        lhs.as_ptr(),
                        depth,
                        b.as_ptr().add(j),
                        b_stride,
                        out.as_mut_ptr().add(j),
                        out_stride,
                    )
                };
                j += 8;
            }
            while j + 4 <= simd_cols {
                // SAFETY: as above, narrowed to 4 columns.
                unsafe {
                    sse2_strip4::<IB>(
                        lhs.as_ptr(),
                        depth,
                        b.as_ptr().add(j),
                        b_stride,
                        out.as_mut_ptr().add(j),
                        out_stride,
                    )
                };
                j += 4;
            }
        }
        // Padded tail: the operand guarantees a full strip of columns
        // (zero-padded), but `out` only has `cols` — compute the full
        // strip for the whole row block into a stack buffer and copy the
        // live lanes out per row.
        if b_padded && j < cols {
            let width = padded_cols - j;
            const { assert!(IB <= 8, "tail buffer sized for row blocks of at most 8") };
            let mut buf = [0.0f32; 64];
            // SAFETY: the padded operand holds `padded_cols` columns per
            // k-row (caller contract, debug-asserted above); `buf` holds
            // `IB` rows of 8 writable floats at stride 8 (IB ≤ 8 by the
            // const assert) and `width` is 8 (AVX2) or 4/8 (SSE2).
            unsafe {
                if avx2 {
                    debug_assert_eq!(width, 8);
                    strip8::<IB>(
                        lhs.as_ptr(),
                        depth,
                        b.as_ptr().add(j),
                        b_stride,
                        buf.as_mut_ptr(),
                        8,
                    );
                } else if width == 8 {
                    sse2_strip8::<IB>(
                        lhs.as_ptr(),
                        depth,
                        b.as_ptr().add(j),
                        b_stride,
                        buf.as_mut_ptr(),
                        8,
                    );
                } else {
                    debug_assert_eq!(width, 4);
                    sse2_strip4::<IB>(
                        lhs.as_ptr(),
                        depth,
                        b.as_ptr().add(j),
                        b_stride,
                        buf.as_mut_ptr(),
                        8,
                    );
                }
            }
            for r in 0..IB {
                out[r * out_stride + j..r * out_stride + cols]
                    .copy_from_slice(&buf[r * 8..r * 8 + cols - j]);
            }
        } else {
            // Unpadded scalar tail (row-major rhs narrower than a strip):
            // identical ascending-`k` loop to the scalar reference.
            for jj in j..cols {
                for r in 0..IB {
                    let mut acc = 0.0f32;
                    for k in 0..depth {
                        acc += lhs[r * depth + k] * b[k * b_stride + jj];
                    }
                    out[r * out_stride + jj] = acc;
                }
            }
        }
    }

    /// AVX2 int8 micro-kernel: `IB` rows × 8 columns of an i32-accumulate
    /// GEMM over k-pair-interleaved i16 weights (`wp[kk * 16 + j * 2 + d]`
    /// = weight of depth `2 * kk + d`, column `j`). `_mm256_madd_epi16`
    /// multiplies each activation pair against a column's weight pair and
    /// adds the two i32 products — integer arithmetic, so any summation
    /// order gives the identical accumulator.
    ///
    /// # Safety
    ///
    /// - `q` must hold `IB` rows of `2 * kpairs` readable i16 activations
    ///   at stride `q_stride`.
    /// - `wp` must hold `kpairs * 16` readable i16 values.
    /// - `acc` must hold `(IB - 1) * acc_stride + 8` writable i32.
    #[target_feature(enable = "avx2")]
    unsafe fn int8_strip8<const IB: usize>(
        q: *const i16,
        q_stride: usize,
        kpairs: usize,
        wp: *const i16,
        acc: *mut i32,
        acc_stride: usize,
    ) {
        // SAFETY: reads of `q` stay below `r * q_stride + 2 * kpairs`,
        // reads of `wp` below `kpairs * 16`, writes of `acc` below
        // `r * acc_stride + 8` — all caller-guaranteed. The unaligned
        // 32-bit activation-pair load is performed via `read_unaligned`.
        unsafe {
            let mut sums = [_mm256_setzero_si256(); IB];
            for kk in 0..kpairs {
                let w = _mm256_loadu_si256(wp.add(kk * 16) as *const __m256i);
                for (r, sum) in sums.iter_mut().enumerate() {
                    let pair = (q.add(r * q_stride + 2 * kk) as *const i32).read_unaligned();
                    let a = _mm256_set1_epi32(pair);
                    *sum = _mm256_add_epi32(*sum, _mm256_madd_epi16(a, w));
                }
            }
            for (r, &sum) in sums.iter().enumerate() {
                _mm256_storeu_si256(acc.add(r * acc_stride) as *mut __m256i, sum);
            }
        }
    }

    /// SSE2 variant of [`int8_strip8`]: two four-lane halves per row.
    ///
    /// # Safety
    ///
    /// As [`int8_strip8`].
    unsafe fn sse2_int8_strip8<const IB: usize>(
        q: *const i16,
        q_stride: usize,
        kpairs: usize,
        wp: *const i16,
        acc: *mut i32,
        acc_stride: usize,
    ) {
        // SAFETY: same access ranges as `int8_strip8`; `_mm_madd_epi16`
        // is SSE2, part of the x86_64 baseline.
        unsafe {
            let mut lo = [_mm_setzero_si128(); IB];
            let mut hi = [_mm_setzero_si128(); IB];
            for kk in 0..kpairs {
                let w0 = _mm_loadu_si128(wp.add(kk * 16) as *const __m128i);
                let w1 = _mm_loadu_si128(wp.add(kk * 16 + 8) as *const __m128i);
                for r in 0..IB {
                    let pair = (q.add(r * q_stride + 2 * kk) as *const i32).read_unaligned();
                    let a = _mm_set1_epi32(pair);
                    lo[r] = _mm_add_epi32(lo[r], _mm_madd_epi16(a, w0));
                    hi[r] = _mm_add_epi32(hi[r], _mm_madd_epi16(a, w1));
                }
            }
            for r in 0..IB {
                _mm_storeu_si128(acc.add(r * acc_stride) as *mut __m128i, lo[r]);
                _mm_storeu_si128(acc.add(r * acc_stride + 4) as *mut __m128i, hi[r]);
            }
        }
    }

    /// Safe wrapper over the int8 strip kernels: one `IB`-row block of a
    /// panel's i32 accumulators.
    pub(crate) fn int8_block<const IB: usize>(
        avx2: bool,
        q: &[i16],
        q_stride: usize,
        kpairs: usize,
        wp: &[i16],
        acc: &mut [i32],
        acc_stride: usize,
    ) {
        debug_assert!(q.len() >= (IB - 1) * q_stride + 2 * kpairs);
        debug_assert!(wp.len() >= kpairs * 16);
        debug_assert!(acc.len() >= (IB - 1) * acc_stride + 8);
        debug_assert!(!avx2 || std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: the slice lengths debug-asserted above are exactly the
        // kernels' documented obligations; AVX2 support is the caller's
        // contract (debug-asserted).
        unsafe {
            if avx2 {
                int8_strip8::<IB>(
                    q.as_ptr(),
                    q_stride,
                    kpairs,
                    wp.as_ptr(),
                    acc.as_mut_ptr(),
                    acc_stride,
                );
            } else {
                sse2_int8_strip8::<IB>(
                    q.as_ptr(),
                    q_stride,
                    kpairs,
                    wp.as_ptr(),
                    acc.as_mut_ptr(),
                    acc_stride,
                );
            }
        }
    }

    /// One depth step of a panel's i32 accumulation: `madd` is the
    /// plain-AVX2 `_mm256_madd_epi16` + `_mm256_add_epi32` pair; `vnni`
    /// fuses both into one `vpdpwssd` (`_mm256_dpwssd_avx_epi32`). Both
    /// compute the exact same i32 value — integer accumulation has no
    /// rounding — so the two generated kernel families below are
    /// bit-identical and VNNI can ride the `Avx2` path invisibly.
    macro_rules! int8_accum {
        (madd, $s:expr, $a:expr, $w:expr) => {
            _mm256_add_epi32($s, _mm256_madd_epi16($a, $w))
        };
        (vnni, $s:expr, $a:expr, $w:expr) => {
            _mm256_dpwssd_avx_epi32($s, $a, $w)
        };
    }

    /// Generates one 256-bit fused int8 kernel family — panel sums, the
    /// fused dequant/bias/activation block and batch driver, and the
    /// quantizing (i16 in → i16 out) block and driver — for one
    /// accumulate flavor (see [`int8_accum`]). Invoked twice: plain AVX2
    /// (`madd`) and AVX-VNNI (`vnni`), selected at runtime by the safe
    /// wrappers via [`vnni()`](self::vnni). Keeping both variants inside
    /// one macro keeps the hot loops a single source of truth, and the
    /// `#[target_feature]` on each generated function is what lets the
    /// VNNI instruction be emitted at all — functions with different
    /// feature sets never cross-inline, so the whole chain is duplicated
    /// per flavor.
    macro_rules! int8_fused_family {
        (
            $feat:literal, $acc:tt,
            $panel_sums:ident, $fused_block:ident, $fused:ident,
            $quant_block:ident, $quant:ident
        ) => {
            /// One panel's i32 accumulators for an `IB`-row block — the
            /// shared GEMM core of the fused int8 kernels (identical
            /// accumulation to [`int8_strip8`]).
            ///
            /// # Safety
            ///
            /// `q` must hold `IB` rows of `2 * kpairs` readable i16 at
            /// stride `q_stride`; `wpp` must hold `kpairs * 16` readable
            /// i16; the CPU must support this function's target
            /// features.
            #[target_feature(enable = $feat)]
            #[inline]
            unsafe fn $panel_sums<const IB: usize>(
                q: *const i16,
                q_stride: usize,
                kpairs: usize,
                wpp: *const i16,
            ) -> [__m256i; IB] {
                // SAFETY: accesses are exactly the caller-guaranteed
                // ranges above.
                unsafe {
                    let mut sums = [_mm256_setzero_si256(); IB];
                    for kk in 0..kpairs {
                        let w = _mm256_loadu_si256(wpp.add(kk * 16) as *const __m256i);
                        for r in 0..IB {
                            let pair =
                                (q.add(r * q_stride + 2 * kk) as *const i32).read_unaligned();
                            let a = _mm256_set1_epi32(pair);
                            sums[r] = int8_accum!($acc, sums[r], a, w);
                        }
                    }
                    sums
                }
            }

            /// Fused int8 GEMM + dequant epilogue for one `IB`-row block
            /// across *every* panel of a quantized layer: for panel `p`,
            /// accumulates the i32 sums exactly like [`int8_strip8`],
            /// then converts, scales (`dequant`), biases and optionally
            /// ReLUs in registers and stores straight to the f32 output
            /// — no i32 round-trip through memory. A ragged last panel
            /// (fewer than eight live columns) spills its accumulators
            /// to a stack buffer and runs the scalar epilogue formula
            /// per live lane. Both epilogues perform the identical
            /// operation sequence as the deferred
            /// [`dequant_epilogue_avx2`] (exact i32→f32 conversion, one
            /// multiply, one add, `max(v, 0)` /
            /// [`crate::quant::relu_exact`]), so results are
            /// bit-identical to the unfused path.
            ///
            /// # Safety
            ///
            /// - `q` must hold `IB` rows of `2 * kpairs` readable i16 at
            ///   stride `q_stride`.
            /// - `wp` must hold `panel_count * kpairs * 16` readable
            ///   i16.
            /// - `dequant` and `bias` must hold `fan_out` readable f32,
            ///   with `panel_count == fan_out.div_ceil(8)`.
            /// - `out` must hold `(IB - 1) * out_stride + fan_out`
            ///   writable f32.
            /// - The CPU must support this function's target features.
            #[target_feature(enable = $feat)]
            #[inline]
            #[allow(clippy::too_many_arguments)]
            unsafe fn $fused_block<const IB: usize>(
                q: *const i16,
                q_stride: usize,
                kpairs: usize,
                wp: *const i16,
                panel_count: usize,
                fan_out: usize,
                dequant: *const f32,
                bias: *const f32,
                out: *mut f32,
                out_stride: usize,
                relu: bool,
            ) {
                // SAFETY: panel `p` reads
                // `wp[p*kpairs*16 .. (p+1)*kpairs*16]`;
                // `dequant`/`bias`/`out` column accesses stop at
                // `j0 + live <= fan_out`; `q` accesses match
                // `int8_strip8` — all caller-guaranteed.
                unsafe {
                    let zero = _mm256_setzero_ps();
                    for p in 0..panel_count {
                        let wpp = wp.add(p * kpairs * 16);
                        let sums = $panel_sums::<IB>(q, q_stride, kpairs, wpp);
                        let j0 = p * 8;
                        if fan_out - j0 >= 8 {
                            let d = _mm256_loadu_ps(dequant.add(j0));
                            let b = _mm256_loadu_ps(bias.add(j0));
                            for r in 0..IB {
                                let v = _mm256_cvtepi32_ps(sums[r]);
                                let v = _mm256_add_ps(_mm256_mul_ps(v, d), b);
                                let v = if relu { _mm256_max_ps(v, zero) } else { v };
                                _mm256_storeu_ps(out.add(r * out_stride + j0), v);
                            }
                        } else {
                            let live = fan_out - j0;
                            let mut buf = [0i32; 8];
                            for r in 0..IB {
                                _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, sums[r]);
                                for (jj, &sum) in buf.iter().enumerate().take(live) {
                                    let v = sum as f32 * *dequant.add(j0 + jj) + *bias.add(j0 + jj);
                                    *out.add(r * out_stride + j0 + jj) =
                                        if relu { crate::quant::relu_exact(v) } else { v };
                                }
                            }
                        }
                    }
                }
            }

            /// Fused int8 forward over a whole batch: eight-row blocks
            /// with a single-row sweep for the remainder, all inside one
            /// call (the per-block call overhead is what used to
            /// dominate these small layers).
            ///
            /// # Safety
            ///
            /// As the block kernel with `rows` rows: `q` must hold
            /// `rows * q_stride` i16 and `out`
            /// `(rows - 1) * out_stride + fan_out` writable f32.
            #[target_feature(enable = $feat)]
            #[allow(clippy::too_many_arguments)]
            unsafe fn $fused(
                q: *const i16,
                q_stride: usize,
                kpairs: usize,
                rows: usize,
                wp: *const i16,
                panel_count: usize,
                fan_out: usize,
                dequant: *const f32,
                bias: *const f32,
                out: *mut f32,
                out_stride: usize,
                relu: bool,
            ) {
                // SAFETY: each block call covers rows `r..r+IB` within
                // the caller-guaranteed `rows`; the per-block
                // obligations are documented on the block kernel.
                unsafe {
                    let mut r = 0;
                    while r + 8 <= rows {
                        $fused_block::<8>(
                            q.add(r * q_stride),
                            q_stride,
                            kpairs,
                            wp,
                            panel_count,
                            fan_out,
                            dequant,
                            bias,
                            out.add(r * out_stride),
                            out_stride,
                            relu,
                        );
                        r += 8;
                    }
                    while r < rows {
                        $fused_block::<1>(
                            q.add(r * q_stride),
                            q_stride,
                            kpairs,
                            wp,
                            panel_count,
                            fan_out,
                            dequant,
                            bias,
                            out.add(r * out_stride),
                            out_stride,
                            relu,
                        );
                        r += 1;
                    }
                }
            }

            /// Fused int8 layer with a *quantizing* epilogue: identical
            /// to the fused block kernel up to the activation, then
            /// instead of storing f32 it immediately quantizes against
            /// the next layer's reciprocal input scale and stores i16 —
            /// a hidden layer's f32 activations never touch memory.
            /// Every quantize lane runs exactly the operation sequence
            /// of [`crate::quant::quantize_activation`] (the same ops as
            /// [`quantize_row_avx2`]), applied to the exact f32 value
            /// the plain epilogue would have stored, so the chained
            /// forward is bit-identical to quantizing the materialized
            /// activations.
            ///
            /// # Safety
            ///
            /// As the fused block kernel, with `q_out` holding
            /// `(IB - 1) * q_out_stride + fan_out` writable i16 instead
            /// of the f32 output.
            #[target_feature(enable = $feat)]
            #[inline]
            #[allow(clippy::too_many_arguments)]
            unsafe fn $quant_block<const IB: usize>(
                q: *const i16,
                q_stride: usize,
                kpairs: usize,
                wp: *const i16,
                panel_count: usize,
                fan_out: usize,
                dequant: *const f32,
                bias: *const f32,
                relu: bool,
                inv_next: f32,
                q_out: *mut i16,
                q_out_stride: usize,
            ) {
                // SAFETY: panel `p` reads
                // `wp[p*kpairs*16 .. (p+1)*kpairs*16]`;
                // `dequant`/`bias`/`q_out` column accesses stop at
                // `j0 + live <= fan_out`; `q` accesses match
                // `int8_strip8` — all caller-guaranteed.
                unsafe {
                    let zero = _mm256_setzero_ps();
                    let inv = _mm256_set1_ps(inv_next);
                    let half = _mm256_set1_ps(0.5);
                    let sign = _mm256_set1_ps(-0.0);
                    let chi = _mm256_set1_ps(127.0);
                    let clo = _mm256_set1_ps(-127.0);
                    for p in 0..panel_count {
                        let wpp = wp.add(p * kpairs * 16);
                        let sums = $panel_sums::<IB>(q, q_stride, kpairs, wpp);
                        let j0 = p * 8;
                        if fan_out - j0 >= 8 {
                            let d = _mm256_loadu_ps(dequant.add(j0));
                            let b = _mm256_loadu_ps(bias.add(j0));
                            for r in 0..IB {
                                let v = _mm256_cvtepi32_ps(sums[r]);
                                let v = _mm256_add_ps(_mm256_mul_ps(v, d), b);
                                let v = if relu { _mm256_max_ps(v, zero) } else { v };
                                let y = _mm256_mul_ps(v, inv);
                                let t =
                                    _mm256_add_ps(y, _mm256_or_ps(half, _mm256_and_ps(y, sign)));
                                let t = _mm256_max_ps(_mm256_min_ps(t, chi), clo);
                                let qi = _mm256_cvttps_epi32(t);
                                let packed = _mm_packs_epi32(
                                    _mm256_castsi256_si128(qi),
                                    _mm256_extracti128_si256(qi, 1),
                                );
                                _mm_storeu_si128(
                                    q_out.add(r * q_out_stride + j0) as *mut __m128i,
                                    packed,
                                );
                            }
                        } else {
                            let live = fan_out - j0;
                            let mut buf = [0i32; 8];
                            for r in 0..IB {
                                _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, sums[r]);
                                for (jj, &sum) in buf.iter().enumerate().take(live) {
                                    let v = sum as f32 * *dequant.add(j0 + jj) + *bias.add(j0 + jj);
                                    let v = if relu { crate::quant::relu_exact(v) } else { v };
                                    *q_out.add(r * q_out_stride + j0 + jj) =
                                        crate::quant::quantize_activation(v, inv_next);
                                }
                            }
                        }
                    }
                }
            }

            /// Whole-batch driver for the quantizing fused block.
            ///
            /// # Safety
            ///
            /// As the quantizing block kernel with `rows` rows.
            #[target_feature(enable = $feat)]
            #[allow(clippy::too_many_arguments)]
            unsafe fn $quant(
                q: *const i16,
                q_stride: usize,
                kpairs: usize,
                rows: usize,
                wp: *const i16,
                panel_count: usize,
                fan_out: usize,
                dequant: *const f32,
                bias: *const f32,
                relu: bool,
                inv_next: f32,
                q_out: *mut i16,
                q_out_stride: usize,
            ) {
                // SAFETY: each block call covers rows `r..r+IB` within
                // the caller-guaranteed `rows`.
                unsafe {
                    let mut r = 0;
                    while r + 8 <= rows {
                        $quant_block::<8>(
                            q.add(r * q_stride),
                            q_stride,
                            kpairs,
                            wp,
                            panel_count,
                            fan_out,
                            dequant,
                            bias,
                            relu,
                            inv_next,
                            q_out.add(r * q_out_stride),
                            q_out_stride,
                        );
                        r += 8;
                    }
                    while r < rows {
                        $quant_block::<1>(
                            q.add(r * q_stride),
                            q_stride,
                            kpairs,
                            wp,
                            panel_count,
                            fan_out,
                            dequant,
                            bias,
                            relu,
                            inv_next,
                            q_out.add(r * q_out_stride),
                            q_out_stride,
                        );
                        r += 1;
                    }
                }
            }
        };
    }

    int8_fused_family!(
        "avx2",
        madd,
        int8_panel_sums_avx2,
        int8_fused_block_avx2,
        int8_fused_avx2,
        int8_fused_quant_block_avx2,
        int8_fused_quant_avx2
    );
    int8_fused_family!(
        "avx2,avxvnni",
        vnni,
        int8_panel_sums_vnni,
        int8_fused_block_vnni,
        int8_fused_vnni,
        int8_fused_quant_block_vnni,
        int8_fused_quant_vnni
    );

    /// Cached runtime probe for AVX-VNNI (`vpdpwssd`): when present, the
    /// fused int8 wrappers dispatch to the `vnni` kernel family, which
    /// folds each `madd`+`add` accumulate pair into a single fused
    /// instruction — one fewer uop per sixteen MACs in the hottest loop
    /// of quantized serving. Integer accumulation is exact, so the VNNI
    /// family is bit-identical to plain AVX2 and rides the
    /// [`KernelPath::Avx2`](super::KernelPath::Avx2) path invisibly;
    /// forcing `sse2`/`scalar` bypasses it along with the rest of AVX2.
    pub(crate) fn vnni() -> bool {
        static VNNI: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *VNNI.get_or_init(|| std::arch::is_x86_feature_detected!("avxvnni"))
    }

    /// Cached runtime probe for AVX-512 VNNI: when present, the fused int8
    /// wrappers dispatch to the 512-bit kernel family below, which chews two
    /// adjacent eight-column panels per depth step (one `vpdpwssd zmm` in
    /// place of two 256-bit accumulates, with the activation broadcast
    /// shared across both panels). Integer accumulation is exact, so this
    /// family is bit-identical to the 256-bit ones and — like plain
    /// AVX-VNNI — rides the [`KernelPath::Avx2`](super::KernelPath::Avx2)
    /// path invisibly; forcing `sse2`/`scalar` bypasses it.
    pub(crate) fn vnni512() -> bool {
        static VNNI512: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *VNNI512.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vnni")
        })
    }

    /// i32 accumulators for a *pair* of adjacent panels (16 output
    /// columns) over an `IB`-row block: each panel's 256-bit row of the
    /// packed layout is loaded as one half of a 512-bit vector, so a depth
    /// step costs one weight assembly plus one `vpdpwssd zmm` per row —
    /// roughly half the uops of running the two panels through the 256-bit
    /// family. Accumulation is exact integer arithmetic, bit-identical to
    /// [`int8_strip8`] per lane.
    ///
    /// # Safety
    ///
    /// - `q` must hold `IB` rows of `2 * kpairs` readable i16 at stride
    ///   `q_stride`.
    /// - `wpp` must hold `2 * kpairs * 16` readable i16 (two consecutive
    ///   packed panels).
    /// - The CPU must support AVX-512F and AVX-512 VNNI.
    #[target_feature(enable = "avx512f,avx512vnni")]
    #[inline]
    unsafe fn int8_panel_pair_sums_avx512<const IB: usize>(
        q: *const i16,
        q_stride: usize,
        kpairs: usize,
        wpp: *const i16,
    ) -> [__m512i; IB] {
        // SAFETY: reads of `q` stay below `r * q_stride + 2 * kpairs` and
        // reads of `wpp` below `2 * kpairs * 16` — both caller-guaranteed.
        unsafe {
            let mut sums = [_mm512_setzero_si512(); IB];
            for kk in 0..kpairs {
                let w0 = _mm256_loadu_si256(wpp.add(kk * 16) as *const __m256i);
                let w1 = _mm256_loadu_si256(wpp.add((kpairs + kk) * 16) as *const __m256i);
                let w = _mm512_inserti64x4(_mm512_castsi256_si512(w0), w1, 1);
                for (r, sum) in sums.iter_mut().enumerate() {
                    let pair = (q.add(r * q_stride + 2 * kk) as *const i32).read_unaligned();
                    let a = _mm512_set1_epi32(pair);
                    *sum = _mm512_dpwssd_epi32(*sum, a, w);
                }
            }
            sums
        }
    }

    /// AVX-512 VNNI fused int8 block: full panel *pairs* (16 live columns)
    /// run the 512-bit GEMM core with a 512-bit dequant/bias/activation
    /// epilogue; whatever remains (a lone last panel, or a ragged pair)
    /// is delegated to [`int8_fused_block_avx2`] with panel-offset
    /// pointers — AVX2 is implied by AVX-512F, and the `madd` flavor is
    /// bit-identical, so the seam is invisible. Every f32 epilogue lane
    /// performs the exact operation sequence of the 256-bit families
    /// (exact i32→f32 convert, one multiply, one add, `max(v, 0)`), so
    /// results are bit-identical to the unfused scalar path.
    ///
    /// # Safety
    ///
    /// As [`int8_fused_block_avx2`], plus AVX-512F/AVX-512 VNNI support.
    #[target_feature(enable = "avx512f,avx512vnni")]
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn int8_fused_block_avx512<const IB: usize>(
        q: *const i16,
        q_stride: usize,
        kpairs: usize,
        wp: *const i16,
        panel_count: usize,
        fan_out: usize,
        dequant: *const f32,
        bias: *const f32,
        out: *mut f32,
        out_stride: usize,
        relu: bool,
    ) {
        // SAFETY: the pair loop only runs while columns `p*8..p*8+16` are
        // all live (`fan_out >= p * 8 + 16`), so every 512-bit
        // `dequant`/`bias` load and `out` store is in bounds; the tail
        // delegation re-bases `wp`/`dequant`/`bias`/`out` by whole panels
        // and shrinks `panel_count`/`fan_out` to match, which restores
        // exactly the delegate's documented obligations.
        unsafe {
            let zero = _mm512_setzero_ps();
            let mut p = 0;
            while p + 2 <= panel_count && fan_out >= p * 8 + 16 {
                let sums =
                    int8_panel_pair_sums_avx512::<IB>(q, q_stride, kpairs, wp.add(p * kpairs * 16));
                let j0 = p * 8;
                let d = _mm512_loadu_ps(dequant.add(j0));
                let b = _mm512_loadu_ps(bias.add(j0));
                for (r, &sum) in sums.iter().enumerate() {
                    let v = _mm512_cvtepi32_ps(sum);
                    let v = _mm512_add_ps(_mm512_mul_ps(v, d), b);
                    let v = if relu { _mm512_max_ps(v, zero) } else { v };
                    _mm512_storeu_ps(out.add(r * out_stride + j0), v);
                }
                p += 2;
            }
            if p < panel_count {
                int8_fused_block_avx2::<IB>(
                    q,
                    q_stride,
                    kpairs,
                    wp.add(p * kpairs * 16),
                    panel_count - p,
                    fan_out - p * 8,
                    dequant.add(p * 8),
                    bias.add(p * 8),
                    out.add(p * 8),
                    out_stride,
                    relu,
                );
            }
        }
    }

    /// AVX-512 VNNI whole-batch driver for [`int8_fused_block_avx512`]:
    /// eight-row blocks plus a single-row remainder sweep.
    ///
    /// # Safety
    ///
    /// As [`int8_fused_avx2`], plus AVX-512F/AVX-512 VNNI support.
    #[target_feature(enable = "avx512f,avx512vnni")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn int8_fused_avx512(
        q: *const i16,
        q_stride: usize,
        kpairs: usize,
        rows: usize,
        wp: *const i16,
        panel_count: usize,
        fan_out: usize,
        dequant: *const f32,
        bias: *const f32,
        out: *mut f32,
        out_stride: usize,
        relu: bool,
    ) {
        // SAFETY: each block call covers rows `r..r+IB` within the
        // caller-guaranteed `rows`.
        unsafe {
            let mut r = 0;
            while r + 8 <= rows {
                int8_fused_block_avx512::<8>(
                    q.add(r * q_stride),
                    q_stride,
                    kpairs,
                    wp,
                    panel_count,
                    fan_out,
                    dequant,
                    bias,
                    out.add(r * out_stride),
                    out_stride,
                    relu,
                );
                r += 8;
            }
            while r < rows {
                int8_fused_block_avx512::<1>(
                    q.add(r * q_stride),
                    q_stride,
                    kpairs,
                    wp,
                    panel_count,
                    fan_out,
                    dequant,
                    bias,
                    out.add(r * out_stride),
                    out_stride,
                    relu,
                );
                r += 1;
            }
        }
    }

    /// AVX-512 VNNI quantizing fused block: the 512-bit GEMM core and
    /// dequant/bias/activation epilogue of [`int8_fused_block_avx512`],
    /// followed in registers by the exact per-lane operation sequence of
    /// [`crate::quant::quantize_activation`] (multiply by the reciprocal
    /// scale, round half away from zero via `± 0.5` + truncation, clamp to
    /// `[-127, 127]` with x86 min/max semantics) and a truncating
    /// `vpmovdw` i32→i16 store — truncation equals saturation here
    /// because the clamp already bounded every lane, so the stored i16s
    /// are bit-identical to the 256-bit families'. Ragged remainders are
    /// delegated to [`int8_fused_quant_block_avx2`] like the plain fused
    /// block.
    ///
    /// # Safety
    ///
    /// As [`int8_fused_quant_block_avx2`], plus AVX-512F/AVX-512 VNNI
    /// support.
    #[target_feature(enable = "avx512f,avx512vnni")]
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn int8_fused_quant_block_avx512<const IB: usize>(
        q: *const i16,
        q_stride: usize,
        kpairs: usize,
        wp: *const i16,
        panel_count: usize,
        fan_out: usize,
        dequant: *const f32,
        bias: *const f32,
        relu: bool,
        inv_next: f32,
        q_out: *mut i16,
        q_out_stride: usize,
    ) {
        // SAFETY: the pair loop only touches columns `p*8..p*8+16` while
        // they are all live, so the 32-byte i16 stores stay below
        // `r * q_out_stride + fan_out`; the tail delegation re-bases by
        // whole panels exactly as in `int8_fused_block_avx512`. Bitwise
        // f32 ops go through `si512` casts (plain AVX-512F, no DQ
        // requirement).
        unsafe {
            let zero = _mm512_setzero_ps();
            let inv = _mm512_set1_ps(inv_next);
            let half = _mm512_castps_si512(_mm512_set1_ps(0.5));
            let signbit = _mm512_set1_epi32(i32::MIN);
            let chi = _mm512_set1_ps(127.0);
            let clo = _mm512_set1_ps(-127.0);
            let mut p = 0;
            while p + 2 <= panel_count && fan_out >= p * 8 + 16 {
                let sums =
                    int8_panel_pair_sums_avx512::<IB>(q, q_stride, kpairs, wp.add(p * kpairs * 16));
                let j0 = p * 8;
                let d = _mm512_loadu_ps(dequant.add(j0));
                let b = _mm512_loadu_ps(bias.add(j0));
                for (r, &sum) in sums.iter().enumerate() {
                    let v = _mm512_cvtepi32_ps(sum);
                    let v = _mm512_add_ps(_mm512_mul_ps(v, d), b);
                    let v = if relu { _mm512_max_ps(v, zero) } else { v };
                    let y = _mm512_mul_ps(v, inv);
                    let ybits = _mm512_castps_si512(y);
                    let rh = _mm512_or_si512(half, _mm512_and_si512(ybits, signbit));
                    let t = _mm512_add_ps(y, _mm512_castsi512_ps(rh));
                    let t = _mm512_max_ps(_mm512_min_ps(t, chi), clo);
                    let qi = _mm512_cvttps_epi32(t);
                    let packed = _mm512_cvtepi32_epi16(qi);
                    _mm256_storeu_si256(q_out.add(r * q_out_stride + j0) as *mut __m256i, packed);
                }
                p += 2;
            }
            if p < panel_count {
                int8_fused_quant_block_avx2::<IB>(
                    q,
                    q_stride,
                    kpairs,
                    wp.add(p * kpairs * 16),
                    panel_count - p,
                    fan_out - p * 8,
                    dequant.add(p * 8),
                    bias.add(p * 8),
                    relu,
                    inv_next,
                    q_out.add(p * 8),
                    q_out_stride,
                );
            }
        }
    }

    /// AVX-512 VNNI whole-batch driver for
    /// [`int8_fused_quant_block_avx512`].
    ///
    /// # Safety
    ///
    /// As [`int8_fused_quant_avx2`], plus AVX-512F/AVX-512 VNNI support.
    #[target_feature(enable = "avx512f,avx512vnni")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn int8_fused_quant_avx512(
        q: *const i16,
        q_stride: usize,
        kpairs: usize,
        rows: usize,
        wp: *const i16,
        panel_count: usize,
        fan_out: usize,
        dequant: *const f32,
        bias: *const f32,
        relu: bool,
        inv_next: f32,
        q_out: *mut i16,
        q_out_stride: usize,
    ) {
        // SAFETY: each block call covers rows `r..r+IB` within the
        // caller-guaranteed `rows`.
        unsafe {
            let mut r = 0;
            while r + 8 <= rows {
                int8_fused_quant_block_avx512::<8>(
                    q.add(r * q_stride),
                    q_stride,
                    kpairs,
                    wp,
                    panel_count,
                    fan_out,
                    dequant,
                    bias,
                    relu,
                    inv_next,
                    q_out.add(r * q_out_stride),
                    q_out_stride,
                );
                r += 8;
            }
            while r < rows {
                int8_fused_quant_block_avx512::<1>(
                    q.add(r * q_stride),
                    q_stride,
                    kpairs,
                    wp,
                    panel_count,
                    fan_out,
                    dequant,
                    bias,
                    relu,
                    inv_next,
                    q_out.add(r * q_out_stride),
                    q_out_stride,
                );
                r += 1;
            }
        }
    }

    /// SSE2 variant of [`int8_panel_sums_avx2`]: the panel's accumulators
    /// as two four-lane halves.
    ///
    /// # Safety
    ///
    /// As [`int8_panel_sums_avx2`].
    #[inline]
    unsafe fn int8_panel_sums_sse2<const IB: usize>(
        q: *const i16,
        q_stride: usize,
        kpairs: usize,
        wpp: *const i16,
    ) -> ([__m128i; IB], [__m128i; IB]) {
        // SAFETY: accesses are exactly the caller-guaranteed ranges
        // above; all instructions are SSE2 (x86_64 baseline).
        unsafe {
            let mut lo = [_mm_setzero_si128(); IB];
            let mut hi = [_mm_setzero_si128(); IB];
            for kk in 0..kpairs {
                let w0 = _mm_loadu_si128(wpp.add(kk * 16) as *const __m128i);
                let w1 = _mm_loadu_si128(wpp.add(kk * 16 + 8) as *const __m128i);
                for r in 0..IB {
                    let pair = (q.add(r * q_stride + 2 * kk) as *const i32).read_unaligned();
                    let a = _mm_set1_epi32(pair);
                    lo[r] = _mm_add_epi32(lo[r], _mm_madd_epi16(a, w0));
                    hi[r] = _mm_add_epi32(hi[r], _mm_madd_epi16(a, w1));
                }
            }
            (lo, hi)
        }
    }

    /// SSE2 variant of [`int8_fused_block_avx2`]: two four-lane halves
    /// per panel.
    ///
    /// # Safety
    ///
    /// As [`int8_fused_block_avx2`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn int8_fused_block_sse2<const IB: usize>(
        q: *const i16,
        q_stride: usize,
        kpairs: usize,
        wp: *const i16,
        panel_count: usize,
        fan_out: usize,
        dequant: *const f32,
        bias: *const f32,
        out: *mut f32,
        out_stride: usize,
        relu: bool,
    ) {
        // SAFETY: same access ranges as `int8_fused_block_avx2` in
        // 128-bit halves; all instructions are SSE2 (x86_64 baseline).
        unsafe {
            let zero = _mm_setzero_ps();
            for p in 0..panel_count {
                let wpp = wp.add(p * kpairs * 16);
                let (lo, hi) = int8_panel_sums_sse2::<IB>(q, q_stride, kpairs, wpp);
                let j0 = p * 8;
                if fan_out - j0 >= 8 {
                    let d0 = _mm_loadu_ps(dequant.add(j0));
                    let d1 = _mm_loadu_ps(dequant.add(j0 + 4));
                    let b0 = _mm_loadu_ps(bias.add(j0));
                    let b1 = _mm_loadu_ps(bias.add(j0 + 4));
                    for r in 0..IB {
                        let v0 = _mm_add_ps(_mm_mul_ps(_mm_cvtepi32_ps(lo[r]), d0), b0);
                        let v1 = _mm_add_ps(_mm_mul_ps(_mm_cvtepi32_ps(hi[r]), d1), b1);
                        let (v0, v1) = if relu {
                            (_mm_max_ps(v0, zero), _mm_max_ps(v1, zero))
                        } else {
                            (v0, v1)
                        };
                        _mm_storeu_ps(out.add(r * out_stride + j0), v0);
                        _mm_storeu_ps(out.add(r * out_stride + j0 + 4), v1);
                    }
                } else {
                    let live = fan_out - j0;
                    let mut buf = [0i32; 8];
                    for r in 0..IB {
                        _mm_storeu_si128(buf.as_mut_ptr() as *mut __m128i, lo[r]);
                        _mm_storeu_si128(buf.as_mut_ptr().add(4) as *mut __m128i, hi[r]);
                        for (jj, &sum) in buf.iter().enumerate().take(live) {
                            let v = sum as f32 * *dequant.add(j0 + jj) + *bias.add(j0 + jj);
                            *out.add(r * out_stride + j0 + jj) =
                                if relu { crate::quant::relu_exact(v) } else { v };
                        }
                    }
                }
            }
        }
    }

    /// SSE2 variant of [`int8_fused_avx2`].
    ///
    /// # Safety
    ///
    /// As [`int8_fused_avx2`].
    #[allow(clippy::too_many_arguments)]
    unsafe fn int8_fused_sse2(
        q: *const i16,
        q_stride: usize,
        kpairs: usize,
        rows: usize,
        wp: *const i16,
        panel_count: usize,
        fan_out: usize,
        dequant: *const f32,
        bias: *const f32,
        out: *mut f32,
        out_stride: usize,
        relu: bool,
    ) {
        // SAFETY: identical blocking to `int8_fused_avx2`.
        unsafe {
            let mut r = 0;
            while r + 8 <= rows {
                int8_fused_block_sse2::<8>(
                    q.add(r * q_stride),
                    q_stride,
                    kpairs,
                    wp,
                    panel_count,
                    fan_out,
                    dequant,
                    bias,
                    out.add(r * out_stride),
                    out_stride,
                    relu,
                );
                r += 8;
            }
            while r < rows {
                int8_fused_block_sse2::<1>(
                    q.add(r * q_stride),
                    q_stride,
                    kpairs,
                    wp,
                    panel_count,
                    fan_out,
                    dequant,
                    bias,
                    out.add(r * out_stride),
                    out_stride,
                    relu,
                );
                r += 1;
            }
        }
    }

    /// Safe wrapper over the fused int8 forward kernels: the whole
    /// batched layer (GEMM + dequant + bias + optional ReLU) in one call.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn int8_fused(
        avx2: bool,
        q: &[i16],
        q_stride: usize,
        kpairs: usize,
        rows: usize,
        wp: &[i16],
        panel_count: usize,
        fan_out: usize,
        dequant: &[f32],
        bias: &[f32],
        out: &mut [f32],
        out_stride: usize,
        relu: bool,
    ) {
        if rows == 0 || panel_count == 0 {
            return;
        }
        debug_assert_eq!(panel_count, fan_out.div_ceil(8));
        debug_assert!(q.len() >= rows * q_stride);
        debug_assert!(wp.len() >= panel_count * kpairs * 16);
        debug_assert!(dequant.len() >= fan_out && bias.len() >= fan_out);
        debug_assert!(out.len() >= (rows - 1) * out_stride + fan_out);
        debug_assert!(!avx2 || std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: the slice lengths debug-asserted above are exactly the
        // kernels' documented obligations; AVX2 support is the caller's
        // contract (debug-asserted) and the VNNI families are only entered
        // after `vnni512()` / `vnni()` probe the CPU itself.
        unsafe {
            if avx2 && vnni512() {
                int8_fused_avx512(
                    q.as_ptr(),
                    q_stride,
                    kpairs,
                    rows,
                    wp.as_ptr(),
                    panel_count,
                    fan_out,
                    dequant.as_ptr(),
                    bias.as_ptr(),
                    out.as_mut_ptr(),
                    out_stride,
                    relu,
                );
            } else if avx2 && vnni() {
                int8_fused_vnni(
                    q.as_ptr(),
                    q_stride,
                    kpairs,
                    rows,
                    wp.as_ptr(),
                    panel_count,
                    fan_out,
                    dequant.as_ptr(),
                    bias.as_ptr(),
                    out.as_mut_ptr(),
                    out_stride,
                    relu,
                );
            } else if avx2 {
                int8_fused_avx2(
                    q.as_ptr(),
                    q_stride,
                    kpairs,
                    rows,
                    wp.as_ptr(),
                    panel_count,
                    fan_out,
                    dequant.as_ptr(),
                    bias.as_ptr(),
                    out.as_mut_ptr(),
                    out_stride,
                    relu,
                );
            } else {
                int8_fused_sse2(
                    q.as_ptr(),
                    q_stride,
                    kpairs,
                    rows,
                    wp.as_ptr(),
                    panel_count,
                    fan_out,
                    dequant.as_ptr(),
                    bias.as_ptr(),
                    out.as_mut_ptr(),
                    out_stride,
                    relu,
                );
            }
        }
    }

    /// AVX2 rank-1 update row: `out[..cols] += a * b[..cols]` with an
    /// 8-lane body and scalar tail — ascending-`j` element order is
    /// irrelevant here (each element is one mul + one add), what matters
    /// is that each `out[j]` sees the identical single operation the
    /// scalar kernel applies.
    ///
    /// # Safety
    ///
    /// `b` and `out` must each hold `cols` readable/writable floats.
    #[target_feature(enable = "avx2")]
    unsafe fn axpy_row_avx2(a: f32, b: *const f32, out: *mut f32, cols: usize) {
        // SAFETY: vector ops cover j..j+8 only while j + 8 <= cols; the
        // scalar tail covers the rest — all inside the caller-guaranteed
        // `cols` floats of both pointers.
        unsafe {
            let av = _mm256_set1_ps(a);
            let mut j = 0;
            while j + 8 <= cols {
                let o = _mm256_loadu_ps(out.add(j));
                let bv = _mm256_loadu_ps(b.add(j));
                _mm256_storeu_ps(out.add(j), _mm256_add_ps(o, _mm256_mul_ps(av, bv)));
                j += 8;
            }
            while j < cols {
                *out.add(j) += a * *b.add(j);
                j += 1;
            }
        }
    }

    /// SSE2 variant of [`axpy_row_avx2`].
    ///
    /// # Safety
    ///
    /// As [`axpy_row_avx2`].
    unsafe fn axpy_row_sse2(a: f32, b: *const f32, out: *mut f32, cols: usize) {
        // SAFETY: same bounds argument as `axpy_row_avx2` with four-lane
        // steps.
        unsafe {
            let av = _mm_set1_ps(a);
            let mut j = 0;
            while j + 4 <= cols {
                let o = _mm_loadu_ps(out.add(j));
                let bv = _mm_loadu_ps(b.add(j));
                _mm_storeu_ps(out.add(j), _mm_add_ps(o, _mm_mul_ps(av, bv)));
                j += 4;
            }
            while j < cols {
                *out.add(j) += a * *b.add(j);
                j += 1;
            }
        }
    }

    /// Safe wrapper: `out += a * b`, element-wise over equal-length rows.
    pub(crate) fn axpy_row(avx2: bool, a: f32, b: &[f32], out: &mut [f32]) {
        debug_assert_eq!(b.len(), out.len());
        debug_assert!(!avx2 || std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: both pointers carry exactly `out.len()` elements, the
        // kernels' documented obligation; AVX2 support is debug-asserted.
        unsafe {
            if avx2 {
                axpy_row_avx2(a, b.as_ptr(), out.as_mut_ptr(), out.len());
            } else {
                axpy_row_sse2(a, b.as_ptr(), out.as_mut_ptr(), out.len());
            }
        }
    }

    /// SSE2 variant of [`int8_fused_quant_block_avx2`].
    ///
    /// # Safety
    ///
    /// As [`int8_fused_quant_block_avx2`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn int8_fused_quant_block_sse2<const IB: usize>(
        q: *const i16,
        q_stride: usize,
        kpairs: usize,
        wp: *const i16,
        panel_count: usize,
        fan_out: usize,
        dequant: *const f32,
        bias: *const f32,
        relu: bool,
        inv_next: f32,
        q_out: *mut i16,
        q_out_stride: usize,
    ) {
        // SAFETY: same access ranges as `int8_fused_quant_block_avx2` in
        // 128-bit halves; all instructions are SSE2 (x86_64 baseline).
        unsafe {
            let zero = _mm_setzero_ps();
            let inv = _mm_set1_ps(inv_next);
            let half = _mm_set1_ps(0.5);
            let sign = _mm_set1_ps(-0.0);
            let chi = _mm_set1_ps(127.0);
            let clo = _mm_set1_ps(-127.0);
            for p in 0..panel_count {
                let wpp = wp.add(p * kpairs * 16);
                let (lo, hi) = int8_panel_sums_sse2::<IB>(q, q_stride, kpairs, wpp);
                let j0 = p * 8;
                if fan_out - j0 >= 8 {
                    let d0 = _mm_loadu_ps(dequant.add(j0));
                    let d1 = _mm_loadu_ps(dequant.add(j0 + 4));
                    let b0 = _mm_loadu_ps(bias.add(j0));
                    let b1 = _mm_loadu_ps(bias.add(j0 + 4));
                    for r in 0..IB {
                        let v0 = _mm_add_ps(_mm_mul_ps(_mm_cvtepi32_ps(lo[r]), d0), b0);
                        let v1 = _mm_add_ps(_mm_mul_ps(_mm_cvtepi32_ps(hi[r]), d1), b1);
                        let (v0, v1) = if relu {
                            (_mm_max_ps(v0, zero), _mm_max_ps(v1, zero))
                        } else {
                            (v0, v1)
                        };
                        let y0 = _mm_mul_ps(v0, inv);
                        let y1 = _mm_mul_ps(v1, inv);
                        let t0 = _mm_add_ps(y0, _mm_or_ps(half, _mm_and_ps(y0, sign)));
                        let t1 = _mm_add_ps(y1, _mm_or_ps(half, _mm_and_ps(y1, sign)));
                        let t0 = _mm_max_ps(_mm_min_ps(t0, chi), clo);
                        let t1 = _mm_max_ps(_mm_min_ps(t1, chi), clo);
                        let packed = _mm_packs_epi32(_mm_cvttps_epi32(t0), _mm_cvttps_epi32(t1));
                        _mm_storeu_si128(q_out.add(r * q_out_stride + j0) as *mut __m128i, packed);
                    }
                } else {
                    let live = fan_out - j0;
                    let mut buf = [0i32; 8];
                    for r in 0..IB {
                        _mm_storeu_si128(buf.as_mut_ptr() as *mut __m128i, lo[r]);
                        _mm_storeu_si128(buf.as_mut_ptr().add(4) as *mut __m128i, hi[r]);
                        for (jj, &sum) in buf.iter().enumerate().take(live) {
                            let v = sum as f32 * *dequant.add(j0 + jj) + *bias.add(j0 + jj);
                            let v = if relu { crate::quant::relu_exact(v) } else { v };
                            *q_out.add(r * q_out_stride + j0 + jj) =
                                crate::quant::quantize_activation(v, inv_next);
                        }
                    }
                }
            }
        }
    }

    /// SSE2 whole-batch driver for [`int8_fused_quant_block_sse2`].
    ///
    /// # Safety
    ///
    /// As [`int8_fused_quant_avx2`].
    #[allow(clippy::too_many_arguments)]
    unsafe fn int8_fused_quant_sse2(
        q: *const i16,
        q_stride: usize,
        kpairs: usize,
        rows: usize,
        wp: *const i16,
        panel_count: usize,
        fan_out: usize,
        dequant: *const f32,
        bias: *const f32,
        relu: bool,
        inv_next: f32,
        q_out: *mut i16,
        q_out_stride: usize,
    ) {
        // SAFETY: identical blocking to `int8_fused_quant_avx2`.
        unsafe {
            let mut r = 0;
            while r + 8 <= rows {
                int8_fused_quant_block_sse2::<8>(
                    q.add(r * q_stride),
                    q_stride,
                    kpairs,
                    wp,
                    panel_count,
                    fan_out,
                    dequant,
                    bias,
                    relu,
                    inv_next,
                    q_out.add(r * q_out_stride),
                    q_out_stride,
                );
                r += 8;
            }
            while r < rows {
                int8_fused_quant_block_sse2::<1>(
                    q.add(r * q_stride),
                    q_stride,
                    kpairs,
                    wp,
                    panel_count,
                    fan_out,
                    dequant,
                    bias,
                    relu,
                    inv_next,
                    q_out.add(r * q_out_stride),
                    q_out_stride,
                );
                r += 1;
            }
        }
    }

    /// Safe wrapper over the quantizing fused int8 kernels: one hidden
    /// layer (GEMM + dequant + bias + activation + next-layer
    /// quantization) for the whole batch in one call, i16 in → i16 out.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn int8_fused_quant(
        avx2: bool,
        q: &[i16],
        q_stride: usize,
        kpairs: usize,
        rows: usize,
        wp: &[i16],
        panel_count: usize,
        fan_out: usize,
        dequant: &[f32],
        bias: &[f32],
        relu: bool,
        inv_next: f32,
        q_out: &mut [i16],
        q_out_stride: usize,
    ) {
        if rows == 0 || panel_count == 0 {
            return;
        }
        debug_assert_eq!(panel_count, fan_out.div_ceil(8));
        debug_assert!(q.len() >= rows * q_stride);
        debug_assert!(wp.len() >= panel_count * kpairs * 16);
        debug_assert!(dequant.len() >= fan_out && bias.len() >= fan_out);
        debug_assert!(q_out.len() >= (rows - 1) * q_out_stride + fan_out);
        debug_assert!(!avx2 || std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: the slice lengths debug-asserted above are exactly the
        // kernels' documented obligations; AVX2 support is the caller's
        // contract (debug-asserted) and the VNNI families are only entered
        // after `vnni512()` / `vnni()` probe the CPU itself.
        unsafe {
            if avx2 && vnni512() {
                int8_fused_quant_avx512(
                    q.as_ptr(),
                    q_stride,
                    kpairs,
                    rows,
                    wp.as_ptr(),
                    panel_count,
                    fan_out,
                    dequant.as_ptr(),
                    bias.as_ptr(),
                    relu,
                    inv_next,
                    q_out.as_mut_ptr(),
                    q_out_stride,
                );
            } else if avx2 && vnni() {
                int8_fused_quant_vnni(
                    q.as_ptr(),
                    q_stride,
                    kpairs,
                    rows,
                    wp.as_ptr(),
                    panel_count,
                    fan_out,
                    dequant.as_ptr(),
                    bias.as_ptr(),
                    relu,
                    inv_next,
                    q_out.as_mut_ptr(),
                    q_out_stride,
                );
            } else if avx2 {
                int8_fused_quant_avx2(
                    q.as_ptr(),
                    q_stride,
                    kpairs,
                    rows,
                    wp.as_ptr(),
                    panel_count,
                    fan_out,
                    dequant.as_ptr(),
                    bias.as_ptr(),
                    relu,
                    inv_next,
                    q_out.as_mut_ptr(),
                    q_out_stride,
                );
            } else {
                int8_fused_quant_sse2(
                    q.as_ptr(),
                    q_stride,
                    kpairs,
                    rows,
                    wp.as_ptr(),
                    panel_count,
                    fan_out,
                    dequant.as_ptr(),
                    bias.as_ptr(),
                    relu,
                    inv_next,
                    q_out.as_mut_ptr(),
                    q_out_stride,
                );
            }
        }
    }

    /// AVX2 activation quantization, 16 values per step: every lane runs
    /// exactly the operation sequence of
    /// [`crate::quant::quantize_activation`] (multiply, round half away
    /// from zero via `± 0.5` + truncation, `min`/`max` clamp with x86
    /// NaN-propagates-second-operand semantics, saturating i16 pack of
    /// values already inside `[-127, 127]`), so vector and scalar
    /// quantization are bit-identical per element.
    ///
    /// # Safety
    ///
    /// `x` must hold `n` readable floats and `q` `n` writable i16; the
    /// vector body only touches `j..j+16` while `j + 16 <= n`.
    #[target_feature(enable = "avx2")]
    unsafe fn quantize_row_avx2(x: *const f32, inv_scale: f32, q: *mut i16, n: usize) -> usize {
        // SAFETY: loads stop at `j + 16 <= n`, stores mirror them; both
        // inside the caller-guaranteed ranges.
        unsafe {
            let inv = _mm256_set1_ps(inv_scale);
            let half = _mm256_set1_ps(0.5);
            let sign = _mm256_set1_ps(-0.0);
            let hi = _mm256_set1_ps(127.0);
            let lo = _mm256_set1_ps(-127.0);
            let mut j = 0;
            while j + 16 <= n {
                let y0 = _mm256_mul_ps(_mm256_loadu_ps(x.add(j)), inv);
                let y1 = _mm256_mul_ps(_mm256_loadu_ps(x.add(j + 8)), inv);
                let t0 = _mm256_add_ps(y0, _mm256_or_ps(half, _mm256_and_ps(y0, sign)));
                let t1 = _mm256_add_ps(y1, _mm256_or_ps(half, _mm256_and_ps(y1, sign)));
                let t0 = _mm256_max_ps(_mm256_min_ps(t0, hi), lo);
                let t1 = _mm256_max_ps(_mm256_min_ps(t1, hi), lo);
                let i0 = _mm256_cvttps_epi32(t0);
                let i1 = _mm256_cvttps_epi32(t1);
                // packs interleaves the two sources per 128-bit lane;
                // permuting the 64-bit quarters restores element order.
                let packed = _mm256_packs_epi32(i0, i1);
                let ordered = _mm256_permute4x64_epi64(packed, 0b1101_1000);
                _mm256_storeu_si256(q.add(j) as *mut __m256i, ordered);
                j += 16;
            }
            j
        }
    }

    /// SSE2 activation quantization, 8 (then 4) values per step — same
    /// per-lane operation sequence as [`quantize_row_avx2`].
    ///
    /// # Safety
    ///
    /// As [`quantize_row_avx2`]; the vector bodies only touch `j..j+8`
    /// (or `j..j+4`) while they fit in `n`.
    unsafe fn quantize_row_sse2(x: *const f32, inv_scale: f32, q: *mut i16, n: usize) -> usize {
        // SAFETY: loads/stores bounded by the `j + 8 <= n` / `j + 4 <= n`
        // guards, inside the caller-guaranteed ranges.
        unsafe {
            let inv = _mm_set1_ps(inv_scale);
            let half = _mm_set1_ps(0.5);
            let sign = _mm_set1_ps(-0.0);
            let hi = _mm_set1_ps(127.0);
            let lo = _mm_set1_ps(-127.0);
            let quant4 = |ptr: *const f32| {
                let y = _mm_mul_ps(_mm_loadu_ps(ptr), inv);
                let t = _mm_add_ps(y, _mm_or_ps(half, _mm_and_ps(y, sign)));
                _mm_cvttps_epi32(_mm_max_ps(_mm_min_ps(t, hi), lo))
            };
            let mut j = 0;
            while j + 8 <= n {
                let i0 = quant4(x.add(j));
                let i1 = quant4(x.add(j + 4));
                _mm_storeu_si128(q.add(j) as *mut __m128i, _mm_packs_epi32(i0, i1));
                j += 8;
            }
            if j + 4 <= n {
                let i0 = quant4(x.add(j));
                // Pack against itself and store the low 4 i16.
                _mm_storel_epi64(q.add(j) as *mut __m128i, _mm_packs_epi32(i0, i0));
                j += 4;
            }
            j
        }
    }

    /// Safe wrapper: quantizes `x` into `q` (equal lengths) on the SIMD
    /// path, finishing the tail with the shared scalar helper — every
    /// element is bit-identical to a pure-scalar quantization.
    pub(crate) fn quantize_row(avx2: bool, x: &[f32], inv_scale: f32, q: &mut [i16]) {
        debug_assert_eq!(x.len(), q.len());
        debug_assert!(!avx2 || std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: both pointers carry exactly `x.len()` elements and the
        // kernels only touch indices below it; AVX2 is debug-asserted.
        let done = unsafe {
            if avx2 {
                quantize_row_avx2(x.as_ptr(), inv_scale, q.as_mut_ptr(), x.len())
            } else {
                quantize_row_sse2(x.as_ptr(), inv_scale, q.as_mut_ptr(), x.len())
            }
        };
        for (qv, &xv) in q[done..].iter_mut().zip(&x[done..]) {
            *qv = crate::quant::quantize_activation(xv, inv_scale);
        }
    }

    /// AVX2 dequantize + bias + optional ReLU epilogue over a whole row
    /// block: `out[r][j] = relu?(acc[r][j] as f32 * dequant[j] + bias[j])`
    /// for `rows` rows (the row loop lives inside the kernel so the call
    /// overhead amortizes across the block). The i32 → f32 conversion is
    /// exact for the accumulator range the depth limit guarantees
    /// (`|acc| < 2²⁴`), multiply/add are plain IEEE ops, and `max(v, 0.0)`
    /// matches the scalar tail's `if v > 0.0 { v } else { 0.0 }` for every
    /// input including NaN and `-0.0` — so vector and scalar epilogues are
    /// bit-identical. Returns the column count handled per row (the same
    /// for every row); the wrapper finishes the scalar tails.
    ///
    /// # Safety
    ///
    /// `dequant` and `bias` must hold `n` readable elements, `acc`
    /// `(rows - 1) * acc_stride + n` readable i32, `out`
    /// `(rows - 1) * out_stride + n` writable floats; vector bodies only
    /// touch `j..j+8` while `j + 8 <= n`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn dequant_epilogue_avx2(
        acc: *const i32,
        acc_stride: usize,
        dequant: *const f32,
        bias: *const f32,
        out: *mut f32,
        out_stride: usize,
        rows: usize,
        n: usize,
        relu: bool,
    ) -> usize {
        // SAFETY: all accesses bounded by `j + 8 <= n` and `r < rows`,
        // inside the caller-guaranteed ranges.
        unsafe {
            let zero = _mm256_setzero_ps();
            let mut j = 0;
            while j + 8 <= n {
                let d = _mm256_loadu_ps(dequant.add(j));
                let b = _mm256_loadu_ps(bias.add(j));
                for r in 0..rows {
                    let v = _mm256_cvtepi32_ps(_mm256_loadu_si256(
                        acc.add(r * acc_stride + j) as *const __m256i
                    ));
                    let v = _mm256_add_ps(_mm256_mul_ps(v, d), b);
                    let v = if relu { _mm256_max_ps(v, zero) } else { v };
                    _mm256_storeu_ps(out.add(r * out_stride + j), v);
                }
                j += 8;
            }
            j
        }
    }

    /// SSE2 variant of [`dequant_epilogue_avx2`], four lanes per step.
    ///
    /// # Safety
    ///
    /// As [`dequant_epilogue_avx2`] with `j + 4 <= n`.
    #[allow(clippy::too_many_arguments)]
    unsafe fn dequant_epilogue_sse2(
        acc: *const i32,
        acc_stride: usize,
        dequant: *const f32,
        bias: *const f32,
        out: *mut f32,
        out_stride: usize,
        rows: usize,
        n: usize,
        relu: bool,
    ) -> usize {
        // SAFETY: all accesses bounded by `j + 4 <= n` and `r < rows`,
        // inside the caller-guaranteed ranges.
        unsafe {
            let zero = _mm_setzero_ps();
            let mut j = 0;
            while j + 4 <= n {
                let d = _mm_loadu_ps(dequant.add(j));
                let b = _mm_loadu_ps(bias.add(j));
                for r in 0..rows {
                    let v = _mm_cvtepi32_ps(_mm_loadu_si128(
                        acc.add(r * acc_stride + j) as *const __m128i
                    ));
                    let v = _mm_add_ps(_mm_mul_ps(v, d), b);
                    let v = if relu { _mm_max_ps(v, zero) } else { v };
                    _mm_storeu_ps(out.add(r * out_stride + j), v);
                }
                j += 4;
            }
            j
        }
    }

    /// Safe wrapper: a row block's dequantize + bias (+ ReLU) epilogue on
    /// the SIMD path, scalar tails with the identical operation sequence
    /// (see [`dequant_epilogue_avx2`] for the bit-identity argument).
    /// `n` columns per row, `rows` rows.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn dequant_epilogue_block(
        avx2: bool,
        acc: &[i32],
        acc_stride: usize,
        dequant: &[f32],
        bias: &[f32],
        out: &mut [f32],
        out_stride: usize,
        rows: usize,
        n: usize,
        relu: bool,
    ) {
        debug_assert!(rows > 0 && dequant.len() >= n && bias.len() >= n);
        debug_assert!(acc.len() >= (rows - 1) * acc_stride + n);
        debug_assert!(out.len() >= (rows - 1) * out_stride + n);
        debug_assert!(!avx2 || std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: the debug-asserted lengths are the kernels' documented
        // obligations; AVX2 support is debug-asserted.
        let done = unsafe {
            if avx2 {
                dequant_epilogue_avx2(
                    acc.as_ptr(),
                    acc_stride,
                    dequant.as_ptr(),
                    bias.as_ptr(),
                    out.as_mut_ptr(),
                    out_stride,
                    rows,
                    n,
                    relu,
                )
            } else {
                dequant_epilogue_sse2(
                    acc.as_ptr(),
                    acc_stride,
                    dequant.as_ptr(),
                    bias.as_ptr(),
                    out.as_mut_ptr(),
                    out_stride,
                    rows,
                    n,
                    relu,
                )
            }
        };
        for r in 0..rows {
            for j in done..n {
                let v = acc[r * acc_stride + j] as f32 * dequant[j] + bias[j];
                out[r * out_stride + j] = if relu { crate::quant::relu_exact(v) } else { v };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for p in [KernelPath::Scalar, KernelPath::Sse2, KernelPath::Avx2] {
            assert_eq!(p.as_str().parse::<KernelPath>().unwrap(), p);
        }
        assert!("neon".parse::<KernelPath>().is_err());
        assert_eq!("  AVX2 ".parse::<KernelPath>().unwrap(), KernelPath::Avx2);
    }

    #[test]
    fn force_clamps_to_detected_capability() {
        let detected = detect();
        force(Some(KernelPath::Avx2));
        assert!(active() <= detected);
        force(Some(KernelPath::Scalar));
        assert_eq!(active(), KernelPath::Scalar);
        force(None);
        assert!(active() <= detected);
        force(None);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn x86_detection_is_at_least_sse2() {
        assert!(detect() >= KernelPath::Sse2);
    }
}
