//! Int8 quantized inference: symmetric per-output-channel weight
//! quantization, per-layer activation scales, and an i32-accumulate GEMM
//! with a fused dequantize + bias + activation epilogue.
//!
//! # Scheme
//!
//! - **Weights** are quantized per output channel: column `j` stores
//!   `q_w = round(w / s_w[j])` clamped to `[-127, 127]` with
//!   `s_w[j] = max_k |w[k][j]| / 127`, so every column uses the full int8
//!   range regardless of the other columns' magnitudes.
//! - **Activations** use one symmetric scale per layer,
//!   `s_in = max|x| / 127`, calibrated offline by running the f32 network
//!   over representative data ([`CalibrationStats`]) — the serving stack
//!   calibrates from the lab dataset plus the harvest reservoir.
//! - **Accumulation** is exact `i32` arithmetic
//!   (`acc = Σ q_x[k] · q_w[k][j]`), so — unlike the f32 kernels, whose
//!   bit-exactness rests on a strict accumulation order — every kernel
//!   path (scalar, SSE2, AVX2 via `madd`) produces the identical
//!   accumulator by associativity. The epilogue
//!   `act(acc · s_in · s_w[j] + bias[j])` is shared scalar code, so the
//!   whole layer output is bit-identical across paths.
//!
//! # Error contract
//!
//! The int8 path is *not* bit-identical to f32 — it carries an analytic
//! per-layer error bound instead ([`QuantizedMlp::layer_error_bound`]),
//! property-tested in `tests/proptest_nn.rs`: for inputs within the
//! calibrated range, each pre-activation differs from the f32 reference by
//! at most `fan_in · (X·s_w/2 + W·s_in/2 + s_in·s_w/4)` (X = largest
//! input magnitude, W = largest weight magnitude in the column) plus float
//! rounding slop, and every activation used here is 1-Lipschitz. Whether
//! that error is *acceptable* is decided end-to-end by the scenario gate,
//! not here.
//!
//! # Weight layout
//!
//! [`QuantizedPackedWeights`] stores eight-column panels with the depth
//! dimension interleaved in k-pairs:
//! `data[panel·kpairs·16 + kk·16 + j·2 + d]` holds the weight of depth
//! `2·kk + d`, column `panel·8 + j` (zero-padded past the true shape).
//! One 16-lane i16 vector load then feeds `madd` with a broadcast
//! activation pair — the layout exists for that instruction, and the
//! scalar path walks the same buffer so there is exactly one packed
//! representation.

use crate::activation::Activation;
use crate::kernel::{self, KernelPath};
use crate::matrix::Matrix;
use crate::mlp::Mlp;

/// Quantizes one activation against a precomputed reciprocal scale — the
/// scalar reference every SIMD quantize lane reproduces exactly
/// (`kernel::x86::quantize_row`), so quantized inputs — and therefore the
/// exact integer accumulators — never depend on the path.
///
/// Rounds half away from zero via truncation of `y + ±0.5` (the same
/// result as `f32::round`, but branchless and vectorizable instead of a
/// `roundf` libcall), then clamps with comparisons whose NaN behaviour
/// matches the x86 `min`/`max` instructions (NaN → second operand, here
/// the bound). Non-finite inputs therefore quantize to ±127
/// deterministically on every path.
#[inline]
pub(crate) fn quantize_activation(x: f32, inv_scale: f32) -> i16 {
    let y = x * inv_scale;
    let t = y + 0.5f32.copysign(y);
    let t = if t < 127.0 { t } else { 127.0 };
    let t = if t > -127.0 { t } else { -127.0 };
    t as i32 as i16
}

/// ReLU with the exact semantics of the x86 `max(v, 0.0)` instruction
/// (NaN and `-0.0` both map to `+0.0`) — the scalar reference for the
/// SIMD dequant epilogue's ReLU, so scalar and vector int8 epilogues are
/// bit-identical for every input.
#[inline]
pub(crate) fn relu_exact(v: f32) -> f32 {
    if v > 0.0 {
        v
    } else {
        0.0
    }
}

/// A GEMM right-hand side quantized to int8 (stored widened to `i16`) in
/// k-pair-interleaved eight-column panels, with one symmetric scale per
/// output channel. See the [module docs](self) for the layout.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedPackedWeights {
    fan_in: usize,
    fan_out: usize,
    /// `fan_in.div_ceil(2)` — depth steps per panel row (odd depths are
    /// zero-padded).
    kpairs: usize,
    /// `fan_out.div_ceil(8)` — eight-column panels (ragged columns are
    /// zero-padded).
    panel_count: usize,
    /// Interleaved panels, `panel_count * kpairs * 16` values.
    data: Vec<i16>,
    /// Per-output-channel dequantization scales (`fan_out` values).
    scales: Vec<f32>,
}

impl QuantizedPackedWeights {
    /// Quantizes a `fan_in × fan_out` f32 weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in > 8192` — far beyond any model in this
    /// workspace, and the margin that keeps the i32 accumulator provably
    /// overflow-free (`8192 · 127 · 127 < 2³¹`).
    pub fn quantize(weight: &Matrix) -> Self {
        let (fan_in, fan_out) = weight.shape();
        assert!(
            fan_in <= 8192,
            "quantized GEMM depth {fan_in} would risk i32 accumulator overflow"
        );
        let kpairs = fan_in.div_ceil(2);
        let panel_count = fan_out.div_ceil(8);
        let mut scales = Vec::with_capacity(fan_out);
        let mut data = vec![0i16; panel_count * kpairs.max(1) * 16];
        for j in 0..fan_out {
            let mut max_abs = 0.0f32;
            for k in 0..fan_in {
                max_abs = max_abs.max(weight[(k, j)].abs());
            }
            // An all-zero column quantizes to zeros under any scale; 1.0
            // keeps the dequant factor finite.
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            scales.push(scale);
            for k in 0..fan_in {
                let q = (weight[(k, j)] / scale).round().clamp(-127.0, 127.0) as i16;
                data[(j / 8) * kpairs * 16 + (k / 2) * 16 + (j % 8) * 2 + (k % 2)] = q;
            }
        }
        Self {
            fan_in,
            fan_out,
            kpairs,
            panel_count,
            data,
            scales,
        }
    }

    /// Fan-in of the quantized weight (GEMM depth).
    pub fn rows(&self) -> usize {
        self.fan_in
    }

    /// Fan-out of the quantized weight (GEMM output width).
    pub fn cols(&self) -> usize {
        self.fan_out
    }

    /// Per-output-channel symmetric weight scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Heap bytes of the quantized representation (weights + scales).
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<i16>()
            + self.scales.len() * std::mem::size_of::<f32>()
    }
}

/// Scalar reference int8 micro-kernel: `IB` rows × 8 columns of i32
/// accumulators over one panel, walking the identical interleaved buffer
/// the SIMD kernels load — integer sums are exact, so the result matches
/// them for any summation order.
fn scalar_int8_block<const IB: usize>(
    q: &[i16],
    q_stride: usize,
    kpairs: usize,
    wp: &[i16],
    acc: &mut [i32],
    acc_stride: usize,
) {
    for r in 0..IB {
        for jj in 0..8 {
            let mut sum = 0i32;
            for kk in 0..kpairs {
                let base = kk * 16 + jj * 2;
                sum += i32::from(q[r * q_stride + 2 * kk]) * i32::from(wp[base])
                    + i32::from(q[r * q_stride + 2 * kk + 1]) * i32::from(wp[base + 1]);
            }
            acc[r * acc_stride + jj] = sum;
        }
    }
}

/// Dispatches one `IB`-row × 8-column int8 accumulator block to the
/// active kernel path.
fn int8_block<const IB: usize>(
    path: KernelPath,
    q: &[i16],
    q_stride: usize,
    kpairs: usize,
    wp: &[i16],
    acc: &mut [i32],
    acc_stride: usize,
) {
    match path {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 | KernelPath::Avx2 => kernel::x86::int8_block::<IB>(
            path == KernelPath::Avx2,
            q,
            q_stride,
            kpairs,
            wp,
            acc,
            acc_stride,
        ),
        _ => scalar_int8_block::<IB>(q, q_stride, kpairs, wp, acc, acc_stride),
    }
}

/// One quantized dense layer: int8 weights, f32 bias, the f32 layer's
/// activation, and the calibrated input scale.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLayer {
    weights: QuantizedPackedWeights,
    bias: Vec<f32>,
    activation: Activation,
    input_scale: f32,
    inv_input_scale: f32,
    /// `input_scale * weight_scale[j]` per output channel — one multiply
    /// dequantizes the i32 accumulator.
    dequant: Vec<f32>,
}

impl QuantizedLayer {
    /// Fan-in of the layer.
    pub fn fan_in(&self) -> usize {
        self.weights.fan_in
    }

    /// Fan-out of the layer.
    pub fn fan_out(&self) -> usize {
        self.weights.fan_out
    }

    /// The calibrated symmetric activation scale of this layer's input.
    pub fn input_scale(&self) -> f32 {
        self.input_scale
    }

    /// Quantized weights (for accounting and tests).
    pub fn weights(&self) -> &QuantizedPackedWeights {
        &self.weights
    }

    /// Quantizes the whole batch into `q` (stride `q_stride`) on the given
    /// path — SIMD paths vectorize, but every lane reproduces
    /// [`quantize_activation`] exactly. When the stride equals the fan-in
    /// the batch quantizes in a single kernel call over the contiguous
    /// matrix storage; an odd fan-in quantizes contiguously into `qtmp`
    /// and scatters rows into the padded layout (the per-row kernel-call
    /// overhead would otherwise dominate these tiny rows).
    fn quantize_batch(
        &self,
        input: &Matrix,
        q: &mut [i16],
        q_stride: usize,
        qtmp: &mut Vec<i16>,
        path: KernelPath,
    ) {
        let (batch, fan_in) = input.shape();
        match path {
            #[cfg(target_arch = "x86_64")]
            KernelPath::Sse2 | KernelPath::Avx2 => {
                let avx2 = path == KernelPath::Avx2;
                if q_stride == fan_in {
                    kernel::x86::quantize_row(
                        avx2,
                        input.as_slice(),
                        self.inv_input_scale,
                        &mut q[..batch * fan_in],
                    );
                } else {
                    // The temp carries `q_stride - fan_in` slack zeros so
                    // every row scatters as one full-`q_stride` copy — the
                    // overread lands in the next row's data or the slack,
                    // and pad lanes only ever multiply zero weights, so
                    // their values are irrelevant.
                    qtmp.resize(batch * fan_in + (q_stride - fan_in), 0);
                    kernel::x86::quantize_row(
                        avx2,
                        input.as_slice(),
                        self.inv_input_scale,
                        &mut qtmp[..batch * fan_in],
                    );
                    for r in 0..batch {
                        q[r * q_stride..(r + 1) * q_stride]
                            .copy_from_slice(&qtmp[r * fan_in..r * fan_in + q_stride]);
                    }
                }
            }
            _ => {
                let _ = qtmp;
                for r in 0..batch {
                    let q_row = &mut q[r * q_stride..r * q_stride + fan_in];
                    for (qv, &x) in q_row.iter_mut().zip(input.row(r)) {
                        *qv = quantize_activation(x, self.inv_input_scale);
                    }
                }
            }
        }
    }

    /// Dequantize + bias + activation for the columns `j0..fan_out` of a
    /// block of `rows` output rows (`acc` and `out` already sliced to
    /// start at column `j0`). ReLU and Identity (the serving network's
    /// activations) run vectorized on the SIMD paths with bit-identical
    /// scalar tails ([`relu_exact`]); the transcendental activations use
    /// one shared scalar loop on every path — still path-bit-identical,
    /// just not vectorized.
    #[allow(clippy::too_many_arguments)]
    fn epilogue_cols(
        &self,
        acc: &[i32],
        acc_stride: usize,
        out: &mut [f32],
        out_stride: usize,
        rows: usize,
        j0: usize,
        path: KernelPath,
    ) {
        let n = self.weights.fan_out - j0;
        let dequant = &self.dequant[j0..];
        let bias = &self.bias[j0..];
        let simple = matches!(self.activation, Activation::Relu | Activation::Identity);
        let relu = self.activation == Activation::Relu;
        // Narrow tails (n < 8) go straight to the scalar loop: the kernel
        // call would run zero vector iterations and only add overhead.
        if simple && n >= 8 {
            #[cfg(target_arch = "x86_64")]
            if matches!(path, KernelPath::Sse2 | KernelPath::Avx2) {
                kernel::x86::dequant_epilogue_block(
                    path == KernelPath::Avx2,
                    acc,
                    acc_stride,
                    dequant,
                    bias,
                    out,
                    out_stride,
                    rows,
                    n,
                    relu,
                );
                return;
            }
        }
        let _ = path;
        for r in 0..rows {
            for j in 0..n {
                let v = acc[r * acc_stride + j] as f32 * dequant[j] + bias[j];
                out[r * out_stride + j] = if !simple {
                    self.activation.apply(v)
                } else if relu {
                    relu_exact(v)
                } else {
                    v
                };
            }
        }
    }

    fn forward_into(
        &self,
        input: &Matrix,
        q: &mut Vec<i16>,
        qtmp: &mut Vec<i16>,
        acc: &mut Vec<i32>,
        out: &mut Matrix,
        path: KernelPath,
    ) {
        let (batch, fan_in) = input.shape();
        assert_eq!(
            fan_in, self.weights.fan_in,
            "quantized layer fan-in mismatch"
        );
        let kpairs = self.weights.kpairs;
        let q_stride = 2 * kpairs;
        let fan_out = self.weights.fan_out;
        let panel_count = self.weights.panel_count;
        let padded_cols = panel_count * 8;

        // Grow-only scratch: stale values past the quantized region are
        // harmless — an odd-depth pad lane always multiplies a zero
        // weight, so its activation value never reaches the accumulator.
        if q.len() < batch * q_stride {
            q.resize(batch * q_stride, 0);
        }
        self.quantize_batch(input, q, q_stride, qtmp, path);

        out.reset_for_overwrite(batch, fan_out);
        let out_data = out.as_mut_slice();

        // ReLU/Identity layers on SIMD paths run the whole batched layer
        // — GEMM, dequantize, bias, activation, ragged tail included — in
        // one fused kernel call (bit-identical to the deferred epilogue,
        // see `kernel::x86::int8_fused`): the per-block call overhead is
        // what used to dominate these small layers. The scalar path and
        // transcendental activations accumulate blocks into `acc` and run
        // the deferred epilogue.
        #[cfg(target_arch = "x86_64")]
        if matches!(self.activation, Activation::Relu | Activation::Identity)
            && matches!(path, KernelPath::Sse2 | KernelPath::Avx2)
        {
            kernel::x86::int8_fused(
                path == KernelPath::Avx2,
                &q[..batch * q_stride],
                q_stride,
                kpairs,
                batch,
                &self.weights.data,
                panel_count,
                fan_out,
                &self.dequant,
                &self.bias,
                out_data,
                fan_out,
                self.activation == Activation::Relu,
            );
            return;
        }

        if acc.len() < 8 * padded_cols {
            acc.resize(8 * padded_cols, 0);
        }
        let mut i = 0;
        while i < batch {
            let ib = if batch - i >= 8 { 8 } else { 1 };
            let q_block = &q[i * q_stride..(i + ib) * q_stride];
            let out_block = &mut out_data[i * fan_out..(i + ib) * fan_out];
            for p in 0..panel_count {
                let wp = &self.weights.data[p * kpairs * 16..(p + 1) * kpairs * 16];
                let acc_block = &mut acc[p * 8..];
                if ib == 8 {
                    int8_block::<8>(path, q_block, q_stride, kpairs, wp, acc_block, padded_cols);
                } else {
                    int8_block::<1>(path, q_block, q_stride, kpairs, wp, acc_block, padded_cols);
                }
            }
            self.epilogue_cols(acc, padded_cols, out_block, fan_out, ib, 0, path);
            i += ib;
        }
    }
}

/// Per-layer input magnitude statistics gathered by running the f32
/// network over calibration data. Feed every representative source
/// ([`CalibrationStats::observe`] accumulates maxima), then quantize.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationStats {
    max_abs: Vec<f32>,
}

impl CalibrationStats {
    /// Empty statistics for a network with `layer_count` layers.
    pub fn new(layer_count: usize) -> Self {
        assert!(layer_count > 0, "calibration needs at least one layer");
        Self {
            max_abs: vec![0.0; layer_count],
        }
    }

    /// Runs `samples` (rows of network inputs) through `mlp` and folds
    /// each layer's observed input magnitude into the statistics.
    ///
    /// # Panics
    ///
    /// Panics if the layer count or input width does not match `mlp`.
    pub fn observe(&mut self, mlp: &Mlp, samples: &Matrix) {
        assert_eq!(
            self.max_abs.len(),
            mlp.layers().len(),
            "calibration layer count mismatch"
        );
        assert_eq!(samples.cols(), mlp.input_dim(), "calibration input width");
        let mut cur = samples.clone();
        let mut next = Matrix::zeros(1, 1);
        for (stat, layer) in self.max_abs.iter_mut().zip(mlp.layers()) {
            *stat = stat.max(cur.max_abs());
            layer.forward_batch(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
    }

    /// Largest observed input magnitude per layer.
    pub fn layer_max_abs(&self) -> &[f32] {
        &self.max_abs
    }

    /// True when every layer has seen at least one non-zero input — a
    /// guard against quantizing off an empty or degenerate calibration
    /// set.
    pub fn is_informative(&self) -> bool {
        self.max_abs.iter().all(|&m| m > 0.0)
    }
}

/// Ping-pong buffers for [`QuantizedMlp::forward_batch`]; reuse across
/// calls to stay allocation-free in the steady state.
#[derive(Debug, Default, Clone)]
pub struct QuantScratch {
    q: Vec<i16>,
    q2: Vec<i16>,
    qtmp: Vec<i16>,
    acc: Vec<i32>,
    ping: Matrix,
    pong: Matrix,
}

/// An [`Mlp`] quantized layer-by-layer for int8 serving.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedLayer>,
}

impl QuantizedMlp {
    /// Quantizes `mlp` using calibrated per-layer activation scales.
    ///
    /// # Panics
    ///
    /// Panics if `calib` was not built for this network's layer count.
    pub fn quantize(mlp: &Mlp, calib: &CalibrationStats) -> Self {
        assert_eq!(
            calib.max_abs.len(),
            mlp.layers().len(),
            "calibration layer count mismatch"
        );
        let layers = mlp
            .layers()
            .iter()
            .zip(&calib.max_abs)
            .map(|(layer, &max_abs)| {
                let input_scale = if max_abs > 0.0 {
                    max_abs / 127.0
                } else {
                    1.0 / 127.0
                };
                let weights = QuantizedPackedWeights::quantize(layer.weight());
                let dequant = weights.scales.iter().map(|&s| s * input_scale).collect();
                QuantizedLayer {
                    weights,
                    bias: layer.bias().to_vec(),
                    activation: layer.activation(),
                    input_scale,
                    inv_input_scale: 1.0 / input_scale,
                    dequant,
                }
            })
            .collect();
        Self { layers }
    }

    /// The quantized layers, in forward order.
    pub fn layers(&self) -> &[QuantizedLayer] {
        &self.layers
    }

    /// Input feature width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].fan_in()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].fan_out()
    }

    /// Heap bytes of all quantized weights, biases and scales.
    pub fn memory_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                l.weights.memory_bytes()
                    + (l.bias.len() + l.dequant.len()) * std::mem::size_of::<f32>()
            })
            .sum()
    }

    /// Batched int8 forward pass on the active kernel path; returns a
    /// reference to the output rows held in `scratch`.
    pub fn forward_batch<'s>(&self, input: &Matrix, scratch: &'s mut QuantScratch) -> &'s Matrix {
        self.forward_batch_with(input, scratch, kernel::active())
    }

    /// [`QuantizedMlp::forward_batch`] on an explicit kernel path — the
    /// parity tests compare paths without touching global state. All
    /// paths are bit-identical (exact integer accumulation + shared
    /// scalar quantize/epilogue).
    pub fn forward_batch_with<'s>(
        &self,
        input: &Matrix,
        scratch: &'s mut QuantScratch,
        path: KernelPath,
    ) -> &'s Matrix {
        assert_eq!(input.cols(), self.input_dim(), "quantized input width");
        let path = path.min(kernel::detect());
        // On SIMD paths an all-ReLU/Identity network runs as a fully
        // quantized chain: the input quantizes once, every hidden layer
        // runs one `int8_fused_quant` call whose epilogue re-quantizes
        // straight into the next layer's i16 input (f32 hidden
        // activations never touch memory — the chain computes the exact
        // same values the materializing path would, see the kernel docs),
        // and the last layer dequantizes to f32.
        #[cfg(target_arch = "x86_64")]
        if matches!(path, KernelPath::Sse2 | KernelPath::Avx2)
            && self
                .layers
                .iter()
                .all(|l| matches!(l.activation, Activation::Relu | Activation::Identity))
        {
            let avx2 = path == KernelPath::Avx2;
            let batch = input.rows();
            {
                let QuantScratch {
                    q, q2, qtmp, ping, ..
                } = scratch;
                let mut stride = 2 * self.layers[0].weights.kpairs;
                if q.len() < batch * stride {
                    q.resize(batch * stride, 0);
                }
                self.layers[0].quantize_batch(input, q, stride, qtmp, path);
                let last = self.layers.len() - 1;
                for (i, layer) in self.layers.iter().enumerate() {
                    let w = &layer.weights;
                    let relu = layer.activation == Activation::Relu;
                    if i < last {
                        let next = &self.layers[i + 1];
                        let next_stride = 2 * next.weights.kpairs;
                        if q2.len() < batch * next_stride {
                            q2.resize(batch * next_stride, 0);
                        }
                        kernel::x86::int8_fused_quant(
                            avx2,
                            &q[..batch * stride],
                            stride,
                            w.kpairs,
                            batch,
                            &w.data,
                            w.panel_count,
                            w.fan_out,
                            &layer.dequant,
                            &layer.bias,
                            relu,
                            next.inv_input_scale,
                            &mut q2[..batch * next_stride],
                            next_stride,
                        );
                        std::mem::swap(q, q2);
                        stride = next_stride;
                    } else {
                        ping.reset_for_overwrite(batch, w.fan_out);
                        kernel::x86::int8_fused(
                            avx2,
                            &q[..batch * stride],
                            stride,
                            w.kpairs,
                            batch,
                            &w.data,
                            w.panel_count,
                            w.fan_out,
                            &layer.dequant,
                            &layer.bias,
                            ping.as_mut_slice(),
                            w.fan_out,
                            relu,
                        );
                    }
                }
            }
            return &scratch.ping;
        }
        {
            let QuantScratch {
                q,
                qtmp,
                acc,
                ping,
                pong,
                ..
            } = scratch;
            let mut first = true;
            for layer in &self.layers {
                let src: &Matrix = if first { input } else { &*ping };
                layer.forward_into(src, q, qtmp, acc, pong, path);
                std::mem::swap(ping, pong);
                first = false;
            }
        }
        &scratch.ping
    }

    /// Single-sample convenience wrapper (tests and spot checks — serving
    /// uses the batched path with a reused scratch).
    pub fn infer_scalar(&self, features: &[f32]) -> f32 {
        let mut scratch = QuantScratch::default();
        let out = self.forward_batch(&Matrix::row_vector(features), &mut scratch);
        out[(0, 0)]
    }

    /// Analytic bound on `|int8 − f32|` for one layer's pre-activation
    /// output at column `col`, for inputs of magnitude at most
    /// `input_max_abs` (which must lie inside the calibrated range so no
    /// clamping occurs). Every activation in this crate is 1-Lipschitz,
    /// so the bound also holds post-activation. See the [module
    /// docs](self) for the derivation; the small relative/absolute slop
    /// covers f32 rounding of both pipelines.
    pub fn layer_error_bound(&self, layer: usize, input_max_abs: f32, col: usize) -> f32 {
        let l = &self.layers[layer];
        let s_in = l.input_scale;
        let s_w = l.weights.scales[col];
        let w_max = 127.0 * s_w;
        let n = l.weights.fan_in as f32;
        let bound = n * (input_max_abs * s_w * 0.5 + w_max * s_in * 0.5 + s_in * s_w * 0.25);
        bound * 1.001 + 1e-5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_mlp(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(
            &[3, 16, 32, 16, 1],
            Activation::Relu,
            Init::HeNormal,
            &mut rng,
        )
    }

    fn calib_inputs() -> Matrix {
        Matrix::from_vec(
            32,
            3,
            (0..96).map(|i| ((i as f32) * 0.37).sin() * 2.0).collect(),
        )
    }

    #[test]
    fn quantized_tracks_f32_within_bound() {
        let mlp = test_mlp(7);
        let x = calib_inputs();
        let mut calib = CalibrationStats::new(mlp.layers().len());
        calib.observe(&mlp, &x);
        assert!(calib.is_informative());
        let qmlp = QuantizedMlp::quantize(&mlp, &calib);
        let mut scratch = QuantScratch::default();
        let qy = qmlp.forward_batch(&x, &mut scratch).clone();
        let fy = mlp.infer(&x);
        assert_eq!(qy.shape(), fy.shape());
        let mut max_err = 0.0f32;
        for (a, b) in qy.as_slice().iter().zip(fy.as_slice()) {
            max_err = max_err.max((a - b).abs());
        }
        // Loose end-to-end sanity: per-layer bounds compound, but the
        // network output must stay in the same ballpark as f32.
        assert!(max_err < 0.1, "quantized drifted {max_err} from f32");
    }

    #[test]
    fn kernel_paths_agree_bitwise() {
        let mlp = test_mlp(13);
        let x = calib_inputs();
        let mut calib = CalibrationStats::new(mlp.layers().len());
        calib.observe(&mlp, &x);
        let qmlp = QuantizedMlp::quantize(&mlp, &calib);
        let mut scratch = QuantScratch::default();
        let scalar = qmlp
            .forward_batch_with(&x, &mut scratch, KernelPath::Scalar)
            .clone();
        for path in [KernelPath::Sse2, KernelPath::Avx2] {
            let out = qmlp.forward_batch_with(&x, &mut scratch, path).clone();
            for (a, b) in out.as_slice().iter().zip(scalar.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{path} vs scalar");
            }
        }
    }

    #[test]
    fn odd_shapes_and_ragged_panels() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&[5, 7, 9, 3], Activation::Tanh, Init::HeNormal, &mut rng);
        let x = Matrix::from_vec(
            9,
            5,
            (0..45).map(|i| ((i as f32) * 0.61).cos() * 1.5).collect(),
        );
        let mut calib = CalibrationStats::new(3);
        calib.observe(&mlp, &x);
        let qmlp = QuantizedMlp::quantize(&mlp, &calib);
        let mut scratch = QuantScratch::default();
        let scalar = qmlp
            .forward_batch_with(&x, &mut scratch, KernelPath::Scalar)
            .clone();
        let best = qmlp
            .forward_batch_with(&x, &mut scratch, kernel::detect())
            .clone();
        assert_eq!(scalar, best);
        assert_eq!(scalar.shape(), (9, 3));
    }

    #[test]
    fn memory_shrinks_versus_f32() {
        let mlp = test_mlp(1);
        let x = calib_inputs();
        let mut calib = CalibrationStats::new(mlp.layers().len());
        calib.observe(&mlp, &x);
        let qmlp = QuantizedMlp::quantize(&mlp, &calib);
        // i16 storage + padding still beats four-byte weights on these
        // shapes.
        assert!(qmlp.memory_bytes() < mlp.memory_bytes());
    }
}
