//! Saving and loading models as JSON.
//!
//! The trained two-branch network is ~2.3k parameters, so JSON is perfectly
//! adequate and keeps persisted models human-inspectable.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Error returned by model persistence operations.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// Malformed or incompatible serialized model.
    Format(serde_json::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model file I/O failed: {e}"),
            PersistError::Format(e) => write!(f, "invalid model file format: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// Serializes any model to pretty-printed JSON at `path`.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure and
/// [`PersistError::Format`] if the model cannot be serialized.
pub fn save_json<M: Serialize>(model: &M, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let json = serde_json::to_string_pretty(model)?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads a model previously written by [`save_json`].
///
/// # Errors
///
/// Returns [`PersistError::Io`] if the file cannot be read and
/// [`PersistError::Format`] if its contents do not describe a valid model.
pub fn load_json<M: DeserializeOwned>(path: impl AsRef<Path>) -> Result<M, PersistError> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::Init;
    use crate::matrix::Matrix;
    use crate::mlp::Mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_through_file() {
        let mut rng = StdRng::seed_from_u64(8);
        let model = Mlp::new(&[3, 8, 1], Activation::Relu, Init::HeNormal, &mut rng);
        let dir = std::env::temp_dir().join("pinnsoc_nn_persist_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_json(&model, &path).unwrap();
        let loaded: Mlp = load_json(&path).unwrap();
        let x = Matrix::row_vector(&[0.2, 0.4, 0.6]);
        assert_eq!(model.infer(&x), loaded.infer(&x));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_json::<Mlp>("/nonexistent/definitely/missing.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn malformed_file_is_format_error() {
        let dir = std::env::temp_dir().join("pinnsoc_nn_persist_test2");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, "{ not json ").unwrap();
        let err = load_json::<Mlp>(&path).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PersistError>();
    }
}
