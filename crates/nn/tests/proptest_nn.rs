//! Property-based tests for the NN substrate: algebraic identities of the
//! matrix kernels, analytic properties of activations and losses, and the
//! bit-exactness contract across the scalar / batched / fused inference
//! pipelines (see the `pinnsoc_nn` crate docs).

use pinnsoc_nn::matrix::PackedWeights;
use pinnsoc_nn::{Activation, Dense, InferScratch, Init, Loss, Matrix, Mlp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a matrix of the given shape with bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: a matrix with *random* shape within the given bounds.
fn sized_matrix(
    rows: impl Strategy<Value = usize>,
    cols: impl Strategy<Value = usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| matrix(r, c))
}

fn any_activation() -> impl Strategy<Value = Activation> {
    prop_oneof![
        Just(Activation::Relu),
        Just(Activation::Tanh),
        Just(Activation::Sigmoid),
        Just(Activation::Identity),
        Just(Activation::LeakyRelu),
    ]
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{x} vs {y}"
        );
    }
}

proptest! {
    #[test]
    fn matmul_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert_close(&left, &right, 1e-3);
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        assert_close(&left, &right, 1e-3);
    }

    #[test]
    fn transpose_of_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert_close(&left, &right, 1e-4);
    }

    #[test]
    fn fused_transpose_kernels_match_explicit(a in matrix(5, 3), b in matrix(5, 4), c in matrix(4, 3)) {
        assert_close(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-4);
        assert_close(&a.matmul_nt(&c), &a.matmul(&c.transpose()), 1e-4);
    }

    #[test]
    fn addition_commutes(a in matrix(4, 4), b in matrix(4, 4)) {
        assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn hadamard_with_ones_is_identity(a in matrix(3, 5)) {
        let ones = Matrix::full(3, 5, 1.0);
        assert_eq!(a.hadamard(&ones), a);
    }

    #[test]
    fn column_sums_linear(a in matrix(4, 3), b in matrix(4, 3)) {
        let sum: Vec<f32> = a.add(&b).column_sums();
        let separate: Vec<f32> = a
            .column_sums()
            .iter()
            .zip(b.column_sums())
            .map(|(x, y)| x + y)
            .collect();
        for (s, t) in sum.iter().zip(&separate) {
            prop_assert!((s - t).abs() < 1e-3);
        }
    }

    #[test]
    fn vstack_preserves_rows(a in matrix(2, 3), b in matrix(4, 3)) {
        let stacked = a.vstack(&b);
        prop_assert_eq!(stacked.shape(), (6, 3));
        prop_assert_eq!(stacked.row(1), a.row(1));
        prop_assert_eq!(stacked.row(3), b.row(1));
    }

    #[test]
    fn gather_rows_matches_indexing(a in matrix(5, 3), idx in proptest::collection::vec(0usize..5, 1..8)) {
        let g = a.gather_rows(&idx);
        for (out_row, &src) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(out_row), a.row(src));
        }
    }

    /// Bit-exactness contract, kernel level: the fused packed-weight GEMM
    /// must reproduce `matmul → bias broadcast → activation` bit-for-bit
    /// across random shapes (covering every tile width incl. tails) and
    /// activations.
    #[test]
    fn fused_gemm_bitwise_matches_unfused_pipeline(
        x in sized_matrix(1usize..12, 1usize..24),
        fan_out in 1usize..40,
        bias_seed in -3.0f32..3.0,
        act in any_activation(),
    ) {
        let k = x.cols();
        let w = Matrix::from_vec(
            k,
            fan_out,
            (0..k * fan_out).map(|i| ((i as f32) * 0.37 + bias_seed).sin()).collect(),
        );
        let bias: Vec<f32> = (0..fan_out).map(|i| (i as f32 * 0.19 - bias_seed).cos()).collect();
        let packed = PackedWeights::pack(&w);
        let mut fused = Matrix::zeros(1, 1);
        x.matmul_bias_act_into(&packed, &bias, act, &mut fused);
        let mut reference = x.matmul(&w).add_row_broadcast(&bias);
        reference.map_inplace(|v| act.apply(v));
        prop_assert_eq!(fused.shape(), reference.shape());
        for (f, r) in fused.as_slice().iter().zip(reference.as_slice()) {
            prop_assert_eq!(f.to_bits(), r.to_bits(), "{} vs {}", f, r);
        }
    }

    /// Bit-exactness contract, layer level: `infer`, `forward_batch`, and
    /// `forward_batch_fused` agree bit-exactly per row across random layer
    /// shapes, batch heights, and activations.
    #[test]
    fn dense_pipelines_bitwise_agree(
        fan_in in 1usize..20,
        fan_out in 1usize..40,
        batch in 1usize..12,
        seed in 0u64..1000,
        act in any_activation(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = Dense::new(fan_in, fan_out, act, Init::HeNormal, &mut rng);
        let x = Matrix::from_vec(
            batch,
            fan_in,
            (0..batch * fan_in).map(|i| (i as f32 * 0.29 + seed as f32).sin() * 2.0).collect(),
        );
        let scalar_rows: Vec<Matrix> = (0..batch)
            .map(|r| layer.infer(&Matrix::row_vector(x.row(r))))
            .collect();
        let mut batched = Matrix::zeros(1, 1);
        layer.forward_batch(&x, &mut batched);
        let mut fused = Matrix::zeros(1, 1);
        layer.forward_batch_fused(&x, &mut fused);
        prop_assert_eq!(batched.shape(), (batch, fan_out));
        prop_assert_eq!(fused.shape(), (batch, fan_out));
        for r in 0..batch {
            for c in 0..fan_out {
                let s = scalar_rows[r][(0, c)];
                prop_assert_eq!(batched[(r, c)].to_bits(), s.to_bits(), "batch ({},{})", r, c);
                prop_assert_eq!(fused[(r, c)].to_bits(), s.to_bits(), "fused ({},{})", r, c);
            }
        }
    }

    /// Bit-exactness contract, network level: full MLPs agree across the
    /// three pipelines for random widths/depths/batch heights, including
    /// scratch reuse between differently-sized batches.
    #[test]
    fn mlp_pipelines_bitwise_agree(
        widths in proptest::collection::vec(1usize..24, 2..5),
        batch in 1usize..10,
        seed in 0u64..1000,
        act in any_activation(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&widths, act, Init::HeNormal, &mut rng);
        let fan_in = widths[0];
        let x = Matrix::from_vec(
            batch,
            fan_in,
            (0..batch * fan_in).map(|i| ((i as f32) * 0.41 - 1.0).cos() * 1.5).collect(),
        );
        let mut scratch = InferScratch::default();
        let batched = mlp.forward_batch(&x, &mut scratch).clone();
        let fused = mlp.forward_batch_fused(&x, &mut scratch).clone();
        let scalar = mlp.infer(&x);
        prop_assert_eq!(batched.shape(), scalar.shape());
        prop_assert_eq!(fused.shape(), scalar.shape());
        for ((b, f), s) in batched
            .as_slice()
            .iter()
            .zip(fused.as_slice())
            .zip(scalar.as_slice())
        {
            prop_assert_eq!(b.to_bits(), s.to_bits(), "batched {} vs scalar {}", b, s);
            prop_assert_eq!(f.to_bits(), s.to_bits(), "fused {} vs scalar {}", f, s);
        }
        // Reusing the same scratch for a single-row batch must not change
        // row results (row independence).
        let first_row = mlp.forward_batch_fused(&Matrix::row_vector(x.row(0)), &mut scratch);
        prop_assert_eq!(first_row[(0, 0)].to_bits(), scalar[(0, 0)].to_bits());
    }

    #[test]
    fn sigmoid_bounded_and_monotone(x in -50.0f32..50.0, y in -50.0f32..50.0) {
        let s = Activation::Sigmoid;
        let sx = s.apply(x);
        prop_assert!((0.0..=1.0).contains(&sx));
        if x < y {
            prop_assert!(sx <= s.apply(y));
        }
    }

    #[test]
    fn relu_is_idempotent(x in -100.0f32..100.0) {
        let r = Activation::Relu;
        prop_assert_eq!(r.apply(r.apply(x)), r.apply(x));
        prop_assert!(r.apply(x) >= 0.0);
    }

    #[test]
    fn tanh_odd_function(x in -10.0f32..10.0) {
        let t = Activation::Tanh;
        prop_assert!((t.apply(-x) + t.apply(x)).abs() < 1e-5);
    }

    #[test]
    fn losses_are_nonnegative_and_zero_at_target(p in matrix(2, 3)) {
        for loss in [Loss::Mae, Loss::Mse, Loss::Huber(1.0)] {
            prop_assert!(loss.value(&p, &p).abs() < 1e-9);
            let shifted = p.map(|x| x + 1.0);
            prop_assert!(loss.value(&shifted, &p) > 0.0);
        }
    }

    #[test]
    fn mae_is_translation_invariant(p in matrix(2, 2), shift in -5.0f32..5.0) {
        let t = Matrix::zeros(2, 2);
        let a = Loss::Mae.value(&p, &t);
        let b = Loss::Mae.value(&p.map(|x| x + shift), &t.map(|x| x + shift));
        prop_assert!((a - b).abs() < 1e-4);
    }

    #[test]
    fn loss_gradient_points_uphill(p in matrix(1, 4), t in matrix(1, 4)) {
        // Moving a small step along the gradient must not decrease the loss.
        for loss in [Loss::Mse, Loss::Huber(0.5)] {
            let g = loss.gradient(&p, &t);
            let eps = 1e-3;
            let stepped = p.add(&g.scale(eps));
            prop_assert!(loss.value(&stepped, &t) >= loss.value(&p, &t) - 1e-6);
        }
    }
}
