//! Property-based tests for the NN substrate: algebraic identities of the
//! matrix kernels and analytic properties of activations and losses.

use pinnsoc_nn::{Activation, Loss, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{x} vs {y}"
        );
    }
}

proptest! {
    #[test]
    fn matmul_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert_close(&left, &right, 1e-3);
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        assert_close(&left, &right, 1e-3);
    }

    #[test]
    fn transpose_of_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert_close(&left, &right, 1e-4);
    }

    #[test]
    fn fused_transpose_kernels_match_explicit(a in matrix(5, 3), b in matrix(5, 4), c in matrix(4, 3)) {
        assert_close(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-4);
        assert_close(&a.matmul_nt(&c), &a.matmul(&c.transpose()), 1e-4);
    }

    #[test]
    fn addition_commutes(a in matrix(4, 4), b in matrix(4, 4)) {
        assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn hadamard_with_ones_is_identity(a in matrix(3, 5)) {
        let ones = Matrix::full(3, 5, 1.0);
        assert_eq!(a.hadamard(&ones), a);
    }

    #[test]
    fn column_sums_linear(a in matrix(4, 3), b in matrix(4, 3)) {
        let sum: Vec<f32> = a.add(&b).column_sums();
        let separate: Vec<f32> = a
            .column_sums()
            .iter()
            .zip(b.column_sums())
            .map(|(x, y)| x + y)
            .collect();
        for (s, t) in sum.iter().zip(&separate) {
            prop_assert!((s - t).abs() < 1e-3);
        }
    }

    #[test]
    fn vstack_preserves_rows(a in matrix(2, 3), b in matrix(4, 3)) {
        let stacked = a.vstack(&b);
        prop_assert_eq!(stacked.shape(), (6, 3));
        prop_assert_eq!(stacked.row(1), a.row(1));
        prop_assert_eq!(stacked.row(3), b.row(1));
    }

    #[test]
    fn gather_rows_matches_indexing(a in matrix(5, 3), idx in proptest::collection::vec(0usize..5, 1..8)) {
        let g = a.gather_rows(&idx);
        for (out_row, &src) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(out_row), a.row(src));
        }
    }

    #[test]
    fn sigmoid_bounded_and_monotone(x in -50.0f32..50.0, y in -50.0f32..50.0) {
        let s = Activation::Sigmoid;
        let sx = s.apply(x);
        prop_assert!((0.0..=1.0).contains(&sx));
        if x < y {
            prop_assert!(sx <= s.apply(y));
        }
    }

    #[test]
    fn relu_is_idempotent(x in -100.0f32..100.0) {
        let r = Activation::Relu;
        prop_assert_eq!(r.apply(r.apply(x)), r.apply(x));
        prop_assert!(r.apply(x) >= 0.0);
    }

    #[test]
    fn tanh_odd_function(x in -10.0f32..10.0) {
        let t = Activation::Tanh;
        prop_assert!((t.apply(-x) + t.apply(x)).abs() < 1e-5);
    }

    #[test]
    fn losses_are_nonnegative_and_zero_at_target(p in matrix(2, 3)) {
        for loss in [Loss::Mae, Loss::Mse, Loss::Huber(1.0)] {
            prop_assert!(loss.value(&p, &p).abs() < 1e-9);
            let shifted = p.map(|x| x + 1.0);
            prop_assert!(loss.value(&shifted, &p) > 0.0);
        }
    }

    #[test]
    fn mae_is_translation_invariant(p in matrix(2, 2), shift in -5.0f32..5.0) {
        let t = Matrix::zeros(2, 2);
        let a = Loss::Mae.value(&p, &t);
        let b = Loss::Mae.value(&p.map(|x| x + shift), &t.map(|x| x + shift));
        prop_assert!((a - b).abs() < 1e-4);
    }

    #[test]
    fn loss_gradient_points_uphill(p in matrix(1, 4), t in matrix(1, 4)) {
        // Moving a small step along the gradient must not decrease the loss.
        for loss in [Loss::Mse, Loss::Huber(0.5)] {
            let g = loss.gradient(&p, &t);
            let eps = 1e-3;
            let stepped = p.add(&g.scale(eps));
            prop_assert!(loss.value(&stepped, &t) >= loss.value(&p, &t) - 1e-6);
        }
    }
}
