//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Two-tier design. The shared [`MetricsRegistry`] holds the canonical
//! values behind one mutex; hot paths never touch it. Instead each shard
//! or worker owns a [`LocalMetrics`] — a plain vector of slots indexed by
//! [`MetricId`] — and records with ordinary integer/float arithmetic. The
//! coordinating thread calls [`MetricsRegistry::merge`] at tick
//! boundaries, folding every local delta into the shared values and
//! clearing the local buffer, so the mutex is taken once per tick instead
//! of once per sample.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Handle to one registered metric: an index into the registry's value
/// table (and into every [`LocalMetrics`] derived from it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricId(pub(crate) usize);

impl MetricId {
    /// The raw slot index (stable for the lifetime of the registry).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// What a metric measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Last-write-wins `f64`.
    Gauge,
    /// Fixed-bucket distribution of `f64` observations.
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Immutable description of a registered metric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricSpec {
    /// Full metric name, e.g. `pinnsoc_fleet_stage_seconds`.
    pub name: String,
    /// One-line help string for exporters.
    pub help: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Label pairs, e.g. `[("stage", "gemm")]`. Sorted at registration so
    /// label order never creates duplicate series.
    pub labels: Vec<(String, String)>,
    /// Upper bucket bounds for histograms (ascending); empty otherwise.
    pub buckets: Vec<f64>,
}

#[derive(Debug, Clone)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramValue),
}

#[derive(Debug, Clone)]
struct HistogramValue {
    /// Shared ascending upper bounds; `counts` has one extra +Inf slot.
    bounds: Arc<[f64]>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl HistogramValue {
    fn new(bounds: Arc<[f64]>) -> Self {
        let n = bounds.len() + 1;
        Self {
            bounds,
            counts: vec![0; n],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let slot = bucket_index(&self.bounds, v);
        self.counts[slot] += 1;
        self.sum += v;
        self.count += 1;
    }
}

/// Index of the first bucket whose upper bound admits `v` (last slot is
/// the implicit +Inf bucket).
fn bucket_index(bounds: &[f64], v: f64) -> usize {
    bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len())
}

#[derive(Debug, Default)]
struct Inner {
    specs: Vec<MetricSpec>,
    values: Vec<Value>,
    /// `name{label=value,...}` → slot, for idempotent registration.
    index: BTreeMap<String, usize>,
}

/// Shared registry of metric definitions and canonical values.
///
/// All methods take `&self`; interior state lives behind one mutex that
/// is only locked on registration, cold-path recording, merge, and
/// snapshot — never by hot-path code (which records into
/// [`LocalMetrics`]).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

fn series_key(name: &str, labels: &[(String, String)]) -> String {
    use std::fmt::Write;
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    for (k, v) in labels {
        let _ = write!(key, "\u{0}{k}\u{0}{v}");
    }
    key
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        buckets: &[f64],
    ) -> MetricId {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        let key = series_key(name, &labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(&slot) = inner.index.get(&key) {
            assert_eq!(
                inner.specs[slot].kind, kind,
                "metric {name} re-registered with a different kind"
            );
            return MetricId(slot);
        }
        debug_assert!(
            buckets.windows(2).all(|w| w[0] < w[1]),
            "histogram buckets for {name} must be strictly ascending"
        );
        let slot = inner.specs.len();
        let value = match kind {
            MetricKind::Counter => Value::Counter(0),
            MetricKind::Gauge => Value::Gauge(0.0),
            MetricKind::Histogram => Value::Histogram(HistogramValue::new(buckets.into())),
        };
        inner.specs.push(MetricSpec {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            labels,
            buckets: buckets.to_vec(),
        });
        inner.values.push(value);
        inner.index.insert(key, slot);
        MetricId(slot)
    }

    /// Registers (or looks up) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> MetricId {
        self.register(name, help, MetricKind::Counter, &[], &[])
    }

    /// Registers (or looks up) a labeled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> MetricId {
        self.register(name, help, MetricKind::Counter, labels, &[])
    }

    /// Registers (or looks up) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> MetricId {
        self.register(name, help, MetricKind::Gauge, &[], &[])
    }

    /// Registers (or looks up) a labeled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> MetricId {
        self.register(name, help, MetricKind::Gauge, labels, &[])
    }

    /// Registers (or looks up) an unlabeled histogram with the given
    /// ascending upper bucket bounds.
    pub fn histogram(&self, name: &str, help: &str, buckets: &[f64]) -> MetricId {
        self.register(name, help, MetricKind::Histogram, &[], buckets)
    }

    /// Registers (or looks up) a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[f64],
    ) -> MetricId {
        self.register(name, help, MetricKind::Histogram, labels, buckets)
    }

    /// Cold-path counter increment (locks the registry; use
    /// [`LocalMetrics`] on hot paths).
    pub fn add(&self, id: MetricId, n: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match &mut inner.values[id.0] {
            Value::Counter(c) => *c += n,
            other => panic!("add() on non-counter metric {other:?}"),
        }
    }

    /// Cold-path gauge store.
    pub fn set(&self, id: MetricId, v: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match &mut inner.values[id.0] {
            Value::Gauge(g) => *g = v,
            other => panic!("set() on non-gauge metric {other:?}"),
        }
    }

    /// Cold-path histogram observation.
    pub fn observe(&self, id: MetricId, v: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match &mut inner.values[id.0] {
            Value::Histogram(h) => h.observe(v),
            other => panic!("observe() on non-histogram metric {other:?}"),
        }
    }

    /// Creates a thread-local accumulation buffer sized for every metric
    /// registered so far. Ids minted later must use the cold-path
    /// `add`/`set`/`observe` on the registry (or a fresh `local()`).
    pub fn local(&self) -> LocalMetrics {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        LocalMetrics {
            slots: inner.specs.iter().map(LocalSlot::fresh).collect(),
        }
    }

    /// Folds every delta accumulated in `local` into the shared values
    /// and clears `local` for reuse. One lock acquisition total.
    pub fn merge(&self, local: &mut LocalMetrics) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        for (slot, value) in local.slots.iter_mut().zip(inner.values.iter_mut()) {
            match (slot, value) {
                (LocalSlot::Counter(n), Value::Counter(c)) => {
                    *c += *n;
                    *n = 0;
                }
                (LocalSlot::Gauge { value: v, set }, Value::Gauge(g)) => {
                    if *set {
                        *g = *v;
                        *set = false;
                    }
                }
                (
                    LocalSlot::Histogram {
                        counts, sum, count, ..
                    },
                    Value::Histogram(h),
                ) => {
                    if *count > 0 {
                        for (dst, src) in h.counts.iter_mut().zip(counts.iter_mut()) {
                            *dst += *src;
                            *src = 0;
                        }
                        h.sum += *sum;
                        h.count += *count;
                        *sum = 0.0;
                        *count = 0;
                    }
                }
                (slot, value) => panic!("local slot {slot:?} does not match {value:?}"),
            }
        }
        // Slots created after this local was built: append fresh shared
        // state only exists for ids the registry knows, so any excess
        // local slots mean ids minted by a *different* registry — a bug.
        assert!(
            local.slots.len() <= inner.values.len(),
            "LocalMetrics has more slots than the registry it merges into"
        );
    }

    /// Point-in-time copy of every metric. Non-blocking for the tick
    /// loop: the lock is held only long enough to clone the value table
    /// (workers never hold it).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let metrics = inner
            .specs
            .iter()
            .zip(inner.values.iter())
            .map(|(spec, value)| MetricSample {
                name: spec.name.clone(),
                help: spec.help.clone(),
                kind: spec.kind,
                labels: spec.labels.clone(),
                value: match value {
                    Value::Counter(c) => SampleValue::Counter(*c),
                    Value::Gauge(g) => SampleValue::Gauge(*g),
                    Value::Histogram(h) => SampleValue::Histogram(HistogramSnapshot {
                        bounds: h.bounds.to_vec(),
                        counts: h.counts.clone(),
                        sum: h.sum,
                        count: h.count,
                    }),
                },
            })
            .collect();
        MetricsSnapshot { metrics }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .specs
            .len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug, Clone)]
enum LocalSlot {
    Counter(u64),
    Gauge {
        value: f64,
        set: bool,
    },
    Histogram {
        bounds: Arc<[f64]>,
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

impl LocalSlot {
    fn fresh(spec: &MetricSpec) -> Self {
        match spec.kind {
            MetricKind::Counter => LocalSlot::Counter(0),
            MetricKind::Gauge => LocalSlot::Gauge {
                value: 0.0,
                set: false,
            },
            MetricKind::Histogram => {
                let bounds: Arc<[f64]> = spec.buckets.as_slice().into();
                let n = bounds.len() + 1;
                LocalSlot::Histogram {
                    bounds,
                    counts: vec![0; n],
                    sum: 0.0,
                    count: 0,
                }
            }
        }
    }
}

/// Per-shard / per-worker accumulation buffer: plain slots, no locks, no
/// atomics. Created by [`MetricsRegistry::local`], drained by
/// [`MetricsRegistry::merge`].
#[derive(Debug, Clone, Default)]
pub struct LocalMetrics {
    slots: Vec<LocalSlot>,
}

impl LocalMetrics {
    /// Adds `n` to a counter slot.
    #[inline]
    pub fn add(&mut self, id: MetricId, n: u64) {
        match self.slots.get_mut(id.0) {
            Some(LocalSlot::Counter(c)) => *c += n,
            Some(other) => panic!("add() on non-counter local slot {other:?}"),
            None => panic!("metric id {} unknown to this LocalMetrics", id.0),
        }
    }

    /// Stores `v` into a gauge slot (last write before merge wins).
    #[inline]
    pub fn set(&mut self, id: MetricId, v: f64) {
        match self.slots.get_mut(id.0) {
            Some(LocalSlot::Gauge { value, set }) => {
                *value = v;
                *set = true;
            }
            Some(other) => panic!("set() on non-gauge local slot {other:?}"),
            None => panic!("metric id {} unknown to this LocalMetrics", id.0),
        }
    }

    /// Records `v` into a histogram slot.
    #[inline]
    pub fn observe(&mut self, id: MetricId, v: f64) {
        match self.slots.get_mut(id.0) {
            Some(LocalSlot::Histogram {
                bounds,
                counts,
                sum,
                count,
            }) => {
                counts[bucket_index(bounds, v)] += 1;
                *sum += v;
                *count += 1;
            }
            Some(other) => panic!("observe() on non-histogram local slot {other:?}"),
            None => panic!("metric id {} unknown to this LocalMetrics", id.0),
        }
    }

    /// True when no sample has been recorded since the last merge.
    pub fn is_clear(&self) -> bool {
        self.slots.iter().all(|s| match s {
            LocalSlot::Counter(c) => *c == 0,
            LocalSlot::Gauge { set, .. } => !*set,
            LocalSlot::Histogram { count, .. } => *count == 0,
        })
    }
}

/// Serializable point-in-time view of the whole registry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// One entry per registered series.
    pub metrics: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Finds a series by name and exact label set (order-insensitive).
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSample> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.metrics
            .iter()
            .find(|m| m.name == name && m.labels == want)
    }

    /// Sum over every series with this name (counters only).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .filter_map(|m| match &m.value {
                SampleValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }
}

/// One exported series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricSample {
    /// Metric name.
    pub name: String,
    /// Help string.
    pub help: String,
    /// Kind (drives the exposition format).
    pub kind: MetricKind,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: SampleValue,
}

/// Value payload of a [`MetricSample`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SampleValue {
    /// Monotonic count.
    Counter(u64),
    /// Instantaneous value.
    Gauge(f64),
    /// Bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// Frozen histogram state with quantile estimation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Ascending upper bucket bounds (the final +Inf bound is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `bounds.len() + 1` entries, last is +Inf.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (0 ≤ q ≤ 1) by linear interpolation
    /// within the bucket containing the target rank — the standard
    /// Prometheus `histogram_quantile` scheme. Returns 0 for an empty
    /// histogram; observations in the +Inf bucket clamp to the largest
    /// finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = seen + c;
            if (next as f64) >= rank && c > 0 {
                let upper = self
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| self.bounds.last().copied().unwrap_or(0.0));
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let into = (rank - seen as f64) / c as f64;
                return lower + (upper - lower) * into.clamp(0.0, 1.0);
            }
            seen = next;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    /// Mean observation (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_label_order_insensitive() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("pinnsoc_t_total", "help", &[("a", "1"), ("b", "2")]);
        let b = reg.counter_with("pinnsoc_t_total", "help", &[("b", "2"), ("a", "1")]);
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        let c = reg.counter_with("pinnsoc_t_total", "help", &[("a", "2")]);
        assert_ne!(a, c);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("pinnsoc_x", "h");
        reg.gauge("pinnsoc_x", "h");
    }

    #[test]
    fn local_merge_folds_and_clears() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("pinnsoc_c_total", "h");
        let g = reg.gauge("pinnsoc_g", "h");
        let h = reg.histogram("pinnsoc_h_seconds", "h", &[0.1, 1.0]);
        let mut local = reg.local();
        local.add(c, 3);
        local.set(g, 7.5);
        local.observe(h, 0.05);
        local.observe(h, 0.5);
        local.observe(h, 5.0);
        assert!(!local.is_clear());
        reg.merge(&mut local);
        assert!(local.is_clear());
        // Second merge is a no-op.
        reg.merge(&mut local);
        let snap = reg.snapshot();
        match &snap.find("pinnsoc_c_total", &[]).unwrap().value {
            SampleValue::Counter(n) => assert_eq!(*n, 3),
            v => panic!("{v:?}"),
        }
        match &snap.find("pinnsoc_g", &[]).unwrap().value {
            SampleValue::Gauge(v) => assert_eq!(*v, 7.5),
            v => panic!("{v:?}"),
        }
        match &snap.find("pinnsoc_h_seconds", &[]).unwrap().value {
            SampleValue::Histogram(hist) => {
                assert_eq!(hist.counts, vec![1, 1, 1]);
                assert_eq!(hist.count, 3);
                assert!((hist.sum - 5.55).abs() < 1e-12);
            }
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn gauge_merge_without_set_preserves_shared_value() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("pinnsoc_g", "h");
        reg.set(g, 42.0);
        let mut local = reg.local();
        reg.merge(&mut local);
        match &reg.snapshot().find("pinnsoc_g", &[]).unwrap().value {
            SampleValue::Gauge(v) => assert_eq!(*v, 42.0),
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("pinnsoc_h", "h", &[1.0, 2.0, 4.0]);
        for _ in 0..50 {
            reg.observe(h, 0.5);
        }
        for _ in 0..50 {
            reg.observe(h, 3.0);
        }
        let snap = reg.snapshot();
        let SampleValue::Histogram(hist) = &snap.find("pinnsoc_h", &[]).unwrap().value else {
            panic!("not a histogram");
        };
        let p50 = hist.quantile(0.5);
        assert!((0.0..=1.0).contains(&p50), "p50 {p50}");
        let p99 = hist.quantile(0.99);
        assert!((2.0..=4.0).contains(&p99), "p99 {p99}");
        assert!((hist.mean() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = HistogramSnapshot {
            bounds: vec![1.0],
            counts: vec![0, 0],
            sum: 0.0,
            count: 0,
        };
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        // Extreme quantiles of emptiness behave the same.
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn single_bucket_quantiles_interpolate_from_zero() {
        // All mass in the one finite bucket [0, 2]: interpolation walks
        // the bucket linearly, with q=0 pinned to the lower edge and q=1
        // to the upper bound.
        let h = HistogramSnapshot {
            bounds: vec![2.0],
            counts: vec![8, 0],
            sum: 8.0,
            count: 8,
        };
        assert_eq!(h.quantile(0.0), 0.0);
        assert!((h.quantile(0.5) - 1.0).abs() < 1e-12);
        assert!((h.quantile(1.0) - 2.0).abs() < 1e-12);
        assert!((h.mean() - 1.0).abs() < 1e-12);
        // Out-of-range q clamps rather than extrapolating.
        assert_eq!(h.quantile(-0.5), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
    }

    #[test]
    fn overflow_bucket_clamps_quantiles_to_largest_finite_bound() {
        // Every observation beyond the largest finite bound: quantiles
        // clamp to that bound (the +Inf bucket has no upper edge to
        // interpolate toward), while the mean still reflects the true
        // sum — the documented asymmetry of bucketed quantiles.
        let h = HistogramSnapshot {
            bounds: vec![1.0, 2.0],
            counts: vec![0, 0, 10],
            sum: 50.0,
            count: 10,
        };
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(0.99), 2.0);
        assert_eq!(h.quantile(0.0), 2.0);
        assert!((h.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn late_registration_stays_recordable_via_cold_path() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("pinnsoc_a_total", "h");
        let mut local = reg.local();
        let c2 = reg.counter("pinnsoc_b_total", "h");
        local.add(c1, 1);
        reg.add(c2, 2); // new ids use the cold path until a fresh local()
        reg.merge(&mut local);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_total("pinnsoc_a_total"), 1);
        assert_eq!(snap.counter_total("pinnsoc_b_total"), 2);
    }
}
