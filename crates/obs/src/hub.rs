//! The [`ObsHub`]: one shared handle bundling the metrics registry, the
//! recent-events ring, and a monotonic epoch for event timestamps.
//!
//! Subsystems accept an `Arc<ObsHub>` through an `attach_obs` method and
//! register their metrics against [`ObsHub::registry`]; operators read
//! through [`ObsHub::snapshot`] (JSON-serializable) or
//! [`ObsHub::prometheus`]. Both are non-blocking with respect to the
//! tick loop: they clone under mutexes that workers never hold.

use crate::export::prometheus_text;
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::ring::{ObsEvent, RingLog};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default capacity of the recent-events ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// Shared observability handle for one process.
pub struct ObsHub {
    registry: MetricsRegistry,
    events: Mutex<RingLog>,
    created: Instant,
}

impl ObsHub {
    /// Creates a hub with the default event-ring capacity, ready to
    /// share across subsystems.
    pub fn new() -> Arc<Self> {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Creates a hub retaining at most `capacity` recent events.
    pub fn with_event_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            registry: MetricsRegistry::new(),
            events: Mutex::new(RingLog::new(capacity)),
            created: Instant::now(),
        })
    }

    /// The metric registry subsystems register against.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Seconds since the hub was created (monotonic).
    pub fn uptime_s(&self) -> f64 {
        self.created.elapsed().as_secs_f64()
    }

    /// Appends an event to the ring log; returns its sequence number.
    pub fn emit(&self, source: &str, message: impl Into<String>) -> u64 {
        let uptime = self.uptime_s();
        self.events
            .lock()
            .expect("obs event log poisoned")
            .push(uptime, source, message)
    }

    /// Copy of the retained events, oldest first.
    pub fn recent_events(&self) -> Vec<ObsEvent> {
        self.events
            .lock()
            .expect("obs event log poisoned")
            .events()
            .cloned()
            .collect()
    }

    /// Point-in-time copy of all metrics plus the event ring. Safe to
    /// call from any thread at any time; never stalls the tick loop
    /// (workers record into local buffers and never hold hub locks).
    ///
    /// # Contention contract
    ///
    /// The registry is one mutex over a plain value table. Hot-path
    /// writers ([`LocalMetrics`](crate::LocalMetrics)) take it exactly
    /// once per tick boundary, in [`MetricsRegistry::merge`], to fold
    /// their accumulated deltas; per-observation recording never locks.
    /// A reader calling this method (the telemetry plane does, per
    /// scrape) holds the same mutex only for the duration of one clone
    /// of the value table — so the worst a scraper can do to the tick
    /// loop is delay one merge by one clone, microseconds at the sizes
    /// here, and the worst a merge can do to a scraper is symmetric. A
    /// reader can never *block* a merge indefinitely, and because every
    /// histogram's `counts`/`sum`/`count` are folded atomically under
    /// that one lock, a snapshot can never observe a torn histogram
    /// (bucket counts from one merge, `count` from another):
    /// `counts.sum() == count` holds in every snapshot ever taken. The
    /// `readers_never_observe_torn_histograms` test below and the
    /// serve-tier test `crates/serve/tests/http_plane.rs` (live ticks
    /// under a polling scraper) pin this contract.
    ///
    /// [`MetricsRegistry::merge`]: crate::MetricsRegistry::merge
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            uptime_s: self.uptime_s(),
            metrics: self.registry.snapshot(),
            events: self.recent_events(),
        }
    }

    /// Prometheus text exposition of the current metric values. Same
    /// [contention contract](Self::snapshot) as `snapshot`: one brief
    /// clone under the registry mutex, never blocking worker merges and
    /// never exposing torn histograms.
    pub fn prometheus(&self) -> String {
        prometheus_text(&self.registry.snapshot())
    }
}

impl fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsHub")
            .field("metrics", &self.registry.len())
            .field(
                "events",
                &self.events.lock().expect("obs event log poisoned").len(),
            )
            .field("uptime_s", &self.uptime_s())
            .finish()
    }
}

/// Serializable snapshot of the whole hub (JSON export = serialize me).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// Seconds since hub creation when the snapshot was taken.
    pub uptime_s: f64,
    /// All registered metric series and their values.
    pub metrics: MetricsSnapshot,
    /// Retained recent events, oldest first.
    pub events: Vec<ObsEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_bundles_metrics_and_events() {
        let hub = ObsHub::with_event_capacity(2);
        let c = hub.registry().counter("pinnsoc_demo_total", "h");
        hub.registry().add(c, 3);
        hub.emit("fleet", "model swap v1 -> v2");
        hub.emit("adapt", "drift trigger cohort 0");
        hub.emit("adapt", "gate pass");
        let snap = hub.snapshot();
        assert_eq!(snap.metrics.counter_total("pinnsoc_demo_total"), 3);
        assert_eq!(snap.events.len(), 2); // capacity 2, oldest evicted
        assert_eq!(snap.events[0].source, "adapt");
        assert!(snap.uptime_s >= 0.0);
        assert!(hub.prometheus().contains("pinnsoc_demo_total 3"));
        let dbg = format!("{hub:?}");
        assert!(dbg.contains("ObsHub"));
    }

    /// The contention contract of [`ObsHub::snapshot`]: a reader polling
    /// while a worker merges histogram deltas can never observe a torn
    /// histogram. Every merge folds exactly two observations summing to
    /// 3.0 under one lock acquisition, so *any* snapshot — no matter when
    /// it lands relative to the merges — must show an even `count`,
    /// bucket counts summing to `count`, and `sum == 1.5 * count`.
    #[test]
    fn readers_never_observe_torn_histograms() {
        let hub = ObsHub::new();
        let h = hub
            .registry()
            .histogram("pinnsoc_torn_seconds", "h", &[1.0, 2.0]);
        let mut local = hub.registry().local();
        std::thread::scope(|scope| {
            let writer_hub = Arc::clone(&hub);
            scope.spawn(move || {
                for _ in 0..2000 {
                    local.observe(h, 0.5);
                    local.observe(h, 2.5);
                    writer_hub.registry().merge(&mut local);
                }
            });
            for _ in 0..500 {
                let snap = hub.snapshot();
                let sample = snap
                    .metrics
                    .metrics
                    .iter()
                    .find(|m| m.name == "pinnsoc_torn_seconds")
                    .expect("registered series");
                let crate::metrics::SampleValue::Histogram(hist) = &sample.value else {
                    panic!("histogram sample expected");
                };
                assert_eq!(hist.count % 2, 0, "merge folds whole pairs or nothing");
                assert_eq!(
                    hist.counts.iter().sum::<u64>(),
                    hist.count,
                    "bucket counts and count always agree"
                );
                assert!(
                    (hist.sum - 1.5 * hist.count as f64).abs() < 1e-9,
                    "sum tracks count atomically (sum {}, count {})",
                    hist.sum,
                    hist.count
                );
            }
        });
        let final_snap = hub.snapshot();
        let sample = final_snap
            .metrics
            .metrics
            .iter()
            .find(|m| m.name == "pinnsoc_torn_seconds")
            .expect("registered series");
        let crate::metrics::SampleValue::Histogram(hist) = &sample.value else {
            panic!("histogram sample expected");
        };
        assert_eq!(hist.count, 4000);
    }

    #[test]
    fn snapshot_is_concurrency_safe() {
        let hub = ObsHub::new();
        let c = hub.registry().counter("pinnsoc_c_total", "h");
        std::thread::scope(|scope| {
            let h2 = Arc::clone(&hub);
            scope.spawn(move || {
                for _ in 0..100 {
                    h2.registry().add(c, 1);
                    h2.emit("t", "tick");
                }
            });
            for _ in 0..50 {
                let _ = hub.snapshot();
                let _ = hub.prometheus();
            }
        });
        assert_eq!(hub.snapshot().metrics.counter_total("pinnsoc_c_total"), 100);
    }
}
