//! # pinnsoc-obs
//!
//! Zero-overhead-when-off observability for the `pinnsoc` workspace: a
//! std-only metrics + tracing subsystem wired through every layer of the
//! stack (fleet serving, the worker-pool runtime, training, scenario
//! replay, and online adaptation).
//!
//! The source paper pitches the coupled NN+physics estimator for
//! resource-constrained BMS deployment, so instrumentation here obeys two
//! hard rules:
//!
//! 1. **Never perturb the bit-exactness contract.** Instrumentation only
//!    *reads* timings and counts; it never reorders work, never touches
//!    RNG state, and never changes float arithmetic. `obs_baseline`
//!    (in `pinnsoc-bench`) asserts fleet estimates, scenario reports, and
//!    adapt promotion decisions are bit-identical with observability on
//!    vs off.
//! 2. **Near-zero cost, zero when off.** Hot paths record into
//!    [`LocalMetrics`] — plain `u64`/`f64` slots owned by one shard or
//!    worker, merged into the shared [`MetricsRegistry`] at tick
//!    boundaries by the coordinating thread. No atomics on the hot path,
//!    no locks held by workers. When observability is not attached, the
//!    instrumented code sees the no-op [`Recorder`] and compiles down to
//!    nothing.
//!
//! ## Pieces
//!
//! - [`MetricsRegistry`]: named counters, gauges, and fixed-bucket
//!   histograms. Registration is idempotent (same name + labels + kind
//!   returns the same [`MetricId`]), so per-run re-registration — e.g. a
//!   scenario runner building a pool per call — is safe and cheap.
//! - [`LocalMetrics`] + [`Recorder`]: lock-free per-shard/per-worker
//!   accumulation with a no-op default implementation.
//! - [`SpanTimer`] / [`span`]: monotonic span timing around tick stages,
//!   pool runs, training epochs, scenario runs, and adapt rounds;
//!   durations land in histograms with [`HistogramSnapshot::quantile`]
//!   (p50/p99) read-out.
//! - [`RingLog`] / [`ObsEvent`]: a fixed-capacity recent-events log for
//!   post-mortems (model swaps, drift triggers, gate verdicts, worker
//!   panics).
//! - [`prometheus_text`] and serde JSON snapshots behind a non-blocking
//!   [`ObsHub::snapshot`] that never stalls the tick loop.
//! - [`alloc_hook`]: an installable allocation-counter hook so crates
//!   without a `#[global_allocator]` of their own can still report alloc
//!   deltas when a bench bin installs a counting allocator.
//! - [`FlightRecorder`] / [`TraceSink`]: bounded causal span tracing
//!   (tick → engine lane → stage → worker) recorded into per-thread
//!   buffers merged at tick boundaries, exported as Chrome trace-event
//!   JSON for Perfetto. Zero clock reads when disabled.
//! - [`SloTracker`]: multi-window (fast/slow) burn-rate tracking with an
//!   ok → warning → page alert state machine.
//! - [`TelemetryPlane`]: a std-only single-thread HTTP server exposing
//!   `/metrics`, `/snapshot.json`, `/trace.json`, `/healthz`, and
//!   `/readyz` — health wired through the [`HealthSource`] trait.
//!
//! ## Metric naming scheme
//!
//! `pinnsoc_<subsystem>_<name>_<unit>`, e.g.
//! `pinnsoc_fleet_stage_seconds{stage="gemm"}`,
//! `pinnsoc_runtime_pool_queue_depth{pool="fleet"}`,
//! `pinnsoc_train_epoch_loss`, `pinnsoc_adapt_drift_score{cohort="3"}`.
//! Units are spelled out in the name (`_seconds`, `_bytes`, `_total` for
//! counters) following the Prometheus convention.

pub mod alloc_hook;
pub mod export;
pub mod hub;
pub mod metrics;
pub mod plane;
pub mod recorder;
pub mod ring;
pub mod slo;
pub mod span;
pub mod trace;

pub use export::prometheus_text;
pub use hub::{ObsHub, ObsSnapshot};
pub use metrics::{
    HistogramSnapshot, LocalMetrics, MetricId, MetricKind, MetricSample, MetricsRegistry,
    MetricsSnapshot, SampleValue,
};
pub use plane::{http_get, HealthReport, HealthSource, HealthStatus, PlaneConfig, TelemetryPlane};
pub use recorder::{NoopRecorder, Recorder};
pub use ring::{ObsEvent, RingLog};
pub use slo::{AlertState, SloSpec, SloStatus, SloTracker, SloTransition};
pub use span::{span, Span, SpanTimer};
pub use trace::{
    chrome_trace_json, current_thread_tid, FlightRecorder, SpanId, TraceSink, TraceSpan,
    DEFAULT_TRACE_CAPACITY,
};

/// Default histogram buckets for sub-second stage/pass durations (seconds).
///
/// Geometric-ish ladder from 1 µs to ~1 s; the fleet engine's per-stage
/// times at smoke sizes sit in the tens-of-µs to low-ms range.
pub const DURATION_BUCKETS: &[f64] = &[
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 1e-1, 2.5e-1, 5e-1, 1.0,
];

/// Default histogram buckets for dimensionless small counts (queue depths,
/// batch fill levels).
pub const COUNT_BUCKETS: &[f64] = &[
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
];
