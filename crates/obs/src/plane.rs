//! The HTTP telemetry plane: a std-only, single-thread TCP server that
//! exposes the hub, the flight recorder, and live health over plain
//! HTTP/1.1 — the first slice of ROADMAP item 3's network front end.
//!
//! Endpoints:
//!
//! | Path             | Content                                           |
//! |------------------|---------------------------------------------------|
//! | `/metrics`       | Prometheus text exposition ([`ObsHub::prometheus`]) |
//! | `/snapshot.json` | Full [`ObsSnapshot`] as JSON                      |
//! | `/trace.json`    | Flight-recorder drain as Chrome trace JSON        |
//! | `/healthz`       | Liveness + detail (200 ok/degraded, 503 page)     |
//! | `/readyz`        | Readiness (200 when any lane can serve, else 503) |
//!
//! Same engineering discipline as the WAL and ingest-ring work: no new
//! dependencies, one accept-loop thread, bounded request reads, explicit
//! shutdown. The server thread only ever *reads* through the same
//! non-blocking paths operators already use ([`ObsHub::snapshot`] /
//! [`ObsHub::prometheus`] clone under mutexes workers never hold), so
//! polling the plane during a live serve-tier tick cannot stall a worker
//! merge — `crates/serve/tests/http_plane.rs` asserts this against a
//! real tier under load.
//!
//! `/healthz` vs `/readyz`: health reports *how well* the process is
//! doing (SLO states, per-lane detail); readiness answers the binary
//! "should a load balancer route here". A crashed-but-buffering lane
//! degrades health but leaves readiness up as long as any lane serves —
//! refusing all traffic because one lane is mid-recovery would turn a
//! partial outage into a total one.

use crate::hub::ObsHub;
use crate::trace::FlightRecorder;
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Overall health verdict reported by `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum HealthStatus {
    /// Everything nominal.
    Ok,
    /// Serving, but impaired — a lane is down-but-buffering or an SLO is
    /// in warning. `/healthz` still returns 200 so orchestrators don't
    /// restart a self-healing process.
    Degraded,
    /// A paging condition — `/healthz` returns 503.
    Page,
}

impl HealthStatus {
    /// Stable lowercase name used in the JSON body.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Page => "page",
        }
    }
}

/// One health probe result: the verdict, binary readiness, and a
/// free-form JSON detail document (lane states, SLO burns).
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Overall verdict.
    pub status: HealthStatus,
    /// Whether the process should receive traffic.
    pub ready: bool,
    /// JSON detail embedded verbatim in the `/healthz` body (must be a
    /// valid JSON value; use `"{}"` when there is nothing to say).
    pub detail_json: String,
}

impl HealthReport {
    /// An always-healthy report with no detail — the default when no
    /// health source is wired.
    pub fn healthy() -> Self {
        HealthReport {
            status: HealthStatus::Ok,
            ready: true,
            detail_json: "{}".to_string(),
        }
    }
}

/// Anything that can answer a health probe — the serve tier's
/// `HealthBoard` implements this; the plane holds it as a trait object
/// so `pinnsoc-obs` needs no dependency on `pinnsoc-serve`.
pub trait HealthSource: Send + Sync {
    /// Produces the current health report. Called on the server thread
    /// per probe; must not block on tick-loop locks.
    fn health(&self) -> HealthReport;
}

/// Builder-style configuration for [`TelemetryPlane::bind`].
#[derive(Default)]
pub struct PlaneConfig {
    /// Flight recorder backing `/trace.json` (404 when absent).
    pub recorder: Option<Arc<FlightRecorder>>,
    /// `process_name` metadata for `/trace.json` — `(pid, name)` pairs so
    /// Perfetto labels the serve tier and each engine lane (the serve
    /// tier's `trace_process_names()` produces these).
    pub process_names: Vec<(u32, String)>,
    /// Health source backing `/healthz` and `/readyz` (always-healthy
    /// when absent).
    pub health: Option<Arc<dyn HealthSource>>,
}

/// The running telemetry server: owns the accept-loop thread, shuts down
/// on [`stop`](Self::stop) or drop.
pub struct TelemetryPlane {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Largest request head the server will read before answering 400 —
/// telemetry probes are tiny; anything bigger is not ours.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: a stalled scraper must not wedge the
/// single server thread.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

impl TelemetryPlane {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on one background thread.
    pub fn bind(
        addr: impl std::net::ToSocketAddrs,
        hub: Arc<ObsHub>,
        config: PlaneConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pinnsoc-telemetry".to_string())
            .spawn(move || {
                serve_loop(&listener, &stop_flag, &hub, &config);
            })?;
        Ok(TelemetryPlane {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves the actual port when bound with 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in accept(); poke it awake with a
        // throwaway connection so it can observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryPlane {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for TelemetryPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryPlane")
            .field("addr", &self.addr)
            .field("stopped", &self.stop.load(Ordering::SeqCst))
            .finish()
    }
}

fn serve_loop(listener: &TcpListener, stop: &AtomicBool, hub: &Arc<ObsHub>, config: &PlaneConfig) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // One connection at a time, fully handled before the next accept:
        // a telemetry plane has a handful of scrapers, not a fleet of
        // clients, and single-threading keeps the server trivially
        // correct. Errors on one connection never take the loop down.
        let _ = handle_connection(stream, hub, config);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    hub: &Arc<ObsHub>,
    config: &PlaneConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let path = match read_request_path(&mut stream) {
        Ok(Some(path)) => path,
        Ok(None) => {
            write_response(&mut stream, 400, "text/plain", "bad request\n")?;
            return Ok(());
        }
        Err(e) => return Err(e),
    };
    match path.as_str() {
        "/metrics" => {
            let body = hub.prometheus();
            write_response(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/snapshot.json" => {
            let body = serde_json::to_string(&hub.snapshot())
                .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
            write_response(&mut stream, 200, "application/json", &body)
        }
        "/trace.json" => match &config.recorder {
            Some(recorder) => {
                let body = recorder.drain_chrome_json(&config.process_names);
                write_response(&mut stream, 200, "application/json", &body)
            }
            None => write_response(
                &mut stream,
                404,
                "text/plain",
                "no flight recorder attached\n",
            ),
        },
        "/healthz" => {
            let report = probe(config);
            let code = match report.status {
                HealthStatus::Ok | HealthStatus::Degraded => 200,
                HealthStatus::Page => 503,
            };
            let body = format!(
                "{{\"status\":\"{}\",\"ready\":{},\"detail\":{}}}",
                report.status.as_str(),
                report.ready,
                report.detail_json
            );
            write_response(&mut stream, code, "application/json", &body)
        }
        "/readyz" => {
            let report = probe(config);
            if report.ready {
                write_response(&mut stream, 200, "text/plain", "ready\n")
            } else {
                write_response(&mut stream, 503, "text/plain", "not ready\n")
            }
        }
        _ => write_response(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn probe(config: &PlaneConfig) -> HealthReport {
    config
        .health
        .as_ref()
        .map(|h| h.health())
        .unwrap_or_else(HealthReport::healthy)
}

/// Reads the request head and extracts the path from the request line
/// (`GET /metrics HTTP/1.1`). Returns `Ok(None)` on malformed input.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        // Head complete once the blank line arrives; we ignore bodies.
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" || !path.starts_with('/') {
        return Ok(None);
    }
    // Strip any query string; endpoints take no parameters.
    let path = path.split('?').next().unwrap_or(path);
    Ok(Some(path.to_string()))
}

fn write_response(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "OK",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let _ = stream.shutdown(Shutdown::Both);
    Ok(())
}

/// Minimal blocking GET against a plane endpoint, for tests, examples,
/// and CI smokes — returns `(status_code, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FlightRecorder;
    use std::time::Instant;

    fn plane_with(config: PlaneConfig) -> (TelemetryPlane, Arc<ObsHub>) {
        let hub = ObsHub::new();
        let c = hub.registry().counter("pinnsoc_plane_demo_total", "demo");
        hub.registry().add(c, 7);
        let plane =
            TelemetryPlane::bind("127.0.0.1:0", Arc::clone(&hub), config).expect("bind plane");
        (plane, hub)
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (plane, _hub) = plane_with(PlaneConfig::default());
        let (code, body) = http_get(plane.addr(), "/metrics").expect("GET /metrics");
        assert_eq!(code, 200);
        assert!(body.contains("pinnsoc_plane_demo_total 7"));
        assert!(body.contains("# TYPE pinnsoc_plane_demo_total counter"));
    }

    #[test]
    fn snapshot_endpoint_serves_json() {
        let (plane, _hub) = plane_with(PlaneConfig::default());
        let (code, body) = http_get(plane.addr(), "/snapshot.json").expect("GET /snapshot.json");
        assert_eq!(code, 200);
        let v: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
        assert!(v["uptime_s"].as_f64().expect("uptime") >= 0.0);
    }

    #[test]
    fn trace_endpoint_drains_recorder_and_404s_without_one() {
        let recorder = FlightRecorder::new(64);
        let mut sink = recorder.sink();
        let t0 = Instant::now();
        sink.record("tick", "serve", 0, 0, 0, t0, t0 + Duration::from_micros(50));
        recorder.merge(&mut sink);
        let (plane, _hub) = plane_with(PlaneConfig {
            recorder: Some(Arc::clone(&recorder)),
            ..PlaneConfig::default()
        });
        let (code, body) = http_get(plane.addr(), "/trace.json").expect("GET /trace.json");
        assert_eq!(code, 200);
        let v: serde_json::Value = serde_json::from_str(&body).expect("valid trace JSON");
        assert_eq!(
            v["traceEvents"].as_array().expect("events").len(),
            1,
            "one recorded span drained"
        );
        // Drain semantics: a second export window is empty.
        let (_, body2) = http_get(plane.addr(), "/trace.json").expect("second GET");
        let v2: serde_json::Value = serde_json::from_str(&body2).expect("valid JSON");
        assert!(v2["traceEvents"].as_array().expect("events").is_empty());

        let (bare, _hub) = plane_with(PlaneConfig::default());
        let (code, _) = http_get(bare.addr(), "/trace.json").expect("GET bare /trace.json");
        assert_eq!(code, 404);
    }

    #[test]
    fn health_endpoints_reflect_the_source() {
        struct Flaky(AtomicBool);
        impl HealthSource for Flaky {
            fn health(&self) -> HealthReport {
                if self.0.load(Ordering::SeqCst) {
                    HealthReport {
                        status: HealthStatus::Page,
                        ready: false,
                        detail_json: "{\"lanes_up\":0}".to_string(),
                    }
                } else {
                    HealthReport {
                        status: HealthStatus::Degraded,
                        ready: true,
                        detail_json: "{\"lanes_up\":1}".to_string(),
                    }
                }
            }
        }
        let source = Arc::new(Flaky(AtomicBool::new(false)));
        let (plane, _hub) = plane_with(PlaneConfig {
            health: Some(Arc::clone(&source) as Arc<dyn HealthSource>),
            ..PlaneConfig::default()
        });
        // Degraded still answers 200 (and stays ready).
        let (code, body) = http_get(plane.addr(), "/healthz").expect("GET /healthz");
        assert_eq!(code, 200);
        let v: serde_json::Value = serde_json::from_str(&body).expect("health JSON");
        assert_eq!(v["status"], "degraded");
        assert_eq!(v["detail"]["lanes_up"], 1);
        let (code, _) = http_get(plane.addr(), "/readyz").expect("GET /readyz");
        assert_eq!(code, 200);
        // Page flips /healthz and /readyz to 503.
        source.0.store(true, Ordering::SeqCst);
        let (code, _) = http_get(plane.addr(), "/healthz").expect("GET paged /healthz");
        assert_eq!(code, 503);
        let (code, body) = http_get(plane.addr(), "/readyz").expect("GET paged /readyz");
        assert_eq!(code, 503);
        assert!(body.contains("not ready"));
    }

    #[test]
    fn unknown_path_is_404_and_bad_request_is_400() {
        let (plane, _hub) = plane_with(PlaneConfig::default());
        let (code, _) = http_get(plane.addr(), "/nope").expect("GET /nope");
        assert_eq!(code, 404);
        // Hand-rolled non-GET request.
        let mut stream = TcpStream::connect(plane.addr()).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn stop_is_idempotent_and_drop_shuts_down() {
        let (mut plane, _hub) = plane_with(PlaneConfig::default());
        let addr = plane.addr();
        plane.stop();
        plane.stop();
        drop(plane);
        // After shutdown the port no longer serves.
        assert!(
            http_get(addr, "/metrics").is_err() || {
                // A lingering TIME_WAIT accept can race; a refused or
                // empty response both count as "down".
                let (code, _) = http_get(addr, "/metrics").unwrap_or((0, String::new()));
                code == 0
            }
        );
    }
}
