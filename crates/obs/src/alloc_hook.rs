//! Installable allocation-counter hook.
//!
//! Rust allows exactly one `#[global_allocator]` per binary, and in this
//! workspace the counting allocator lives in bench bins (e.g.
//! `train_baseline`, `obs_baseline`) rather than in a library. Library
//! code that wants to report allocation deltas (training epoch
//! instrumentation) therefore reads through this hook: the binary that
//! owns the counting allocator installs its `alloc_count` function at
//! startup, and everything else sees `None` and skips the metric.

use std::sync::OnceLock;

static HOOK: OnceLock<fn() -> u64> = OnceLock::new();

/// Installs the process-wide allocation counter. First caller wins;
/// later calls are ignored (returns whether this call installed it).
pub fn install(counter: fn() -> u64) -> bool {
    HOOK.set(counter).is_ok()
}

/// Current allocation count, if a counting allocator registered itself.
pub fn current() -> Option<u64> {
    HOOK.get().map(|f| f())
}

/// True once a counter is installed.
pub fn installed() -> bool {
    HOOK.get().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_count() -> u64 {
        42
    }

    #[test]
    fn install_is_first_wins_and_current_reads_through() {
        // Tests in one binary share the static, so tolerate either order.
        if install(fake_count) {
            assert_eq!(current(), Some(42));
        }
        assert!(installed());
        assert!(current().is_some());
        // Second install is ignored but reports false.
        assert!(!install(fake_count));
    }
}
