//! Structured span timing with monotonic timestamps.
//!
//! Two shapes, both backed by [`std::time::Instant`]:
//!
//! - [`SpanTimer`]: explicit start/stop for code that wants to decide
//!   where the elapsed time goes (e.g. choosing a histogram per stage).
//! - [`span`]: an RAII guard that records elapsed seconds into one
//!   histogram when dropped — `span!`-style without a macro.
//!
//! Neither reads the clock when the recorder is not live, so disabled
//! instrumentation skips even the `Instant::now()` syscall-ish cost.

use crate::metrics::MetricId;
use crate::recorder::Recorder;
use std::time::Instant;

/// Explicit monotonic stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    start: Instant,
}

impl SpanTimer {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`SpanTimer::start`].
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Records the elapsed seconds into `id` and returns them.
    pub fn finish<R: Recorder>(self, rec: &mut R, id: MetricId) -> f64 {
        let s = self.elapsed_s();
        rec.observe(id, s);
        s
    }
}

/// RAII span: times from construction to drop, recording seconds into a
/// histogram. Construct via [`span`].
#[derive(Debug)]
pub struct Span<'a, R: Recorder> {
    rec: &'a mut R,
    id: MetricId,
    start: Option<Instant>,
}

/// Opens a span over `rec`; when the guard drops, the elapsed seconds
/// land in histogram `id`. If `rec` is not live the clock is never read.
pub fn span<R: Recorder>(rec: &mut R, id: MetricId) -> Span<'_, R> {
    let start = rec.is_live().then(Instant::now);
    Span { rec, id, start }
}

impl<R: Recorder> Drop for Span<'_, R> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.rec.observe(self.id, start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsRegistry, SampleValue};
    use crate::recorder::NoopRecorder;

    #[test]
    fn span_records_elapsed_seconds_on_drop() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("pinnsoc_span_seconds", "h", &[1.0]);
        let mut local = reg.local();
        {
            let _guard = span(&mut local, h);
            std::hint::black_box(());
        }
        reg.merge(&mut local);
        let snap = reg.snapshot();
        let SampleValue::Histogram(hist) = &snap.find("pinnsoc_span_seconds", &[]).unwrap().value
        else {
            panic!("not a histogram");
        };
        assert_eq!(hist.count, 1);
        assert!(hist.sum >= 0.0);
    }

    #[test]
    fn span_over_noop_never_starts_the_clock() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("pinnsoc_span_seconds", "h", &[1.0]);
        let mut rec = NoopRecorder;
        let guard = span(&mut rec, h);
        assert!(guard.start.is_none());
    }

    #[test]
    fn timer_finish_reports_duration() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("pinnsoc_t_seconds", "h", &[1.0]);
        let mut local = reg.local();
        let t = SpanTimer::start();
        let s = t.finish(&mut local, h);
        assert!(s >= 0.0);
        reg.merge(&mut local);
        let snap = reg.snapshot();
        let SampleValue::Histogram(hist) = &snap.find("pinnsoc_t_seconds", &[]).unwrap().value
        else {
            panic!("not a histogram");
        };
        assert_eq!(hist.count, 1);
    }
}
