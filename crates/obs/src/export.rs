//! Exporters: Prometheus text exposition format (version 0.0.4).
//!
//! JSON export is just `serde_json::to_string(&hub.snapshot())` at the
//! call site; this module owns the hand-rolled text format because the
//! workspace vendors no Prometheus client.

use crate::metrics::{MetricsSnapshot, SampleValue};
use std::fmt::Write;

/// Renders a snapshot in the Prometheus text exposition format:
/// `# HELP` / `# TYPE` headers once per metric name, then one line per
/// series, with histogram series expanded into cumulative `_bucket`
/// lines plus `_sum` and `_count`.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    // Snapshot order groups equal names only if registered adjacently;
    // sort indices by name so HELP/TYPE headers are emitted once each.
    let mut order: Vec<usize> = (0..snapshot.metrics.len()).collect();
    order.sort_by(|&a, &b| snapshot.metrics[a].name.cmp(&snapshot.metrics[b].name));
    for i in order {
        let m = &snapshot.metrics[i];
        if last_name != Some(m.name.as_str()) {
            let _ = writeln!(out, "# HELP {} {}", m.name, escape_help(&m.help));
            let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind.as_str());
            last_name = Some(m.name.as_str());
        }
        match &m.value {
            SampleValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {v}", m.name, render_labels(&m.labels, None));
            }
            SampleValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    m.name,
                    render_labels(&m.labels, None),
                    fmt_f64(*v)
                );
            }
            SampleValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (j, c) in h.counts.iter().enumerate() {
                    cumulative += c;
                    let le = match h.bounds.get(j) {
                        Some(b) => fmt_f64(*b),
                        None => "+Inf".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cumulative}",
                        m.name,
                        render_labels(&m.labels, Some(&le))
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    m.name,
                    render_labels(&m.labels, None),
                    fmt_f64(h.sum)
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    m.name,
                    render_labels(&m.labels, None),
                    h.count
                );
            }
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Prometheus-friendly float rendering: integers print bare, everything
/// else via the shortest roundtrip `{}` formatting.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::DURATION_BUCKETS;

    #[test]
    fn exposition_has_headers_series_and_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        let c = reg.counter_with("pinnsoc_ticks_total", "Ticks.", &[("pool", "fleet")]);
        let g = reg.gauge("pinnsoc_cells", "Cells tracked.");
        let h = reg.histogram("pinnsoc_pass_seconds", "Pass wall time.", &[0.1, 1.0]);
        reg.add(c, 7);
        reg.set(g, 1234.0);
        reg.observe(h, 0.05);
        reg.observe(h, 0.5);
        reg.observe(h, 2.0);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# HELP pinnsoc_ticks_total Ticks."));
        assert!(text.contains("# TYPE pinnsoc_ticks_total counter"));
        assert!(text.contains("pinnsoc_ticks_total{pool=\"fleet\"} 7"));
        assert!(text.contains("pinnsoc_cells 1234"));
        assert!(text.contains("pinnsoc_pass_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("pinnsoc_pass_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("pinnsoc_pass_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("pinnsoc_pass_seconds_sum 2.55"));
        assert!(text.contains("pinnsoc_pass_seconds_count 3"));
    }

    #[test]
    fn help_and_type_emitted_once_per_name_across_label_sets() {
        let reg = MetricsRegistry::new();
        for stage in ["coalesce", "gemm"] {
            let id = reg.histogram_with(
                "pinnsoc_fleet_stage_seconds",
                "Stage time.",
                &[("stage", stage)],
                DURATION_BUCKETS,
            );
            reg.observe(id, 0.001);
        }
        let text = prometheus_text(&reg.snapshot());
        assert_eq!(
            text.matches("# TYPE pinnsoc_fleet_stage_seconds").count(),
            1
        );
        assert!(text.contains("stage=\"coalesce\""));
        assert!(text.contains("stage=\"gemm\""));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        let c = reg.counter_with("pinnsoc_x_total", "h", &[("name", "a\"b\\c")]);
        reg.add(c, 1);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("name=\"a\\\"b\\\\c\""));
    }
}
