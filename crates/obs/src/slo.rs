//! Multi-window burn-rate SLO tracking with an ok → warning → page alert
//! state machine.
//!
//! An SLO is "at most `budget` of events may be bad". The tracker keeps
//! two rolling windows over per-tick good/bad counts — a *fast* window
//! that reacts within a few ticks and a *slow* window that filters
//! transients — and computes each window's **burn rate**: the observed
//! bad fraction divided by the budget. Burn 1.0 means the budget is being
//! consumed exactly as fast as allowed; burn 10 means ten times too fast.
//!
//! The classic multi-window rule: an alert level is reached only when
//! **both** windows burn above its threshold — the fast window proves the
//! problem is happening *now*, the slow window proves it is not a blip.
//! Recovery is the same test in reverse (both windows must drop below the
//! level's threshold), which gives natural hysteresis: a paging SLO stays
//! paged until the slow window has genuinely drained.
//!
//! The serve tier feeds one tracker per SLO
//! ([latency](https://sre.google/workbook/alerting-on-slos/)-style:
//! bad = estimate latency over threshold; delivery-style: bad = frames
//! refused by backpressure) and surfaces the state as gauges, ring
//! events, and `/healthz` detail.

use serde::Serialize;
use std::collections::VecDeque;

/// Alert level of one SLO, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertState {
    /// Burn below the warning threshold in at least one window.
    Ok,
    /// Both windows burn at ≥ the warn threshold.
    Warning,
    /// Both windows burn at ≥ the page threshold.
    Page,
}

impl AlertState {
    /// Stable lowercase name (gauge values map Ok=0, Warning=1, Page=2).
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Warning => "warning",
            AlertState::Page => "page",
        }
    }

    /// Numeric severity for gauges: 0 = ok, 1 = warning, 2 = page.
    pub fn severity(&self) -> f64 {
        match self {
            AlertState::Ok => 0.0,
            AlertState::Warning => 1.0,
            AlertState::Page => 2.0,
        }
    }
}

// Serialized as the stable lowercase name (manual: the vendored derive
// keeps Rust variant casing).
impl Serialize for AlertState {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

/// Static definition of one SLO: its error budget and the two alerting
/// windows with their burn thresholds.
#[derive(Debug, Clone, Serialize)]
pub struct SloSpec {
    /// Short stable name (label value), e.g. `latency`, `delivery`.
    pub name: &'static str,
    /// Allowed bad fraction, in (0, 1] — e.g. `0.05` = "95% of estimates
    /// within the latency threshold".
    pub budget: f64,
    /// Fast window length in ticks (reacts quickly).
    pub fast_window: usize,
    /// Slow window length in ticks (filters transients); usually several
    /// times the fast window.
    pub slow_window: usize,
    /// Burn rate at or above which both windows trigger `Warning`.
    pub warn_burn: f64,
    /// Burn rate at or above which both windows trigger `Page`.
    pub page_burn: f64,
}

impl SloSpec {
    /// A latency-style SLO tuned for serve-tier tick cadence: 5% budget,
    /// 8-tick fast / 64-tick slow windows, warn at 2× burn, page at 10×.
    pub fn latency_default() -> Self {
        SloSpec {
            name: "latency",
            budget: 0.05,
            fast_window: 8,
            slow_window: 64,
            warn_burn: 2.0,
            page_burn: 10.0,
        }
    }

    /// A delivery-style SLO (backpressure/reject fraction): 1% budget,
    /// same windows, warn at 2× burn, page at 10×.
    pub fn delivery_default() -> Self {
        SloSpec {
            name: "delivery",
            budget: 0.01,
            fast_window: 8,
            slow_window: 64,
            warn_burn: 2.0,
            page_burn: 10.0,
        }
    }
}

/// One rolling window of per-tick (good, bad) counts with running sums.
#[derive(Debug)]
struct Window {
    len: usize,
    ticks: VecDeque<(u64, u64)>,
    good: u64,
    bad: u64,
}

impl Window {
    fn new(len: usize) -> Self {
        Window {
            len: len.max(1),
            ticks: VecDeque::new(),
            good: 0,
            bad: 0,
        }
    }

    fn push(&mut self, good: u64, bad: u64) {
        if self.ticks.len() == self.len {
            let (g, b) = self.ticks.pop_front().expect("non-empty at capacity");
            self.good -= g;
            self.bad -= b;
        }
        self.ticks.push_back((good, bad));
        self.good += good;
        self.bad += bad;
    }

    /// Observed bad fraction over the window; 0 when no events landed
    /// (an idle window is healthy, not unknown).
    fn bad_fraction(&self) -> f64 {
        let total = self.good + self.bad;
        if total == 0 {
            0.0
        } else {
            self.bad as f64 / total as f64
        }
    }
}

/// One recorded ok → warning → page (or back) transition.
#[derive(Debug, Clone, Serialize)]
pub struct SloTransition {
    /// Tick index at which the transition happened (caller-supplied).
    pub tick: u64,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
    /// Fast-window burn rate at the transition.
    pub fast_burn: f64,
    /// Slow-window burn rate at the transition.
    pub slow_burn: f64,
}

/// Point-in-time status of one tracker, for `/healthz` detail and bench
/// output.
#[derive(Debug, Clone, Serialize)]
pub struct SloStatus {
    /// The SLO's name.
    pub name: &'static str,
    /// Current alert state.
    pub state: AlertState,
    /// Current fast-window burn rate.
    pub fast_burn: f64,
    /// Current slow-window burn rate.
    pub slow_burn: f64,
}

/// Rolling burn-rate tracker for one SLO.
#[derive(Debug)]
pub struct SloTracker {
    spec: SloSpec,
    fast: Window,
    slow: Window,
    state: AlertState,
    worst_fast_burn: f64,
    transitions: Vec<SloTransition>,
}

/// Cap on retained transitions — a flapping SLO must not grow memory
/// unboundedly; the latest transitions are the interesting ones anyway.
const MAX_TRANSITIONS: usize = 256;

impl SloTracker {
    /// Builds a tracker from its spec.
    pub fn new(spec: SloSpec) -> Self {
        let fast = Window::new(spec.fast_window);
        let slow = Window::new(spec.slow_window);
        SloTracker {
            spec,
            fast,
            slow,
            state: AlertState::Ok,
            worst_fast_burn: 0.0,
            transitions: Vec::new(),
        }
    }

    /// The spec this tracker enforces.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Feeds one tick's good/bad counts and re-evaluates the alert state.
    /// Returns the transition if the state changed.
    pub fn observe(&mut self, tick: u64, good: u64, bad: u64) -> Option<SloTransition> {
        self.fast.push(good, bad);
        self.slow.push(good, bad);
        let fast_burn = self.fast_burn();
        let slow_burn = self.slow_burn();
        self.worst_fast_burn = self.worst_fast_burn.max(fast_burn);
        // Both windows must agree on the level — min() is the burn both
        // windows are at or above.
        let agreed = fast_burn.min(slow_burn);
        let next = if agreed >= self.spec.page_burn {
            AlertState::Page
        } else if agreed >= self.spec.warn_burn {
            AlertState::Warning
        } else {
            AlertState::Ok
        };
        if next == self.state {
            return None;
        }
        let transition = SloTransition {
            tick,
            from: self.state,
            to: next,
            fast_burn,
            slow_burn,
        };
        self.state = next;
        if self.transitions.len() < MAX_TRANSITIONS {
            self.transitions.push(transition.clone());
        }
        Some(transition)
    }

    /// Current alert state.
    pub fn state(&self) -> AlertState {
        self.state
    }

    /// Current fast-window burn rate (bad fraction ÷ budget).
    pub fn fast_burn(&self) -> f64 {
        self.fast.bad_fraction() / self.spec.budget
    }

    /// Current slow-window burn rate.
    pub fn slow_burn(&self) -> f64 {
        self.slow.bad_fraction() / self.spec.budget
    }

    /// Highest fast-window burn rate ever observed.
    pub fn worst_fast_burn(&self) -> f64 {
        self.worst_fast_burn
    }

    /// Every recorded state transition (capped at 256).
    pub fn transitions(&self) -> &[SloTransition] {
        &self.transitions
    }

    /// Point-in-time status snapshot.
    pub fn status(&self) -> SloStatus {
        SloStatus {
            name: self.spec.name,
            state: self.state,
            fast_burn: self.fast_burn(),
            slow_burn: self.slow_burn(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(fast: usize, slow: usize) -> SloSpec {
        SloSpec {
            name: "test",
            budget: 0.1,
            fast_window: fast,
            slow_window: slow,
            warn_burn: 2.0,
            page_burn: 8.0,
        }
    }

    #[test]
    fn idle_windows_burn_zero() {
        let mut t = SloTracker::new(spec(4, 16));
        assert_eq!(t.state(), AlertState::Ok);
        assert_eq!(t.fast_burn(), 0.0);
        assert!(t.observe(0, 0, 0).is_none());
        assert_eq!(t.state(), AlertState::Ok);
    }

    #[test]
    fn healthy_traffic_stays_ok() {
        let mut t = SloTracker::new(spec(4, 16));
        for tick in 0..100 {
            // 5% bad with a 10% budget → burn 0.5, below warn.
            assert!(t.observe(tick, 95, 5).is_none());
        }
        assert_eq!(t.state(), AlertState::Ok);
        assert!((t.fast_burn() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sustained_burn_escalates_then_recovers_with_hysteresis() {
        let mut t = SloTracker::new(spec(2, 8));
        // 100% bad, budget 0.1 → burn 10 ≥ page threshold 8. The fast
        // window saturates after 2 ticks; the slow window needs enough
        // mass for its burn to cross too.
        let mut fired = Vec::new();
        for tick in 0..8 {
            if let Some(tr) = t.observe(tick, 0, 100) {
                fired.push(tr);
            }
        }
        assert_eq!(t.state(), AlertState::Page);
        assert!(!fired.is_empty());
        assert_eq!(fired.last().expect("fired").to, AlertState::Page);
        // Recovery: perfect traffic clears the fast window almost
        // immediately, but the state only leaves Page once the *slow*
        // window's burn drops below the page threshold (hysteresis).
        let mut page_ticks = 0;
        for tick in 8..32 {
            let before = t.state();
            t.observe(tick, 100, 0);
            if before == AlertState::Page {
                page_ticks += 1;
            }
            if t.state() == AlertState::Ok {
                break;
            }
        }
        assert_eq!(t.state(), AlertState::Ok);
        assert!(
            page_ticks >= 1,
            "page state must persist at least one clean tick (slow window drains gradually)"
        );
    }

    #[test]
    fn short_blip_does_not_page() {
        let mut t = SloTracker::new(spec(2, 16));
        for tick in 0..16 {
            t.observe(tick, 100, 0);
        }
        // One fully-bad tick: fast window burns hot but the slow window
        // stays cold, so both-windows agreement keeps the state Ok.
        assert!(t.observe(16, 0, 100).is_none());
        assert_eq!(t.state(), AlertState::Ok);
        assert!(t.fast_burn() >= t.spec().warn_burn);
        assert!(t.slow_burn() < t.spec().warn_burn);
    }

    #[test]
    fn transitions_record_tick_and_burns() {
        let mut t = SloTracker::new(spec(1, 2));
        t.observe(0, 0, 10);
        t.observe(1, 0, 10);
        let transitions = t.transitions();
        assert!(!transitions.is_empty());
        let last = transitions.last().expect("transition");
        assert_eq!(last.to, AlertState::Page);
        assert!(last.fast_burn >= 8.0);
        assert!(t.worst_fast_burn() >= 8.0);
    }

    #[test]
    fn transition_log_is_bounded() {
        let mut t = SloTracker::new(spec(1, 1));
        // Alternate fully-bad / fully-good to flap the state every tick.
        for tick in 0..2000u64 {
            if tick % 2 == 0 {
                t.observe(tick, 0, 100);
            } else {
                t.observe(tick, 100, 0);
            }
        }
        assert!(t.transitions().len() <= MAX_TRANSITIONS);
    }

    #[test]
    fn severity_mapping_is_stable() {
        assert_eq!(AlertState::Ok.severity(), 0.0);
        assert_eq!(AlertState::Warning.severity(), 1.0);
        assert_eq!(AlertState::Page.severity(), 2.0);
        assert_eq!(AlertState::Page.as_str(), "page");
        assert!(AlertState::Ok < AlertState::Warning);
        assert!(AlertState::Warning < AlertState::Page);
    }
}
