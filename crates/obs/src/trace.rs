//! The flight recorder: bounded, zero-overhead-when-off causal span
//! tracing, exported as Chrome trace-event JSON (Perfetto-loadable).
//!
//! Metrics answer "how much / how often"; the flight recorder answers
//! *"why was this tick slow"* — one serve-tier tick decomposes into a
//! causal tree of spans (`tick` → engine `lane` → engine tick → shard
//! pass → `stage`), each stamped with the worker thread that ran it, so
//! a p99 outlier is visually attributable in a trace viewer.
//!
//! Same discipline as the metrics layer:
//!
//! - **Per-thread buffers, merged at tick boundaries.** Recording sites
//!   own a [`TraceSink`] — a plain `Vec` push, no locks, no atomics
//!   beyond one relaxed enabled-flag load — and the coordinating thread
//!   folds every sink into the recorder's central ring when the workers
//!   are quiescent.
//! - **Bounded.** The central ring retains at most `capacity` spans
//!   (oldest evicted, eviction counted in
//!   [`FlightRecorder::dropped_total`]); each sink refuses to grow past
//!   the same bound between merges. A recorder can run attached forever
//!   without growing.
//! - **Zero overhead when off.** Detached code paths hold no sink
//!   (`Option` gating, exactly like [`crate::LocalMetrics`]); an attached
//!   but [disabled](FlightRecorder::set_enabled) recorder costs one
//!   relaxed atomic load per would-be span and never reads the clock.
//!
//! Span ids are globally unique (`sink id << 32 | local seq`) and carry
//! an explicit `parent` id, so causality survives the flat Chrome JSON
//! encoding: viewers nest by timestamp containment per `pid`/`tid` row,
//! and the `args.id`/`args.parent` fields keep the exact tree for
//! programmatic consumers (the acceptance tests walk it).

use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Identifier of one recorded span; `0` means "no parent" (a root span).
pub type SpanId = u64;

/// One completed span, timestamped in microseconds since the recorder's
/// epoch (construction time).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TraceSpan {
    /// Globally unique span id (never 0).
    pub id: SpanId,
    /// Parent span id, or 0 for a root span.
    pub parent: SpanId,
    /// Span name, e.g. `tick`, `lane`, `gemm`.
    pub name: &'static str,
    /// Category, e.g. `serve`, `fleet` — the Chrome `cat` field.
    pub cat: &'static str,
    /// Process row in the trace viewer: 0 = the tier, `i + 1` = engine
    /// lane `i` (named via metadata events in the export).
    pub pid: u32,
    /// Thread row within the process: shard index for shard-level spans,
    /// 0 for coordinator spans.
    pub tid: u32,
    /// The OS thread that recorded the span (dense ids minted per thread
    /// by [`current_thread_tid`]) — the "which worker ran this" level of
    /// the tick → lane → stage → worker hierarchy.
    pub worker: u32,
    /// Start, µs since the recorder epoch.
    pub ts_us: u64,
    /// Duration, µs (0 for instant-like spans).
    pub dur_us: u64,
}

/// Central state behind the recorder mutex — only touched at merge /
/// drain boundaries, never on recording hot paths.
#[derive(Debug)]
struct Central {
    spans: VecDeque<TraceSpan>,
    dropped: u64,
    next_sink: u32,
}

/// The shared flight recorder: hands out [`TraceSink`]s, owns the bounded
/// central span ring, and renders Chrome trace JSON.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    capacity: usize,
    enabled: AtomicBool,
    central: Mutex<Central>,
}

/// Default central-ring capacity: a few hundred serve-tier ticks' worth
/// of spans at typical shard counts.
pub const DEFAULT_TRACE_CAPACITY: usize = 16_384;

impl FlightRecorder {
    /// Creates an enabled recorder retaining at most `capacity` spans
    /// (min 16).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            epoch: Instant::now(),
            capacity: capacity.max(16),
            enabled: AtomicBool::new(true),
            central: Mutex::new(Central {
                spans: VecDeque::new(),
                dropped: 0,
                next_sink: 0,
            }),
        })
    }

    /// Creates a recorder with [`DEFAULT_TRACE_CAPACITY`].
    pub fn with_default_capacity() -> Arc<Self> {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }

    /// Whether sinks currently record (one relaxed load per span site).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off for every sink at once. Disabled sinks
    /// never read the clock.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Maximum spans the central ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mints a new per-thread recording sink bound to this recorder.
    pub fn sink(self: &Arc<Self>) -> TraceSink {
        let sink_id = {
            let mut central = self.central.lock().expect("flight recorder poisoned");
            let id = central.next_sink;
            central.next_sink += 1;
            id
        };
        TraceSink {
            recorder: Arc::clone(self),
            sink_id,
            next_seq: 0,
            dropped: 0,
            buf: Vec::new(),
        }
    }

    /// Folds a sink's buffered spans into the central ring (evicting the
    /// oldest past capacity) and clears the sink. Call at tick
    /// boundaries, from the thread that owns the sink's quiescence.
    pub fn merge(&self, sink: &mut TraceSink) {
        if sink.buf.is_empty() && sink.dropped == 0 {
            return;
        }
        let mut central = self.central.lock().expect("flight recorder poisoned");
        central.dropped += sink.dropped;
        sink.dropped = 0;
        for span in sink.buf.drain(..) {
            if central.spans.len() == self.capacity {
                central.spans.pop_front();
                central.dropped += 1;
            }
            central.spans.push_back(span);
        }
    }

    /// Takes every retained span out of the ring, oldest first — the
    /// `/trace.json` drain semantics (each export window is disjoint).
    pub fn drain(&self) -> Vec<TraceSpan> {
        let mut central = self.central.lock().expect("flight recorder poisoned");
        central.spans.drain(..).collect()
    }

    /// Copies the retained spans without draining them.
    pub fn spans(&self) -> Vec<TraceSpan> {
        let central = self.central.lock().expect("flight recorder poisoned");
        central.spans.iter().cloned().collect()
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.central
            .lock()
            .expect("flight recorder poisoned")
            .spans
            .len()
    }

    /// True when the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted (ring overflow) or refused (sink overflow) since
    /// construction — bounded memory is visible, never silent.
    pub fn dropped_total(&self) -> u64 {
        self.central
            .lock()
            .expect("flight recorder poisoned")
            .dropped
    }

    /// Microseconds from the recorder epoch to `at` (0 if `at` predates
    /// the epoch).
    pub fn ts_us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Drains the ring and renders it as Chrome trace-event JSON — load
    /// the string in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
    pub fn drain_chrome_json(&self, process_names: &[(u32, String)]) -> String {
        chrome_trace_json(&self.drain(), process_names)
    }
}

/// A per-thread span buffer: plain `Vec` pushes between merges, bounded
/// at the recorder's capacity. Owned by exactly one recording site (a
/// shard, an engine, the tier coordinator) at a time.
#[derive(Debug)]
pub struct TraceSink {
    recorder: Arc<FlightRecorder>,
    sink_id: u32,
    next_seq: u64,
    dropped: u64,
    buf: Vec<TraceSpan>,
}

impl TraceSink {
    /// Whether spans currently land anywhere. Check before reading the
    /// clock for a span that only exists for tracing.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// The recorder this sink merges into.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Allocates the next globally unique span id.
    #[inline]
    fn next_id(&mut self) -> SpanId {
        self.next_seq += 1;
        ((self.sink_id as u64 + 1) << 32) | (self.next_seq & 0xFFFF_FFFF)
    }

    /// Records a completed span from explicit start/end instants.
    /// Returns the span's id (for parenting children), or 0 when the
    /// recorder is disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        name: &'static str,
        cat: &'static str,
        pid: u32,
        tid: u32,
        parent: SpanId,
        start: Instant,
        end: Instant,
    ) -> SpanId {
        self.record_at(
            name,
            cat,
            pid,
            tid,
            parent,
            start,
            end.saturating_duration_since(start),
        )
    }

    /// Records a completed span from a start instant and a duration —
    /// the shape for spans synthesized from durations the hot path
    /// already measured (e.g. accumulated stage times). Returns the span
    /// id, or 0 when disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn record_at(
        &mut self,
        name: &'static str,
        cat: &'static str,
        pid: u32,
        tid: u32,
        parent: SpanId,
        start: Instant,
        dur: Duration,
    ) -> SpanId {
        if !self.is_on() {
            return 0;
        }
        if self.buf.len() >= self.recorder.capacity {
            self.dropped += 1;
            return 0;
        }
        let id = self.next_id();
        let ts_us = self.recorder.ts_us(start);
        self.buf.push(TraceSpan {
            id,
            parent,
            name,
            cat,
            pid,
            tid,
            worker: current_thread_tid(),
            ts_us,
            dur_us: dur.as_micros() as u64,
        });
        id
    }

    /// Buffered spans awaiting merge.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Mints a span id *without* recording anything — for parent spans
    /// whose duration is only known later but whose id children need
    /// now (the engine-tick span parents shard passes that run before
    /// it completes). Pair with [`Self::complete`]. Returns 0 when the
    /// recorder is disabled.
    #[inline]
    pub fn open(&mut self) -> SpanId {
        if self.is_on() {
            self.next_id()
        } else {
            0
        }
    }

    /// Records a span under an id pre-minted by [`Self::open`]. A zero
    /// id (from a disabled `open`) records nothing, so the call site
    /// needs no separate enabled check.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        id: SpanId,
        name: &'static str,
        cat: &'static str,
        pid: u32,
        tid: u32,
        parent: SpanId,
        start: Instant,
        end: Instant,
    ) {
        if id == 0 {
            return;
        }
        if self.buf.len() >= self.recorder.capacity {
            self.dropped += 1;
            return;
        }
        let ts_us = self.recorder.ts_us(start);
        self.buf.push(TraceSpan {
            id,
            parent,
            name,
            cat,
            pid,
            tid,
            worker: current_thread_tid(),
            ts_us,
            dur_us: end.saturating_duration_since(start).as_micros() as u64,
        });
    }
}

static NEXT_THREAD_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static THREAD_TID: u32 = NEXT_THREAD_TID.fetch_add(1, Ordering::Relaxed);
}

/// A small dense id for the calling OS thread, minted on first use —
/// stable for the thread's lifetime, never 0. This is how spans say
/// *which worker* executed a stage without touching unstable
/// `ThreadId` internals.
pub fn current_thread_tid() -> u32 {
    THREAD_TID.with(|tid| *tid)
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders spans as Chrome trace-event JSON (the `traceEvents` object
/// form): one complete (`"ph":"X"`) event per span with the causal ids
/// under `args`, plus `process_name` metadata events so trace viewers
/// label the `pid` rows (e.g. `(0, "serve-tier")`, `(1, "engine-0")`).
pub fn chrome_trace_json(spans: &[TraceSpan], process_names: &[(u32, String)]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (pid, name) in process_names {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\""
        ));
        escape_json(name, &mut out);
        out.push_str("\"}}");
    }
    for span in spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        escape_json(span.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape_json(span.cat, &mut out);
        out.push_str(&format!(
            "\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\
             \"args\":{{\"id\":{},\"parent\":{},\"worker\":{}}}}}",
            span.ts_us, span.dur_us, span.pid, span.tid, span.id, span.parent, span.worker
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_pair(recorder: &Arc<FlightRecorder>) -> TraceSink {
        let mut sink = recorder.sink();
        let t0 = Instant::now();
        let parent = sink.record_at("tick", "serve", 0, 0, 0, t0, Duration::from_micros(100));
        assert_ne!(parent, 0);
        let child = sink.record_at("gemm", "fleet", 1, 2, parent, t0, Duration::from_micros(40));
        assert_ne!(child, 0);
        assert_ne!(parent, child);
        sink
    }

    #[test]
    fn record_merge_drain_roundtrip() {
        let recorder = FlightRecorder::new(64);
        let mut sink = span_pair(&recorder);
        assert_eq!(sink.pending(), 2);
        recorder.merge(&mut sink);
        assert_eq!(sink.pending(), 0);
        let spans = recorder.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "tick");
        assert_eq!(spans[1].parent, spans[0].id);
        assert!(recorder.is_empty(), "drain must empty the ring");
    }

    #[test]
    fn disabled_recorder_records_nothing_and_returns_zero_ids() {
        let recorder = FlightRecorder::new(64);
        recorder.set_enabled(false);
        let mut sink = recorder.sink();
        let id = sink.record_at("x", "t", 0, 0, 0, Instant::now(), Duration::ZERO);
        assert_eq!(id, 0);
        assert_eq!(sink.pending(), 0);
        recorder.merge(&mut sink);
        assert!(recorder.is_empty());
    }

    #[test]
    fn central_ring_is_bounded_and_counts_evictions() {
        let recorder = FlightRecorder::new(16);
        let t0 = Instant::now();
        for _ in 0..3 {
            let mut sink = recorder.sink();
            for _ in 0..10 {
                sink.record_at("s", "t", 0, 0, 0, t0, Duration::ZERO);
            }
            recorder.merge(&mut sink);
        }
        assert_eq!(recorder.len(), 16);
        assert_eq!(recorder.dropped_total(), 14);
    }

    #[test]
    fn sink_buffer_is_bounded_between_merges() {
        let recorder = FlightRecorder::new(16);
        let mut sink = recorder.sink();
        let t0 = Instant::now();
        for _ in 0..40 {
            sink.record_at("s", "t", 0, 0, 0, t0, Duration::ZERO);
        }
        assert_eq!(sink.pending(), 16);
        recorder.merge(&mut sink);
        assert_eq!(recorder.len(), 16);
        assert_eq!(recorder.dropped_total(), 24);
    }

    #[test]
    fn span_ids_are_unique_across_sinks() {
        let recorder = FlightRecorder::new(64);
        let t0 = Instant::now();
        let mut a = recorder.sink();
        let mut b = recorder.sink();
        let ia = a.record_at("a", "t", 0, 0, 0, t0, Duration::ZERO);
        let ib = b.record_at("b", "t", 0, 0, 0, t0, Duration::ZERO);
        assert_ne!(ia, ib);
        recorder.merge(&mut a);
        recorder.merge(&mut b);
        let spans = recorder.spans();
        assert_eq!(spans.len(), 2);
        assert_ne!(spans[0].id, spans[1].id);
    }

    #[test]
    fn chrome_json_is_valid_and_carries_causality() {
        let recorder = FlightRecorder::new(64);
        let mut sink = span_pair(&recorder);
        recorder.merge(&mut sink);
        let json = recorder.drain_chrome_json(&[(0, "serve-tier".into()), (1, "engine-0".into())]);
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = value["traceEvents"].as_array().expect("traceEvents array");
        // 2 metadata + 2 spans.
        assert_eq!(events.len(), 4);
        let meta: Vec<_> = events.iter().filter(|e| e["ph"] == "M").collect();
        assert_eq!(meta.len(), 2);
        assert_eq!(meta[0]["args"]["name"], "serve-tier");
        let spans: Vec<_> = events.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1]["args"]["parent"], spans[0]["args"]["id"]);
        assert!(spans[0]["dur"].as_u64().expect("dur") >= spans[1]["dur"].as_u64().expect("dur"));
    }

    #[test]
    fn thread_tids_are_stable_and_distinct() {
        let here = current_thread_tid();
        assert_eq!(here, current_thread_tid());
        let there = std::thread::spawn(current_thread_tid)
            .join()
            .expect("thread");
        assert_ne!(here, there);
        assert_ne!(there, 0);
    }
}
