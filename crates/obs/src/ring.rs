//! Ring-buffered recent-events log for post-mortems.
//!
//! Bounded memory, oldest-first eviction: the log keeps the last
//! `capacity` events (model swaps, drift triggers, gate verdicts, worker
//! panics) with a global sequence number so dropped history is visible
//! as a gap in `seq`.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One logged event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsEvent {
    /// Monotonic sequence number across the life of the log (never
    /// resets, so eviction shows up as a gap).
    pub seq: u64,
    /// Seconds since the owning hub was created (monotonic clock).
    pub uptime_s: f64,
    /// Emitting subsystem, e.g. `fleet`, `adapt`, `runtime`.
    pub source: String,
    /// Human-readable description.
    pub message: String,
}

/// Fixed-capacity event ring.
#[derive(Debug, Clone)]
pub struct RingLog {
    capacity: usize,
    next_seq: u64,
    buf: VecDeque<ObsEvent>,
}

impl RingLog {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            next_seq: 0,
            buf: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends an event, evicting the oldest when full. Returns the
    /// event's sequence number.
    pub fn push(&mut self, uptime_s: f64, source: &str, message: impl Into<String>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(ObsEvent {
            seq,
            uptime_s,
            source: source.to_string(),
            message: message.into(),
        });
        seq
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been logged (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever pushed (retained + evicted).
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_keeps_newest_and_seq_is_global() {
        let mut log = RingLog::new(3);
        for i in 0..5 {
            log.push(i as f64, "test", format!("event {i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_pushed(), 5);
        let seqs: Vec<u64> = log.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(log.events().next().unwrap().message, "event 2");
    }

    /// Property test (deterministic xorshift, no external dep): across
    /// random capacities and push counts, the ring always retains
    /// `min(capacity, total_pushed)` events, the retained sequence
    /// numbers are contiguous and end at `total_pushed - 1`, and eviction
    /// count is exactly `total_pushed - retained`.
    #[test]
    fn wraparound_invariants_hold_for_random_workloads() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            // xorshift64* — deterministic across runs and platforms.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for case in 0..200 {
            let capacity = (next() % 17) as usize; // 0..=16, incl. the clamp case
            let pushes = next() % 40; // 0..=39, spanning under- and over-fill
            let mut log = RingLog::new(capacity);
            let capacity = log.capacity(); // after the min-1 clamp
            for i in 0..pushes {
                let seq = log.push(i as f64, "prop", format!("e{i}"));
                assert_eq!(seq, i, "push returns the global sequence number");
            }
            let retained = log.len();
            assert_eq!(
                retained as u64,
                pushes.min(capacity as u64),
                "case {case}: retained == min(capacity, total_pushed)"
            );
            assert_eq!(log.total_pushed(), pushes);
            assert_eq!(log.is_empty(), pushes == 0);
            let seqs: Vec<u64> = log.events().map(|e| e.seq).collect();
            if let (Some(&first), Some(&last)) = (seqs.first(), seqs.last()) {
                assert_eq!(last, pushes - 1, "newest event is always retained");
                assert_eq!(first, pushes - retained as u64, "oldest retained seq");
                assert!(
                    seqs.windows(2).all(|w| w[1] == w[0] + 1),
                    "case {case}: retained seqs are contiguous: {seqs:?}"
                );
            }
        }
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut log = RingLog::new(0);
        assert_eq!(log.capacity(), 1);
        log.push(0.0, "a", "x");
        log.push(0.0, "a", "y");
        assert_eq!(log.len(), 1);
        assert_eq!(log.events().next().unwrap().message, "y");
    }
}
