//! The [`Recorder`] trait: how instrumented code talks to metrics
//! without knowing whether observability is attached.
//!
//! Hot-path code takes `&mut impl Recorder` (or holds an
//! `Option<LocalMetrics>` and records only when `Some`). The default
//! method bodies are empty, so with [`NoopRecorder`] the calls inline to
//! nothing and the instrumented function costs exactly what the
//! uninstrumented one did.

use crate::metrics::{LocalMetrics, MetricId};

/// Sink for metric samples with a no-op default implementation.
pub trait Recorder {
    /// True when samples actually land somewhere; lets callers skip
    /// computing expensive sample values (e.g. reading a clock) when off.
    #[inline]
    fn is_live(&self) -> bool {
        false
    }

    /// Adds `n` to a counter.
    #[inline]
    fn add(&mut self, id: MetricId, n: u64) {
        let _ = (id, n);
    }

    /// Stores `v` into a gauge.
    #[inline]
    fn set(&mut self, id: MetricId, v: f64) {
        let _ = (id, v);
    }

    /// Records `v` into a histogram.
    #[inline]
    fn observe(&mut self, id: MetricId, v: f64) {
        let _ = (id, v);
    }
}

/// The do-nothing recorder: every method compiles to an empty body.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

impl Recorder for LocalMetrics {
    #[inline]
    fn is_live(&self) -> bool {
        true
    }

    #[inline]
    fn add(&mut self, id: MetricId, n: u64) {
        LocalMetrics::add(self, id, n);
    }

    #[inline]
    fn set(&mut self, id: MetricId, v: f64) {
        LocalMetrics::set(self, id, v);
    }

    #[inline]
    fn observe(&mut self, id: MetricId, v: f64) {
        LocalMetrics::observe(self, id, v);
    }
}

/// `Option<R>` records when `Some` — the natural shape for structs that
/// hold observability as an optional attachment.
impl<R: Recorder> Recorder for Option<R> {
    #[inline]
    fn is_live(&self) -> bool {
        self.as_ref().is_some_and(|r| r.is_live())
    }

    #[inline]
    fn add(&mut self, id: MetricId, n: u64) {
        if let Some(r) = self {
            r.add(id, n);
        }
    }

    #[inline]
    fn set(&mut self, id: MetricId, v: f64) {
        if let Some(r) = self {
            r.set(id, v);
        }
    }

    #[inline]
    fn observe(&mut self, id: MetricId, v: f64) {
        if let Some(r) = self {
            r.observe(id, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsRegistry, SampleValue};

    #[test]
    fn noop_is_not_live_and_ignores_samples() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("pinnsoc_c_total", "h");
        let mut r = NoopRecorder;
        assert!(!r.is_live());
        r.add(c, 5);
        assert_eq!(reg.snapshot().counter_total("pinnsoc_c_total"), 0);
    }

    #[test]
    fn local_metrics_is_live_and_records() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("pinnsoc_c_total", "h");
        let mut local = reg.local();
        assert!(Recorder::is_live(&local));
        Recorder::add(&mut local, c, 2);
        reg.merge(&mut local);
        assert_eq!(reg.snapshot().counter_total("pinnsoc_c_total"), 2);
    }

    #[test]
    fn option_recorder_dispatches_on_some() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("pinnsoc_g", "h");
        let mut none: Option<LocalMetrics> = None;
        assert!(!none.is_live());
        none.set(g, 1.0); // no-op
        let mut some = Some(reg.local());
        assert!(some.is_live());
        some.set(g, 9.0);
        reg.merge(some.as_mut().unwrap());
        match &reg.snapshot().find("pinnsoc_g", &[]).unwrap().value {
            SampleValue::Gauge(v) => assert_eq!(*v, 9.0),
            v => panic!("{v:?}"),
        }
    }
}
