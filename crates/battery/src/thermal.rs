//! Lumped-mass thermal model of a cylindrical cell.
//!
//! A single thermal node: `m·cp·dT/dt = Q_gen − h·(T − T_amb)`. This is the
//! minimal model that reproduces the temperature behaviour the datasets
//! exhibit — self-heating under high C-rates and relaxation toward ambient —
//! which in turn feeds the temperature-dependent resistances of the ECM.

use crate::chemistry::CellParams;
use serde::{Deserialize, Serialize};

/// Lumped thermal model of one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LumpedThermal {
    /// Thermal capacitance `m·cp`, J/K.
    heat_capacity: f64,
    /// Convective coefficient `h·A`, W/K.
    h_conv: f64,
    /// Ambient temperature, °C.
    ambient_c: f64,
}

impl LumpedThermal {
    /// Builds the thermal model from cell parameters and an ambient
    /// temperature.
    ///
    /// # Panics
    ///
    /// Panics if the resulting heat capacity or convection coefficient is
    /// not positive.
    pub fn new(params: &CellParams, ambient_c: f64) -> Self {
        let heat_capacity = params.mass_kg * params.specific_heat;
        assert!(heat_capacity > 0.0, "heat capacity must be positive");
        assert!(
            params.h_conv > 0.0,
            "convection coefficient must be positive"
        );
        Self {
            heat_capacity,
            h_conv: params.h_conv,
            ambient_c,
        }
    }

    /// Ambient temperature, °C.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Changes the ambient temperature (e.g. between dataset cycles).
    pub fn set_ambient_c(&mut self, ambient_c: f64) {
        self.ambient_c = ambient_c;
    }

    /// Thermal time constant `m·cp / hA`, seconds.
    pub fn time_constant_s(&self) -> f64 {
        self.heat_capacity / self.h_conv
    }

    /// Steady-state temperature rise above ambient for constant heat input.
    pub fn steady_state_rise(&self, heat_w: f64) -> f64 {
        heat_w / self.h_conv
    }

    /// Advances the cell temperature by `dt_s` seconds with constant heat
    /// generation `heat_w` (exact ZOH solution of the linear node).
    pub fn step(&self, temperature_c: f64, heat_w: f64, dt_s: f64) -> f64 {
        assert!(dt_s > 0.0, "time step must be positive");
        let t_inf = self.ambient_c + self.steady_state_rise(heat_w);
        let alpha = (-dt_s / self.time_constant_s()).exp();
        t_inf + (temperature_c - t_inf) * alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chemistry::CellParams;

    fn model() -> LumpedThermal {
        LumpedThermal::new(&CellParams::lg_hg2(), 25.0)
    }

    #[test]
    fn no_heat_relaxes_to_ambient() {
        let m = model();
        let t = m.step(45.0, 0.0, 1e7);
        assert!((t - 25.0).abs() < 1e-6);
    }

    #[test]
    fn heating_approaches_steady_state() {
        let m = model();
        let heat = 2.0; // watts, ~3C on an HG2
        let t = m.step(25.0, heat, 1e7);
        assert!((t - (25.0 + m.steady_state_rise(heat))).abs() < 1e-6);
    }

    #[test]
    fn steady_state_rise_is_moderate_at_3c() {
        // 3C on a 3 Ah cell ≈ 9 A; with R≈25 mΩ that's ≈2 W. The rise should
        // be tens of kelvin at most, not hundreds (sanity of h_conv choice).
        let m = model();
        let rise = m.steady_state_rise(2.0);
        assert!(rise > 2.0 && rise < 40.0, "rise {rise}");
    }

    #[test]
    fn monotone_approach_no_overshoot() {
        let m = model();
        let mut t = 25.0;
        let heat = 1.5;
        let target = 25.0 + m.steady_state_rise(heat);
        let mut last = t;
        for _ in 0..100 {
            t = m.step(t, heat, 30.0);
            assert!(t >= last - 1e-12, "temperature must rise monotonically");
            assert!(t <= target + 1e-9, "must not overshoot steady state");
            last = t;
        }
    }

    #[test]
    fn time_constant_is_minutes() {
        let m = model();
        let tau = m.time_constant_s();
        assert!(tau > 60.0 && tau < 3600.0, "tau {tau}");
    }

    #[test]
    fn ambient_can_change() {
        let mut m = model();
        m.set_ambient_c(0.0);
        assert_eq!(m.ambient_c(), 0.0);
        let t = m.step(25.0, 0.0, 1e7);
        assert!(t.abs() < 1e-6);
    }
}
