//! Extended Kalman filter SoC estimator over a first-order ECM.
//!
//! This is the classic physics-based (category 2, §II of the paper)
//! estimation baseline: it fuses Coulomb-counting prediction with voltage
//! measurements through the OCV curve. Included to let examples and benches
//! contrast the paper's data-driven approach against a model-based one.

use crate::chemistry::CellParams;
use crate::types::Soc;
use serde::{Deserialize, Serialize};

/// The complete mutable state of an [`EkfEstimator`], for persistence.
///
/// Captures everything [`EkfEstimator::update`] reads and writes besides
/// the (immutable) cell parameters: restoring via
/// [`EkfEstimator::from_state`] with the same parameters yields a filter
/// whose subsequent updates are bit-identical to the original's.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EkfState {
    /// State estimate `[SoC, v_rc]`.
    pub x: [f64; 2],
    /// State covariance (row-major 2×2).
    pub p: [[f64; 2]; 2],
    /// Process noise diagonal.
    pub q: [f64; 2],
    /// Measurement noise variance (volts²).
    pub r: f64,
}

/// Extended Kalman filter tracking `[SoC, v_rc]` of a first-order ECM.
///
/// # Examples
///
/// ```
/// use pinnsoc_battery::{CellParams, CellSim, EkfEstimator, Soc};
///
/// let params = CellParams::lg_hg2();
/// let mut sim = CellSim::new(params.clone(), Soc::new(0.9).unwrap(), 25.0);
/// // Deliberately wrong initial guess: the EKF corrects it from voltage.
/// let mut ekf = EkfEstimator::new(params, Soc::new(0.5).unwrap());
/// for _ in 0..600 {
///     let rec = sim.step(3.0, 1.0);
///     ekf.update(rec.current_a, rec.voltage_v, rec.temperature_c, 1.0);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct EkfEstimator {
    params: CellParams,
    /// State estimate: SoC fraction and RC branch voltage.
    x: [f64; 2],
    /// State covariance (row-major 2×2).
    p: [[f64; 2]; 2],
    /// Process noise diagonal.
    q: [f64; 2],
    /// Measurement noise variance (volts²).
    r: f64,
}

impl EkfEstimator {
    /// Creates a filter with a possibly inaccurate initial SoC guess and
    /// default noise tuning.
    pub fn new(params: CellParams, initial_guess: Soc) -> Self {
        Self {
            params,
            x: [initial_guess.value(), 0.0],
            p: [[0.05, 0.0], [0.0, 1e-4]],
            q: [1e-9, 1e-6],
            r: 1e-4,
        }
    }

    /// Overrides the noise tuning (process SoC, process v_rc, measurement).
    ///
    /// # Panics
    ///
    /// Panics if any variance is not positive.
    pub fn with_noise(mut self, q_soc: f64, q_vrc: f64, r_meas: f64) -> Self {
        assert!(
            q_soc > 0.0 && q_vrc > 0.0 && r_meas > 0.0,
            "variances must be positive"
        );
        self.q = [q_soc, q_vrc];
        self.r = r_meas;
        self
    }

    /// Rebuilds a filter from persisted state and the original parameters.
    ///
    /// The inverse of [`Self::state`]: subsequent [`Self::update`] calls are
    /// bit-identical to the filter the state was exported from.
    pub fn from_state(params: CellParams, state: EkfState) -> Self {
        Self {
            params,
            x: state.x,
            p: state.p,
            q: state.q,
            r: state.r,
        }
    }

    /// Exports the complete mutable filter state (see [`EkfState`]).
    pub fn state(&self) -> EkfState {
        EkfState {
            x: self.x,
            p: self.p,
            q: self.q,
            r: self.r,
        }
    }

    /// Current SoC estimate.
    pub fn soc(&self) -> Soc {
        Soc::clamped(self.x[0])
    }

    /// Current SoC standard deviation estimate.
    pub fn soc_std(&self) -> f64 {
        self.p[0][0].max(0.0).sqrt()
    }

    /// State covariance (row-major 2×2 over `[SoC, v_rc]`). The update is
    /// the plain `(I − KH)P` form, which preserves symmetry only up to
    /// floating-point rounding — the property tests bound that drift.
    pub fn covariance(&self) -> [[f64; 2]; 2] {
        self.p
    }

    /// One predict–correct cycle given a measurement interval.
    ///
    /// Returns the corrected SoC estimate.
    pub fn update(
        &mut self,
        current_a: f64,
        measured_voltage_v: f64,
        temperature_c: f64,
        dt_s: f64,
    ) -> Soc {
        assert!(dt_s > 0.0, "time step must be positive");
        let temp_factor = self.params.resistance_factor(temperature_c);
        let r1 = self.params.r1_ohm * temp_factor;
        let tau = r1 * self.params.c1_farad;
        let a = (-dt_s / tau).exp();

        // Predict.
        self.x[0] -= current_a * dt_s / (3600.0 * self.params.capacity_ah);
        self.x[0] = self.x[0].clamp(0.0, 1.0);
        self.x[1] = a * self.x[1] + r1 * (1.0 - a) * current_a;
        // P = F P Fᵀ + Q with F = diag(1, a).
        self.p[0][0] += self.q[0];
        self.p[0][1] *= a;
        self.p[1][0] *= a;
        self.p[1][1] = a * a * self.p[1][1] + self.q[1];

        // Measurement model: V = OCV(soc,T) − I·R0 − v_rc.
        let soc = Soc::clamped(self.x[0]);
        let r0 = self.params.r0_ohm * temp_factor;
        let predicted_v = self.params.ocv.voltage(soc, temperature_c) - current_a * r0 - self.x[1];
        let h = [self.params.ocv.slope(soc), -1.0];

        // Innovation and gain.
        let innovation = measured_voltage_v - predicted_v;
        let ph = [
            self.p[0][0] * h[0] + self.p[0][1] * h[1],
            self.p[1][0] * h[0] + self.p[1][1] * h[1],
        ];
        let s = h[0] * ph[0] + h[1] * ph[1] + self.r;
        let k = [ph[0] / s, ph[1] / s];

        // Correct.
        self.x[0] = (self.x[0] + k[0] * innovation).clamp(0.0, 1.0);
        self.x[1] += k[1] * innovation;
        // P = (I − K H) P.
        let p = self.p;
        self.p[0][0] = (1.0 - k[0] * h[0]) * p[0][0] - k[0] * h[1] * p[1][0];
        self.p[0][1] = (1.0 - k[0] * h[0]) * p[0][1] - k[0] * h[1] * p[1][1];
        self.p[1][0] = -k[1] * h[0] * p[0][0] + (1.0 - k[1] * h[1]) * p[1][0];
        self.p[1][1] = -k[1] * h[0] * p[0][1] + (1.0 - k[1] * h[1]) * p[1][1];

        self.soc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::CellSim;

    #[test]
    fn converges_from_wrong_initial_guess() {
        let params = CellParams::lg_hg2();
        let mut sim = CellSim::new(params.clone(), Soc::new(0.9).unwrap(), 25.0);
        let mut ekf = EkfEstimator::new(params, Soc::new(0.4).unwrap());
        let mut final_err = f64::MAX;
        for _ in 0..1800 {
            let rec = sim.step(3.0, 1.0);
            let est = ekf.update(rec.current_a, rec.voltage_v, rec.temperature_c, 1.0);
            final_err = (est.value() - rec.soc).abs();
        }
        assert!(final_err < 0.05, "EKF did not converge: err {final_err}");
    }

    #[test]
    fn tracks_true_soc_during_variable_load() {
        let params = CellParams::lg_hg2();
        let mut sim = CellSim::new(params.clone(), Soc::new(0.8).unwrap(), 25.0);
        let mut ekf = EkfEstimator::new(params, Soc::new(0.8).unwrap());
        let mut worst = 0.0_f64;
        for k in 0..1200 {
            // Square-wave load between 1 A and 6 A.
            let i = if (k / 60) % 2 == 0 { 1.0 } else { 6.0 };
            let rec = sim.step(i, 1.0);
            let est = ekf.update(rec.current_a, rec.voltage_v, rec.temperature_c, 1.0);
            worst = worst.max((est.value() - rec.soc).abs());
        }
        assert!(worst < 0.08, "EKF tracking error too large: {worst}");
    }

    #[test]
    fn covariance_stays_positive() {
        let params = CellParams::lg_hg2();
        let mut sim = CellSim::new(params.clone(), Soc::new(0.7).unwrap(), 25.0);
        let mut ekf = EkfEstimator::new(params, Soc::new(0.7).unwrap());
        for _ in 0..600 {
            let rec = sim.step(2.0, 1.0);
            ekf.update(rec.current_a, rec.voltage_v, rec.temperature_c, 1.0);
            assert!(ekf.soc_std().is_finite());
            assert!(ekf.soc_std() >= 0.0);
        }
    }

    #[test]
    fn estimate_is_always_a_valid_soc() {
        let params = CellParams::lg_hg2();
        let mut ekf = EkfEstimator::new(params, Soc::new(0.05).unwrap());
        // Feed absurd measurements; estimate must stay in [0, 1].
        for k in 0..50 {
            let s = ekf.update(10.0, 2.0 + 0.01 * k as f64, 25.0, 1.0);
            assert!((0.0..=1.0).contains(&s.value()));
        }
    }

    #[test]
    #[should_panic(expected = "variances must be positive")]
    fn invalid_noise_panics() {
        let _ = EkfEstimator::new(CellParams::lg_hg2(), Soc::FULL).with_noise(0.0, 1.0, 1.0);
    }
}
