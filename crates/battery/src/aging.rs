//! Capacity-fade aging model (state of health).
//!
//! The paper notes (§III-B) that its model does not account for SoH
//! degradation and points to the ensemble approach of \[26\] as the fix. This
//! module provides the aging substrate for that extension: a square-root-of-
//! throughput calendar+cycle fade model, standard in BMS literature, used by
//! `pinnsoc::ensemble` to generate per-SoH training data.

use crate::chemistry::CellParams;
use serde::{Deserialize, Serialize};

/// State of health: the ratio of current usable capacity to rated capacity.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Soh(f64);

impl Soh {
    /// A fresh cell.
    pub const NEW: Soh = Soh(1.0);

    /// Creates an SoH; valid range is `(0, 1]`.
    pub fn new(value: f64) -> Option<Self> {
        (value.is_finite() && value > 0.0 && value <= 1.0).then_some(Soh(value))
    }

    /// The underlying fraction.
    pub fn value(self) -> f64 {
        self.0
    }
}

/// Square-root capacity-fade model:
/// `SoH(n) = 1 − k_cycle·sqrt(efc) − k_cal·t_years`, floored at `min_soh`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FadeModel {
    /// Fade per sqrt(equivalent full cycle).
    pub k_cycle: f64,
    /// Calendar fade per year.
    pub k_calendar: f64,
    /// Floor below which the model saturates (cell considered end-of-life).
    pub min_soh: f64,
}

impl Default for FadeModel {
    fn default() -> Self {
        // ~20% fade after 1000 EFC plus ~2%/year calendar fade: typical NMC.
        Self {
            k_cycle: 0.2 / 1000.0_f64.sqrt(),
            k_calendar: 0.02,
            min_soh: 0.6,
        }
    }
}

impl FadeModel {
    /// SoH after `equivalent_full_cycles` of cycling and `years` of storage.
    ///
    /// # Panics
    ///
    /// Panics if either input is negative.
    pub fn soh_after(&self, equivalent_full_cycles: f64, years: f64) -> Soh {
        assert!(
            equivalent_full_cycles >= 0.0,
            "cycle count must be non-negative"
        );
        assert!(years >= 0.0, "age must be non-negative");
        let fade = self.k_cycle * equivalent_full_cycles.sqrt() + self.k_calendar * years;
        Soh::new((1.0 - fade).max(self.min_soh)).expect("floored value is valid")
    }

    /// Cycles until the given SoH is reached (ignoring calendar fade), or
    /// `None` if the target is below the model floor.
    pub fn cycles_to_reach(&self, target: Soh) -> Option<f64> {
        if target.value() < self.min_soh {
            return None;
        }
        let fade = 1.0 - target.value();
        Some((fade / self.k_cycle).powi(2))
    }
}

/// Applies an SoH to cell parameters: capacity shrinks and resistance grows
/// (the two dominant aging signatures).
pub fn aged_params(fresh: &CellParams, soh: Soh) -> CellParams {
    let mut p = fresh.clone();
    p.capacity_ah = fresh.capacity_ah * soh.value();
    // Empirical: ~1% resistance growth per 1% capacity fade, doubled.
    let growth = 1.0 + 2.0 * (1.0 - soh.value());
    p.r0_ohm *= growth;
    p.r1_ohm *= growth;
    p.r2_ohm *= growth;
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soh_validation() {
        assert!(Soh::new(1.0).is_some());
        assert!(Soh::new(0.0).is_none());
        assert!(Soh::new(1.2).is_none());
        assert!(Soh::new(f64::NAN).is_none());
    }

    #[test]
    fn fresh_cell_is_full_health() {
        let m = FadeModel::default();
        assert_eq!(m.soh_after(0.0, 0.0), Soh::NEW);
    }

    #[test]
    fn fade_is_monotone_in_cycles() {
        let m = FadeModel::default();
        let mut last = 1.0;
        for efc in [10.0, 100.0, 400.0, 1000.0] {
            let soh = m.soh_after(efc, 0.0).value();
            assert!(soh < last);
            last = soh;
        }
    }

    #[test]
    fn default_model_hits_80pct_at_1000_cycles() {
        let m = FadeModel::default();
        let soh = m.soh_after(1000.0, 0.0).value();
        assert!((soh - 0.8).abs() < 1e-9, "soh {soh}");
    }

    #[test]
    fn floor_saturates() {
        let m = FadeModel::default();
        assert_eq!(m.soh_after(1e9, 100.0).value(), 0.6);
    }

    #[test]
    fn cycles_to_reach_inverts_soh_after() {
        let m = FadeModel::default();
        let target = Soh::new(0.9).unwrap();
        let cycles = m.cycles_to_reach(target).unwrap();
        let soh = m.soh_after(cycles, 0.0);
        assert!((soh.value() - 0.9).abs() < 1e-9);
        assert!(m.cycles_to_reach(Soh::new(0.5).unwrap()).is_none());
    }

    #[test]
    fn aged_params_shrink_capacity_and_grow_resistance() {
        let fresh = CellParams::lg_hg2();
        let aged = aged_params(&fresh, Soh::new(0.8).unwrap());
        assert!((aged.capacity_ah - 2.4).abs() < 1e-12);
        assert!(aged.r0_ohm > fresh.r0_ohm * 1.3);
        assert_eq!(aged.chemistry, fresh.chemistry);
    }
}
