//! Shared value types and sign conventions for the battery substrate.
//!
//! # Sign convention
//!
//! Throughout the workspace, **discharge current is positive**: a positive
//! current drains the cell (`dSoC/dt = −I / (3600·Q)`), a negative current
//! charges it. This matches the Coulomb-counting equation as implemented in
//! the physics loss (paper Eq. 1, with the sign folded into `I`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// State of charge — a fraction in `[0, 1]`.
///
/// The newtype guarantees the invariant at construction time so downstream
/// code (dataset generation, physics loss) never sees an out-of-range value.
///
/// # Examples
///
/// ```
/// use pinnsoc_battery::Soc;
///
/// let soc = Soc::new(0.75).unwrap();
/// assert_eq!(soc.value(), 0.75);
/// assert!(Soc::new(1.2).is_none());
/// assert_eq!(Soc::clamped(1.2), Soc::FULL);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Soc(f64);

impl Soc {
    /// A fully charged cell.
    pub const FULL: Soc = Soc(1.0);
    /// A fully discharged cell.
    pub const EMPTY: Soc = Soc(0.0);

    /// Creates a SoC, returning `None` when outside `[0, 1]` or non-finite.
    pub fn new(value: f64) -> Option<Self> {
        (value.is_finite() && (0.0..=1.0).contains(&value)).then_some(Soc(value))
    }

    /// Creates a SoC, clamping into `[0, 1]` (NaN clamps to 0).
    pub fn clamped(value: f64) -> Self {
        if value.is_nan() {
            Soc(0.0)
        } else {
            Soc(value.clamp(0.0, 1.0))
        }
    }

    /// The underlying fraction.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Applies a signed delta, clamping the result into `[0, 1]`.
    pub fn shifted(self, delta: f64) -> Self {
        Soc::clamped(self.0 + delta)
    }
}

impl fmt::Display for Soc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

impl From<Soc> for f64 {
    fn from(soc: Soc) -> f64 {
        soc.value()
    }
}

/// Full electro-thermal state of a simulated cell at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellState {
    /// True state of charge (exact Coulomb integration inside the simulator).
    pub soc: Soc,
    /// Polarization voltages across the RC branches, volts (index 0 = fastest).
    pub rc_voltages: [f64; 2],
    /// Cell core temperature, °C.
    pub temperature_c: f64,
}

impl CellState {
    /// A rested cell: no polarization, at ambient temperature.
    pub fn rested(soc: Soc, temperature_c: f64) -> Self {
        Self {
            soc,
            rc_voltages: [0.0, 0.0],
            temperature_c,
        }
    }
}

/// One timestamped record emitted by the simulator — exactly the quantities a
/// BMS can measure, plus the ground-truth SoC used as the training label.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimRecord {
    /// Time since the start of the run, seconds.
    pub time_s: f64,
    /// Terminal voltage, volts.
    pub voltage_v: f64,
    /// Applied current, amps (positive = discharge).
    pub current_a: f64,
    /// Cell temperature, °C.
    pub temperature_c: f64,
    /// Ground-truth state of charge.
    pub soc: f64,
}

/// Why a simulation run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The requested load profile was completed.
    ProfileEnd,
    /// Terminal voltage fell below the discharge cutoff.
    LowVoltageCutoff,
    /// Terminal voltage exceeded the charge cutoff.
    HighVoltageCutoff,
    /// SoC reached zero.
    Empty,
    /// SoC reached one.
    Full,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::ProfileEnd => "profile completed",
            StopReason::LowVoltageCutoff => "low-voltage cutoff",
            StopReason::HighVoltageCutoff => "high-voltage cutoff",
            StopReason::Empty => "cell empty",
            StopReason::Full => "cell full",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soc_construction_validates() {
        assert!(Soc::new(0.0).is_some());
        assert!(Soc::new(1.0).is_some());
        assert!(Soc::new(-0.01).is_none());
        assert!(Soc::new(1.01).is_none());
        assert!(Soc::new(f64::NAN).is_none());
    }

    #[test]
    fn soc_clamping() {
        assert_eq!(Soc::clamped(-3.0), Soc::EMPTY);
        assert_eq!(Soc::clamped(7.0), Soc::FULL);
        assert_eq!(Soc::clamped(f64::NAN), Soc::EMPTY);
        assert_eq!(Soc::clamped(0.4).value(), 0.4);
    }

    #[test]
    fn soc_shift_saturates() {
        let s = Soc::new(0.9).unwrap();
        assert_eq!(s.shifted(0.5), Soc::FULL);
        assert!((s.shifted(-0.4).value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn soc_display() {
        assert_eq!(format!("{}", Soc::new(0.425).unwrap()), "42.5%");
    }

    #[test]
    fn rested_state_has_no_polarization() {
        let st = CellState::rested(Soc::FULL, 25.0);
        assert_eq!(st.rc_voltages, [0.0, 0.0]);
        assert_eq!(st.temperature_c, 25.0);
    }

    #[test]
    fn stop_reason_display_nonempty() {
        for r in [
            StopReason::ProfileEnd,
            StopReason::LowVoltageCutoff,
            StopReason::HighVoltageCutoff,
            StopReason::Empty,
            StopReason::Full,
        ] {
            assert!(!format!("{r}").is_empty());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let rec = SimRecord {
            time_s: 1.0,
            voltage_v: 3.7,
            current_a: 1.5,
            temperature_c: 25.0,
            soc: 0.8,
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: SimRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(rec, back);
    }
}
