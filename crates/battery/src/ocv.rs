//! Open-circuit-voltage curves: OCV as a function of SoC and temperature.

use crate::types::Soc;
use serde::{Deserialize, Serialize};

/// A monotone piecewise-linear OCV–SoC curve with a linear temperature
/// correction (entropy coefficient).
///
/// Breakpoints are evenly spaced in SoC from 0 to 1. Monotonicity is
/// validated at construction so the inverse lookup ([`OcvCurve::soc_at`])
/// is well defined — which is what the EKF and OCV-based estimators need.
///
/// # Examples
///
/// ```
/// use pinnsoc_battery::{OcvCurve, Soc};
///
/// let curve = OcvCurve::new(vec![3.0, 3.5, 3.7, 3.9, 4.2], 25.0, -0.0003).unwrap();
/// let v = curve.voltage(Soc::new(0.5).unwrap(), 25.0);
/// assert!((v - 3.7).abs() < 1e-9);
/// let s = curve.soc_at(v, 25.0).unwrap();
/// assert!((s.value() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcvCurve {
    /// OCV values at evenly spaced SoC breakpoints (index 0 ↔ SoC 0).
    points: Vec<f64>,
    /// Temperature at which `points` were characterized, °C.
    reference_temp_c: f64,
    /// dOCV/dT in V/K (entropy coefficient), applied uniformly.
    temp_coefficient: f64,
}

/// Error constructing an [`OcvCurve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OcvCurveError {
    /// Fewer than two breakpoints were supplied.
    TooFewPoints,
    /// The supplied OCV values are not strictly increasing.
    NotMonotone,
    /// A value was NaN or infinite.
    NonFinite,
}

impl std::fmt::Display for OcvCurveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OcvCurveError::TooFewPoints => "OCV curve needs at least two breakpoints",
            OcvCurveError::NotMonotone => "OCV curve must be strictly increasing in SoC",
            OcvCurveError::NonFinite => "OCV curve values must be finite",
        };
        f.write_str(s)
    }
}

impl std::error::Error for OcvCurveError {}

impl OcvCurve {
    /// Creates a curve from evenly spaced breakpoints.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two points are given, any value is
    /// non-finite, or the values are not strictly increasing.
    pub fn new(
        points: Vec<f64>,
        reference_temp_c: f64,
        temp_coefficient: f64,
    ) -> Result<Self, OcvCurveError> {
        if points.len() < 2 {
            return Err(OcvCurveError::TooFewPoints);
        }
        if points.iter().any(|v| !v.is_finite())
            || !reference_temp_c.is_finite()
            || !temp_coefficient.is_finite()
        {
            return Err(OcvCurveError::NonFinite);
        }
        if points.windows(2).any(|w| w[1] <= w[0]) {
            return Err(OcvCurveError::NotMonotone);
        }
        Ok(Self {
            points,
            reference_temp_c,
            temp_coefficient,
        })
    }

    /// OCV at the given SoC and temperature.
    pub fn voltage(&self, soc: Soc, temperature_c: f64) -> f64 {
        let s = soc.value();
        let n = self.points.len() - 1;
        let pos = s * n as f64;
        let idx = (pos.floor() as usize).min(n - 1);
        let frac = pos - idx as f64;
        let base = self.points[idx] * (1.0 - frac) + self.points[idx + 1] * frac;
        base + self.temp_coefficient * (temperature_c - self.reference_temp_c)
    }

    /// Derivative dOCV/dSoC at the given SoC (piecewise constant).
    ///
    /// Used by the EKF measurement Jacobian.
    pub fn slope(&self, soc: Soc) -> f64 {
        let n = self.points.len() - 1;
        let idx = ((soc.value() * n as f64).floor() as usize).min(n - 1);
        (self.points[idx + 1] - self.points[idx]) * n as f64
    }

    /// Inverse lookup: the SoC whose OCV equals `voltage` at `temperature_c`,
    /// or `None` if the voltage is outside the curve's range.
    pub fn soc_at(&self, voltage: f64, temperature_c: f64) -> Option<Soc> {
        let v = voltage - self.temp_coefficient * (temperature_c - self.reference_temp_c);
        let n = self.points.len() - 1;
        if v < self.points[0] || v > self.points[n] {
            return None;
        }
        // Binary search over the strictly increasing breakpoints.
        let mut lo = 0usize;
        let mut hi = n;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.points[mid] <= v {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let span = self.points[hi] - self.points[lo];
        let frac = (v - self.points[lo]) / span;
        Soc::new((lo as f64 + frac) / n as f64)
    }

    /// Lowest OCV on the curve (SoC = 0) at the reference temperature.
    pub fn min_voltage(&self) -> f64 {
        self.points[0]
    }

    /// Highest OCV on the curve (SoC = 1) at the reference temperature.
    pub fn max_voltage(&self) -> f64 {
        *self.points.last().expect("validated non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> OcvCurve {
        OcvCurve::new(vec![3.0, 3.4, 3.6, 3.8, 4.2], 25.0, -0.0005).unwrap()
    }

    #[test]
    fn endpoints() {
        let c = curve();
        assert_eq!(c.voltage(Soc::EMPTY, 25.0), 3.0);
        assert_eq!(c.voltage(Soc::FULL, 25.0), 4.2);
        assert_eq!(c.min_voltage(), 3.0);
        assert_eq!(c.max_voltage(), 4.2);
    }

    #[test]
    fn interpolation_midpoints() {
        let c = curve();
        assert!((c.voltage(Soc::new(0.125).unwrap(), 25.0) - 3.2).abs() < 1e-9);
        assert!((c.voltage(Soc::new(0.875).unwrap(), 25.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_correction() {
        let c = curve();
        let cold = c.voltage(Soc::new(0.5).unwrap(), 0.0);
        let ref_v = c.voltage(Soc::new(0.5).unwrap(), 25.0);
        assert!((cold - (ref_v + 0.0005 * 25.0)).abs() < 1e-9);
    }

    #[test]
    fn inverse_roundtrip_many_points() {
        let c = curve();
        for i in 0..=100 {
            let s = Soc::new(i as f64 / 100.0).unwrap();
            for t in [0.0, 25.0, 40.0] {
                let v = c.voltage(s, t);
                let back = c.soc_at(v, t).expect("in range");
                assert!(
                    (back.value() - s.value()).abs() < 1e-9,
                    "roundtrip failed at soc {} temp {t}",
                    s.value()
                );
            }
        }
    }

    #[test]
    fn inverse_out_of_range() {
        let c = curve();
        assert!(c.soc_at(2.0, 25.0).is_none());
        assert!(c.soc_at(5.0, 25.0).is_none());
    }

    #[test]
    fn slope_positive_everywhere() {
        let c = curve();
        for i in 0..=20 {
            assert!(c.slope(Soc::clamped(i as f64 / 20.0)) > 0.0);
        }
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            OcvCurve::new(vec![3.0], 25.0, 0.0).unwrap_err(),
            OcvCurveError::TooFewPoints
        );
        assert_eq!(
            OcvCurve::new(vec![3.0, 2.9], 25.0, 0.0).unwrap_err(),
            OcvCurveError::NotMonotone
        );
        assert_eq!(
            OcvCurve::new(vec![3.0, f64::NAN], 25.0, 0.0).unwrap_err(),
            OcvCurveError::NonFinite
        );
    }
}
