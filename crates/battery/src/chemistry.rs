//! Cell chemistry presets matching the cells used in the paper's datasets.
//!
//! The Sandia dataset \[5\] cycles commercial 18650 cells of three chemistries
//! (NCA, NMC, LFP); the LG dataset \[6\] uses an LG 18650HG2 (NMC, 3 Ah).
//! Parameter values are representative datasheet/literature numbers for
//! these cell classes — see DESIGN.md §2 for why representative values are
//! sufficient for the reproduction.

use crate::ocv::OcvCurve;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Li-ion cell chemistry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Chemistry {
    /// Lithium nickel cobalt aluminium oxide (e.g. Panasonic NCR18650B).
    Nca,
    /// Lithium nickel manganese cobalt oxide (e.g. LG 18650HG2 class).
    Nmc,
    /// Lithium iron phosphate — flat OCV plateau, the hard case for
    /// voltage-based SoC estimation.
    Lfp,
}

impl fmt::Display for Chemistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Chemistry::Nca => "NCA",
            Chemistry::Nmc => "NMC",
            Chemistry::Lfp => "LFP",
        };
        f.write_str(s)
    }
}

impl Chemistry {
    /// All chemistries cycled in the Sandia dataset.
    pub const ALL: [Chemistry; 3] = [Chemistry::Nca, Chemistry::Nmc, Chemistry::Lfp];
}

/// Complete electro-thermal parameter set for one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellParams {
    /// Chemistry family.
    pub chemistry: Chemistry,
    /// Rated capacity, amp-hours (`C_rated` in paper Eq. 1).
    pub capacity_ah: f64,
    /// OCV–SoC curve at the reference temperature.
    pub ocv: OcvCurve,
    /// Ohmic resistance at 25 °C and mid SoC, ohms.
    pub r0_ohm: f64,
    /// First RC branch resistance, ohms (fast polarization, τ ≈ seconds).
    pub r1_ohm: f64,
    /// First RC branch capacitance, farads.
    pub c1_farad: f64,
    /// Second RC branch resistance, ohms (slow diffusion, τ ≈ minutes).
    pub r2_ohm: f64,
    /// Second RC branch capacitance, farads.
    pub c2_farad: f64,
    /// Arrhenius activation temperature for resistances, kelvin
    /// (R(T) = R_ref · exp(Ea·(1/T − 1/T_ref))).
    pub arrhenius_k: f64,
    /// Discharge cutoff voltage, volts.
    pub v_min: f64,
    /// Charge cutoff voltage, volts.
    pub v_max: f64,
    /// Cell mass, kg.
    pub mass_kg: f64,
    /// Specific heat capacity, J/(kg·K).
    pub specific_heat: f64,
    /// Convective heat transfer coefficient × area, W/K.
    pub h_conv: f64,
}

impl CellParams {
    /// Representative NCA 18650 (≈3.2 Ah class), as cycled by Sandia.
    pub fn nca_18650() -> Self {
        Self {
            chemistry: Chemistry::Nca,
            capacity_ah: 3.2,
            ocv: OcvCurve::new(
                vec![
                    2.50, 3.30, 3.46, 3.55, 3.62, 3.70, 3.78, 3.87, 3.96, 4.07, 4.20,
                ],
                25.0,
                -0.0003,
            )
            .expect("static NCA curve is valid"),
            r0_ohm: 0.032,
            r1_ohm: 0.018,
            c1_farad: 1.2e3,
            r2_ohm: 0.012,
            c2_farad: 2.5e4,
            arrhenius_k: 2300.0,
            v_min: 2.5,
            v_max: 4.2,
            mass_kg: 0.0475,
            specific_heat: 900.0,
            h_conv: 0.12,
        }
    }

    /// Representative NMC 18650 (≈3.0 Ah class), as cycled by Sandia.
    pub fn nmc_18650() -> Self {
        Self {
            chemistry: Chemistry::Nmc,
            capacity_ah: 3.0,
            ocv: OcvCurve::new(
                vec![
                    2.50, 3.35, 3.50, 3.58, 3.65, 3.72, 3.80, 3.88, 3.97, 4.06, 4.18,
                ],
                25.0,
                -0.0003,
            )
            .expect("static NMC curve is valid"),
            r0_ohm: 0.028,
            r1_ohm: 0.015,
            c1_farad: 1.5e3,
            r2_ohm: 0.010,
            c2_farad: 3.0e4,
            arrhenius_k: 2200.0,
            v_min: 2.5,
            v_max: 4.2,
            mass_kg: 0.046,
            specific_heat: 900.0,
            h_conv: 0.12,
        }
    }

    /// Representative LFP 18650 (≈1.1 Ah class), as cycled by Sandia.
    ///
    /// LFP's plateau makes the OCV–SoC mapping nearly flat between 20 % and
    /// 90 % SoC, which is what makes data-driven estimation interesting.
    pub fn lfp_18650() -> Self {
        Self {
            chemistry: Chemistry::Lfp,
            capacity_ah: 1.1,
            ocv: OcvCurve::new(
                vec![
                    2.00, 3.05, 3.19, 3.24, 3.27, 3.29, 3.305, 3.32, 3.335, 3.36, 3.55,
                ],
                25.0,
                -0.0001,
            )
            .expect("static LFP curve is valid"),
            r0_ohm: 0.045,
            r1_ohm: 0.022,
            c1_farad: 1.0e3,
            r2_ohm: 0.015,
            c2_farad: 2.0e4,
            arrhenius_k: 2500.0,
            v_min: 2.0,
            v_max: 3.65,
            mass_kg: 0.040,
            specific_heat: 950.0,
            h_conv: 0.12,
        }
    }

    /// LG 18650HG2: the 3 Ah NMC cell of the LG (McMaster) dataset \[6\].
    pub fn lg_hg2() -> Self {
        Self {
            chemistry: Chemistry::Nmc,
            capacity_ah: 3.0,
            ocv: OcvCurve::new(
                vec![
                    2.50, 3.32, 3.48, 3.56, 3.62, 3.69, 3.77, 3.86, 3.95, 4.05, 4.20,
                ],
                25.0,
                -0.0003,
            )
            .expect("static HG2 curve is valid"),
            r0_ohm: 0.022,
            r1_ohm: 0.013,
            c1_farad: 1.8e3,
            r2_ohm: 0.009,
            c2_farad: 3.5e4,
            arrhenius_k: 2400.0,
            v_min: 2.5,
            v_max: 4.2,
            mass_kg: 0.047,
            specific_heat: 900.0,
            h_conv: 0.12,
        }
    }

    /// Preset for a Sandia-cycled chemistry.
    pub fn sandia(chemistry: Chemistry) -> Self {
        match chemistry {
            Chemistry::Nca => Self::nca_18650(),
            Chemistry::Nmc => Self::nmc_18650(),
            Chemistry::Lfp => Self::lfp_18650(),
        }
    }

    /// Current corresponding to a C-rate for this cell (e.g. `c_rate(2.0)` =
    /// the 2C current in amps).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite.
    pub fn c_rate(&self, rate: f64) -> f64 {
        assert!(rate.is_finite(), "C-rate must be finite");
        rate * self.capacity_ah
    }

    /// Resistance Arrhenius factor at a temperature, relative to 25 °C.
    pub fn resistance_factor(&self, temperature_c: f64) -> f64 {
        let t_ref = 298.15;
        let t = (temperature_c + 273.15).max(200.0);
        (self.arrhenius_k * (1.0 / t - 1.0 / t_ref)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Soc;

    #[test]
    fn presets_have_sane_ranges() {
        for p in [
            CellParams::nca_18650(),
            CellParams::nmc_18650(),
            CellParams::lfp_18650(),
            CellParams::lg_hg2(),
        ] {
            assert!(p.capacity_ah > 0.5 && p.capacity_ah < 5.0);
            assert!(p.r0_ohm > 0.0 && p.r0_ohm < 0.1);
            assert!(p.v_min < p.ocv.min_voltage() + 0.75);
            assert!(p.v_max >= p.ocv.max_voltage());
            assert!(p.ocv.min_voltage() >= p.v_min);
        }
    }

    #[test]
    fn lfp_plateau_is_flat() {
        let p = CellParams::lfp_18650();
        let v30 = p.ocv.voltage(Soc::new(0.3).unwrap(), 25.0);
        let v80 = p.ocv.voltage(Soc::new(0.8).unwrap(), 25.0);
        assert!(
            (v80 - v30) < 0.1,
            "LFP plateau should span <100 mV between 30% and 80% SoC, got {}",
            v80 - v30
        );
        // While NMC has a clearly sloped curve over the same span.
        let n = CellParams::nmc_18650();
        let nv30 = n.ocv.voltage(Soc::new(0.3).unwrap(), 25.0);
        let nv80 = n.ocv.voltage(Soc::new(0.8).unwrap(), 25.0);
        assert!((nv80 - nv30) > 0.2);
    }

    #[test]
    fn c_rate_scales_with_capacity() {
        let p = CellParams::lg_hg2();
        assert!((p.c_rate(1.0) - 3.0).abs() < 1e-12);
        assert!((p.c_rate(3.0) - 9.0).abs() < 1e-12);
        assert!((p.c_rate(-0.5) + 1.5).abs() < 1e-12); // charging at 0.5C
    }

    #[test]
    fn resistance_rises_in_cold() {
        let p = CellParams::lg_hg2();
        let cold = p.resistance_factor(-20.0);
        let hot = p.resistance_factor(45.0);
        assert!(cold > 1.5, "cold factor {cold}");
        assert!(hot < 1.0, "hot factor {hot}");
        assert!((p.resistance_factor(25.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sandia_dispatch() {
        for c in Chemistry::ALL {
            assert_eq!(CellParams::sandia(c).chemistry, c);
        }
    }

    #[test]
    fn chemistry_display() {
        assert_eq!(Chemistry::Lfp.to_string(), "LFP");
    }

    #[test]
    fn serde_roundtrip() {
        let p = CellParams::lg_hg2();
        let json = serde_json::to_string(&p).unwrap();
        let back: CellParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
