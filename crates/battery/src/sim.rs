//! Time-domain cell simulator: ECM + thermal model + exact Coulomb
//! integration of the ground-truth SoC.
//!
//! This is the workspace's stand-in for the physical cells behind the Sandia
//! and LG datasets: every synthetic dataset sample is a [`SimRecord`]
//! produced here.

use crate::chemistry::CellParams;
use crate::ecm::{Ecm, EcmOrder};
use crate::thermal::LumpedThermal;
use crate::types::{CellState, SimRecord, Soc, StopReason};
use serde::{Deserialize, Serialize};

/// A completed simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimRun {
    /// Sampled records, oldest first.
    pub records: Vec<SimRecord>,
    /// Why the run ended.
    pub stop: StopReason,
}

impl SimRun {
    /// Ground-truth SoC trace of the run.
    pub fn soc_trace(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.soc).collect()
    }

    /// Total charge throughput (∫|I|dt), amp-hours.
    pub fn charge_throughput_ah(&self) -> f64 {
        let mut ah = 0.0;
        for w in self.records.windows(2) {
            let dt = w[1].time_s - w[0].time_s;
            ah += w[0].current_a.abs() * dt / 3600.0;
        }
        ah
    }
}

/// Stateful electro-thermal cell simulator.
///
/// # Examples
///
/// ```
/// use pinnsoc_battery::{CellParams, CellSim, Soc};
///
/// let mut sim = CellSim::new(CellParams::lg_hg2(), Soc::FULL, 25.0);
/// // Discharge at 1C for one minute, sampled every second.
/// let run = sim.run_constant_current(3.0, 60.0, 1.0, 1.0);
/// assert!(run.records.last().unwrap().soc < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct CellSim {
    ecm: Ecm,
    thermal: LumpedThermal,
    state: CellState,
    time_s: f64,
}

impl CellSim {
    /// Creates a rested cell at the given SoC and ambient temperature,
    /// using the default second-order ECM.
    pub fn new(params: CellParams, initial_soc: Soc, ambient_c: f64) -> Self {
        Self::with_order(params, initial_soc, ambient_c, EcmOrder::Two)
    }

    /// Creates a simulator with an explicit ECM order.
    pub fn with_order(
        params: CellParams,
        initial_soc: Soc,
        ambient_c: f64,
        order: EcmOrder,
    ) -> Self {
        let thermal = LumpedThermal::new(&params, ambient_c);
        let ecm = Ecm::new(params, order);
        Self {
            ecm,
            thermal,
            state: CellState::rested(initial_soc, ambient_c),
            time_s: 0.0,
        }
    }

    /// Current cell state.
    pub fn state(&self) -> &CellState {
        &self.state
    }

    /// Elapsed simulation time, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// The cell parameters in use.
    pub fn params(&self) -> &CellParams {
        self.ecm.params()
    }

    /// Changes the ambient temperature (between cycles).
    pub fn set_ambient_c(&mut self, ambient_c: f64) {
        self.thermal.set_ambient_c(ambient_c);
    }

    /// Resets to a rested state at the given SoC without changing ambient.
    pub fn reset(&mut self, soc: Soc) {
        self.state = CellState::rested(soc, self.thermal.ambient_c());
        self.time_s = 0.0;
    }

    /// Advances one step of `dt_s` seconds at constant `current_a`
    /// (positive = discharge) and returns the end-of-interval measurement.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not positive or `current_a` is not finite.
    pub fn step(&mut self, current_a: f64, dt_s: f64) -> SimRecord {
        assert!(dt_s > 0.0, "time step must be positive");
        assert!(current_a.is_finite(), "current must be finite");
        let heat = self.ecm.heat_generation(&self.state, current_a);
        self.state.rc_voltages = self.ecm.step_polarization(&self.state, current_a, dt_s);
        self.state.soc = self.state.soc.shifted(self.ecm.soc_delta(current_a, dt_s));
        self.state.temperature_c = self.thermal.step(self.state.temperature_c, heat, dt_s);
        self.time_s += dt_s;
        SimRecord {
            time_s: self.time_s,
            voltage_v: self.ecm.terminal_voltage(&self.state, current_a),
            current_a,
            temperature_c: self.state.temperature_c,
            soc: self.state.soc.value(),
        }
    }

    /// Terminal voltage that applying `current_a` to the present state would
    /// produce (before polarization has further evolved). Lets a BMS-style
    /// caller limit regen current against the charge cutoff.
    pub fn terminal_voltage_if(&self, current_a: f64) -> f64 {
        self.ecm.terminal_voltage(&self.state, current_a)
    }

    /// Checks whether the given just-measured record should terminate a run
    /// (voltage cutoff in the direction of the current, or an SoC rail).
    pub fn stop_reason_for(&self, record: &SimRecord) -> Option<StopReason> {
        let p = self.ecm.params();
        if record.current_a > 0.0 && record.voltage_v <= p.v_min {
            Some(StopReason::LowVoltageCutoff)
        } else if record.current_a < 0.0 && record.voltage_v >= p.v_max {
            Some(StopReason::HighVoltageCutoff)
        } else if self.state.soc == Soc::EMPTY && record.current_a > 0.0 {
            Some(StopReason::Empty)
        } else if self.state.soc == Soc::FULL && record.current_a < 0.0 {
            Some(StopReason::Full)
        } else {
            None
        }
    }

    /// Runs a current profile given as per-step currents each lasting
    /// `dt_s`, recording every `sample_every_s` seconds. Stops early on
    /// voltage cutoff or an SoC rail.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every_s < dt_s` or either is non-positive.
    pub fn run_profile(
        &mut self,
        currents: impl IntoIterator<Item = f64>,
        dt_s: f64,
        sample_every_s: f64,
    ) -> SimRun {
        assert!(
            dt_s > 0.0 && sample_every_s > 0.0,
            "time steps must be positive"
        );
        assert!(
            sample_every_s >= dt_s - 1e-12,
            "sampling interval must be at least the simulation step"
        );
        let per_sample = (sample_every_s / dt_s).round().max(1.0) as usize;
        let mut records = Vec::new();
        let mut stop = StopReason::ProfileEnd;
        let mut step_idx = 0usize;
        for current in currents {
            let record = self.step(current, dt_s);
            step_idx += 1;
            if step_idx.is_multiple_of(per_sample) {
                records.push(record);
            }
            if let Some(reason) = self.stop_reason_for(&record) {
                if !step_idx.is_multiple_of(per_sample) {
                    records.push(record);
                }
                stop = reason;
                break;
            }
        }
        SimRun { records, stop }
    }

    /// Runs at constant current for up to `duration_s` seconds (or cutoff).
    pub fn run_constant_current(
        &mut self,
        current_a: f64,
        duration_s: f64,
        dt_s: f64,
        sample_every_s: f64,
    ) -> SimRun {
        assert!(duration_s > 0.0, "duration must be positive");
        let steps = (duration_s / dt_s).ceil() as usize;
        self.run_profile(std::iter::repeat_n(current_a, steps), dt_s, sample_every_s)
    }

    /// Constant-current discharge until the low-voltage cutoff or empty.
    ///
    /// `rate_c` is a positive C-rate (e.g. `2.0` for a 2C discharge).
    pub fn discharge_to_cutoff(&mut self, rate_c: f64, dt_s: f64, sample_every_s: f64) -> SimRun {
        assert!(rate_c > 0.0, "discharge rate must be positive");
        let current = self.params().c_rate(rate_c);
        // 3/rate_c hours is always beyond cutoff for a real discharge.
        let max_duration = 3.0 * 3600.0 / rate_c;
        self.run_constant_current(current, max_duration, dt_s, sample_every_s)
    }

    /// Constant-current charge until the high-voltage cutoff or full.
    pub fn charge_to_cutoff(&mut self, rate_c: f64, dt_s: f64, sample_every_s: f64) -> SimRun {
        assert!(rate_c > 0.0, "charge rate must be positive");
        let current = -self.params().c_rate(rate_c);
        let max_duration = 3.0 * 3600.0 / rate_c;
        self.run_constant_current(current, max_duration, dt_s, sample_every_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_cell() -> CellSim {
        CellSim::new(CellParams::lg_hg2(), Soc::FULL, 25.0)
    }

    #[test]
    fn one_hour_1c_discharge_empties_or_cuts_off() {
        let mut sim = full_cell();
        let run = sim.discharge_to_cutoff(1.0, 1.0, 60.0);
        let last = run.records.last().unwrap();
        assert!(
            matches!(run.stop, StopReason::LowVoltageCutoff | StopReason::Empty),
            "stop was {:?}",
            run.stop
        );
        assert!(
            last.soc < 0.1,
            "cell should be nearly empty, soc={}",
            last.soc
        );
        // Duration should be slightly under an hour (IR drop trips cutoff early).
        assert!(last.time_s <= 3600.0 + 1.0);
        assert!(last.time_s > 3000.0);
    }

    #[test]
    fn higher_rate_discharges_less_charge() {
        // The rate-capacity effect the Sandia train/test split relies on:
        // at 3C the cutoff trips earlier, so less charge is extracted.
        let mut s1 = full_cell();
        let r1 = s1.discharge_to_cutoff(1.0, 1.0, 10.0);
        let mut s3 = full_cell();
        let r3 = s3.discharge_to_cutoff(3.0, 1.0, 10.0);
        let final1 = r1.records.last().unwrap().soc;
        let final3 = r3.records.last().unwrap().soc;
        assert!(
            final3 > final1 + 0.01,
            "3C should leave more residual SoC: 1C -> {final1}, 3C -> {final3}"
        );
    }

    #[test]
    fn voltage_monotone_enough_during_discharge() {
        let mut sim = full_cell();
        let run = sim.discharge_to_cutoff(1.0, 1.0, 60.0);
        let first = run.records.first().unwrap().voltage_v;
        let last = run.records.last().unwrap().voltage_v;
        assert!(first > last);
        assert!(last <= sim.params().v_min + 0.05);
    }

    #[test]
    fn cell_heats_under_load_and_cools_at_rest() {
        let mut sim = full_cell();
        let run = sim.run_constant_current(9.0, 600.0, 1.0, 60.0);
        let hot = run.records.last().unwrap().temperature_c;
        assert!(hot > 25.5, "3C for 10 min should heat the cell, got {hot}");
        let rest = sim.run_constant_current(1e-9, 7200.0, 10.0, 600.0);
        let cooled = rest.records.last().unwrap().temperature_c;
        assert!(cooled < hot, "resting must cool the cell");
    }

    #[test]
    fn charge_stops_at_high_cutoff_or_full() {
        let mut sim = CellSim::new(CellParams::lg_hg2(), Soc::new(0.2).unwrap(), 25.0);
        let run = sim.charge_to_cutoff(0.5, 1.0, 60.0);
        assert!(matches!(
            run.stop,
            StopReason::HighVoltageCutoff | StopReason::Full
        ));
        assert!(run.records.last().unwrap().soc > 0.8);
    }

    #[test]
    fn ground_truth_soc_matches_analytic_coulomb_count() {
        let mut sim = full_cell();
        // 0.5C for 30 minutes = exactly 25% SoC drop, regardless of voltages.
        let current = sim.params().c_rate(0.5);
        let run = sim.run_constant_current(current, 1800.0, 1.0, 1800.0);
        let last = run.records.last().unwrap();
        assert!((last.soc - 0.75).abs() < 1e-9, "soc {}", last.soc);
    }

    #[test]
    fn sampling_interval_respected() {
        let mut sim = full_cell();
        let run = sim.run_constant_current(3.0, 600.0, 0.5, 120.0);
        assert!(run.records.len() >= 4);
        let dt = run.records[1].time_s - run.records[0].time_s;
        assert!((dt - 120.0).abs() < 1e-9);
    }

    #[test]
    fn cold_start_has_lower_voltage() {
        let warm = {
            let mut sim = CellSim::new(CellParams::lg_hg2(), Soc::new(0.8).unwrap(), 25.0);
            sim.step(3.0, 1.0).voltage_v
        };
        let cold = {
            let mut sim = CellSim::new(CellParams::lg_hg2(), Soc::new(0.8).unwrap(), -10.0);
            sim.step(3.0, 1.0).voltage_v
        };
        assert!(cold < warm, "cold {cold} vs warm {warm}");
    }

    #[test]
    fn reset_restores_rested_state() {
        let mut sim = full_cell();
        let _ = sim.run_constant_current(5.0, 300.0, 1.0, 60.0);
        sim.reset(Soc::new(0.6).unwrap());
        assert_eq!(sim.time_s(), 0.0);
        assert_eq!(sim.state().rc_voltages, [0.0, 0.0]);
        assert_eq!(sim.state().soc.value(), 0.6);
    }

    #[test]
    fn charge_throughput_accounting() {
        let mut sim = full_cell();
        let run = sim.run_constant_current(3.0, 1200.0, 1.0, 1.0);
        // 3 A for 20 min = 1 Ah.
        assert!(
            (run.charge_throughput_ah() - 1.0).abs() < 0.01,
            "{}",
            run.charge_throughput_ah()
        );
    }
}
