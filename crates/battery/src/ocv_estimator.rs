//! OCV-lookup SoC estimation — the classic direct-measurement method
//! (category 1 in §II of the paper, after Ng et al. \[9\]).
//!
//! Valid only when the cell is (nearly) at rest: under load, terminal
//! voltage differs from OCV by the IR drop and polarization, which this
//! method can optionally compensate to first order using the ohmic
//! resistance.

use crate::chemistry::CellParams;
use crate::types::Soc;

/// Rest-gated OCV-inverse SoC estimator.
///
/// # Examples
///
/// ```
/// use pinnsoc_battery::{CellParams, OcvSocEstimator, Soc};
///
/// let est = OcvSocEstimator::new(CellParams::lg_hg2());
/// let params = CellParams::lg_hg2();
/// let v = params.ocv.voltage(Soc::new(0.6).unwrap(), 25.0);
/// let soc = est.estimate(v, 0.0, 25.0).unwrap();
/// assert!((soc.value() - 0.6).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct OcvSocEstimator {
    params: CellParams,
    /// Currents above this magnitude are considered "under load", amps.
    rest_threshold_a: f64,
    /// Whether to subtract the first-order `I·R0` drop under load.
    ir_compensation: bool,
}

impl OcvSocEstimator {
    /// Creates a rest-only estimator (no IR compensation) with a 50 mA
    /// rest threshold.
    pub fn new(params: CellParams) -> Self {
        Self {
            params,
            rest_threshold_a: 0.05,
            ir_compensation: false,
        }
    }

    /// Enables first-order IR compensation so the estimator also answers
    /// under load (with degraded accuracy — polarization is not modelled).
    pub fn with_ir_compensation(mut self) -> Self {
        self.ir_compensation = true;
        self
    }

    /// Overrides the rest-detection threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is negative.
    pub fn with_rest_threshold(mut self, threshold_a: f64) -> Self {
        assert!(threshold_a >= 0.0, "rest threshold must be non-negative");
        self.rest_threshold_a = threshold_a;
        self
    }

    /// Estimates SoC from a measurement, or `None` when the cell is under
    /// load (without IR compensation) or the voltage is outside the OCV
    /// curve's range.
    pub fn estimate(&self, voltage_v: f64, current_a: f64, temperature_c: f64) -> Option<Soc> {
        let at_rest = current_a.abs() <= self.rest_threshold_a;
        if !at_rest && !self.ir_compensation {
            return None;
        }
        let compensated = if at_rest {
            voltage_v
        } else {
            let factor = self.params.resistance_factor(temperature_c);
            voltage_v + current_a * self.params.r0_ohm * factor
        };
        self.params.ocv.soc_at(compensated, temperature_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::CellSim;

    #[test]
    fn exact_at_rest() {
        let params = CellParams::nmc_18650();
        let est = OcvSocEstimator::new(params.clone());
        for soc in [0.1, 0.35, 0.6, 0.95] {
            let s = Soc::new(soc).unwrap();
            let v = params.ocv.voltage(s, 25.0);
            let got = est.estimate(v, 0.0, 25.0).expect("in range");
            assert!((got.value() - soc).abs() < 1e-9);
        }
    }

    #[test]
    fn refuses_under_load_without_compensation() {
        let est = OcvSocEstimator::new(CellParams::lg_hg2());
        assert!(est.estimate(3.7, 3.0, 25.0).is_none());
        assert!(est.estimate(3.7, 0.01, 25.0).is_some());
    }

    #[test]
    fn ir_compensation_reduces_load_error() {
        // Simulate a loaded cell; the compensated estimate should beat the
        // naive inverse lookup.
        let params = CellParams::lg_hg2();
        let mut sim = CellSim::new(params.clone(), Soc::new(0.7).unwrap(), 25.0);
        let rec = sim.step(3.0, 1.0); // short step: polarization still small
        let naive = params.ocv.soc_at(rec.voltage_v, rec.temperature_c);
        let compensated = OcvSocEstimator::new(params)
            .with_ir_compensation()
            .estimate(rec.voltage_v, rec.current_a, rec.temperature_c)
            .expect("in range");
        let naive_err = naive.map_or(1.0, |s| (s.value() - rec.soc).abs());
        let comp_err = (compensated.value() - rec.soc).abs();
        assert!(
            comp_err < naive_err,
            "compensated {comp_err} should beat naive {naive_err}"
        );
    }

    #[test]
    fn lfp_plateau_makes_ocv_estimation_ill_conditioned() {
        // The motivating weakness: on LFP, a few mV of error moves the
        // estimate across a wide SoC span.
        let sensitivity = |params: CellParams| {
            let est = OcvSocEstimator::new(params.clone());
            let v = params.ocv.voltage(Soc::new(0.5).unwrap(), 25.0);
            let shifted = est.estimate(v + 0.01, 0.0, 25.0).expect("in range");
            (shifted.value() - 0.5).abs()
        };
        let lfp = sensitivity(CellParams::lfp_18650());
        let nmc = sensitivity(CellParams::nmc_18650());
        assert!(
            lfp > 3.0 * nmc,
            "10 mV should move LFP ({lfp:.3}) far more than NMC ({nmc:.3})"
        );
        assert!(lfp > 0.04, "LFP plateau sensitivity {lfp:.3} too small");
    }

    #[test]
    fn out_of_range_voltage_is_none() {
        let est = OcvSocEstimator::new(CellParams::lg_hg2());
        assert!(est.estimate(5.0, 0.0, 25.0).is_none());
        assert!(est.estimate(1.0, 0.0, 25.0).is_none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_panics() {
        let _ = OcvSocEstimator::new(CellParams::lg_hg2()).with_rest_threshold(-1.0);
    }
}
