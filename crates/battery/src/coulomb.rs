//! Coulomb counting — the physics equation the paper embeds in its loss.
//!
//! Paper Eq. (1):
//!
//! ```text
//! SoC_p(t + Np) = SoC(t) + (1 / C_rated) ∫ I dt
//! ```
//!
//! with our sign convention (positive current = discharge) the integral term
//! enters with a minus sign. Two forms are provided: the closed-form
//! constant-current step used by the physics loss, and a running
//! [`CoulombCounter`] estimator used as a classic direct-measurement
//! baseline (category 1 in §II of the paper).

use crate::types::Soc;
use serde::{Deserialize, Serialize};

/// Closed-form Coulomb prediction for a constant average current.
///
/// This is exactly the quantity the physics loss supervises Branch 2 with:
/// given an initial SoC, an average current `current_a` (positive =
/// discharge) over `horizon_s` seconds, and the rated capacity, it returns
/// the predicted SoC, saturated into `[0, 1]`.
///
/// # Examples
///
/// ```
/// use pinnsoc_battery::{coulomb_predict, Soc};
///
/// // 1C discharge on a 3Ah cell for 360 s = 10% drop.
/// let next = coulomb_predict(Soc::new(0.5).unwrap(), 3.0, 360.0, 3.0);
/// assert!((next.value() - 0.4).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if `capacity_ah` is not positive or `horizon_s` is negative.
pub fn coulomb_predict(initial: Soc, current_a: f64, horizon_s: f64, capacity_ah: f64) -> Soc {
    assert!(capacity_ah > 0.0, "capacity must be positive");
    assert!(horizon_s >= 0.0, "horizon must be non-negative");
    initial.shifted(-current_a * horizon_s / (3600.0 * capacity_ah))
}

/// Running Coulomb-counting SoC estimator.
///
/// Integrates measured current over time. Like its real counterpart it
/// drifts with current-sensor bias and has no way to correct an erroneous
/// initial SoC — which is precisely the weakness the paper's Branch 1
/// addresses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoulombCounter {
    capacity_ah: f64,
    soc: Soc,
    /// Additive current-sensor bias, amps (fault-injection knob for tests).
    sensor_bias_a: f64,
}

impl CoulombCounter {
    /// Creates a counter from an assumed initial SoC.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_ah` is not positive.
    pub fn new(initial: Soc, capacity_ah: f64) -> Self {
        assert!(capacity_ah > 0.0, "capacity must be positive");
        Self {
            capacity_ah,
            soc: initial,
            sensor_bias_a: 0.0,
        }
    }

    /// Adds a constant current-sensor bias (for drift studies).
    pub fn with_sensor_bias(mut self, bias_a: f64) -> Self {
        self.sensor_bias_a = bias_a;
        self
    }

    /// Current SoC estimate.
    pub fn soc(&self) -> Soc {
        self.soc
    }

    /// The configured current-sensor bias, amps.
    pub fn sensor_bias_a(&self) -> f64 {
        self.sensor_bias_a
    }

    /// Rated capacity the integral is measured against, amp-hours.
    pub fn capacity_ah(&self) -> f64 {
        self.capacity_ah
    }

    /// Integrates one measurement interval.
    pub fn update(&mut self, measured_current_a: f64, dt_s: f64) -> Soc {
        assert!(dt_s > 0.0, "time step must be positive");
        let i = measured_current_a + self.sensor_bias_a;
        self.soc = self.soc.shifted(-i * dt_s / (3600.0 * self.capacity_ah));
        self.soc
    }

    /// Re-anchors the estimate (e.g. from an OCV fix at rest).
    pub fn recalibrate(&mut self, soc: Soc) {
        self.soc = soc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_discharge_and_charge() {
        let s = Soc::new(0.5).unwrap();
        assert!(
            (coulomb_predict(s, 3.0, 3600.0, 3.0).value() - (0.5 - 1.0_f64).max(0.0)).abs() < 1e-12
        );
        let up = coulomb_predict(s, -1.5, 3600.0, 3.0);
        assert!((up.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predict_saturates() {
        assert_eq!(
            coulomb_predict(Soc::new(0.1).unwrap(), 30.0, 3600.0, 3.0),
            Soc::EMPTY
        );
        assert_eq!(
            coulomb_predict(Soc::new(0.9).unwrap(), -30.0, 3600.0, 3.0),
            Soc::FULL
        );
    }

    #[test]
    fn zero_horizon_is_identity() {
        let s = Soc::new(0.42).unwrap();
        assert_eq!(coulomb_predict(s, 5.0, 0.0, 3.0), s);
    }

    #[test]
    fn counter_tracks_exact_integral() {
        let mut c = CoulombCounter::new(Soc::FULL, 3.0);
        for _ in 0..360 {
            c.update(3.0, 10.0);
        }
        // 3 A × 3600 s = 3 Ah = 100% of a 3 Ah cell (up to float accumulation).
        assert!(c.soc().value() < 1e-9, "soc {}", c.soc().value());
    }

    #[test]
    fn counter_drifts_with_sensor_bias() {
        let mut ideal = CoulombCounter::new(Soc::FULL, 3.0);
        let mut biased = CoulombCounter::new(Soc::FULL, 3.0).with_sensor_bias(0.05);
        for _ in 0..100 {
            ideal.update(1.0, 30.0);
            biased.update(1.0, 30.0);
        }
        assert!(biased.soc().value() < ideal.soc().value());
    }

    #[test]
    fn recalibration_resets_estimate() {
        let mut c = CoulombCounter::new(Soc::FULL, 3.0);
        c.update(3.0, 600.0);
        c.recalibrate(Soc::new(0.5).unwrap());
        assert_eq!(c.soc().value(), 0.5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn invalid_capacity_panics() {
        let _ = CoulombCounter::new(Soc::FULL, 0.0);
    }
}
