//! # pinnsoc-battery
//!
//! Electro-thermal Li-ion cell simulation substrate for the `pinnsoc`
//! workspace — the Rust reproduction of *"Coupling Neural Networks and
//! Physics Equations For Li-Ion Battery State-of-Charge Prediction"*
//! (DATE 2025).
//!
//! The paper evaluates on two measured datasets (Sandia \[5\], LG \[6\]) that
//! are not redistributable here, so this crate provides the physical cells
//! those datasets were measured from: a Thevenin equivalent-circuit model
//! with temperature-dependent parameters, a lumped thermal node, per-
//! chemistry OCV curves, and exact Coulomb integration for ground-truth SoC.
//! `pinnsoc-data` drives these models with the same cycling protocols the
//! datasets used.
//!
//! Also included: the Coulomb-counting equation used by the paper's physics
//! loss ([`coulomb_predict`]), a running [`CoulombCounter`], an EKF
//! estimator ([`EkfEstimator`]) as the classic physics-based baseline, and a
//! capacity-fade aging model ([`aging`]) backing the SoH-ensemble extension.
//!
//! ## Sign convention
//!
//! Positive current discharges the cell. See [`types`] for details.
//!
//! ## Quick example
//!
//! ```
//! use pinnsoc_battery::{CellParams, CellSim, Soc};
//!
//! // Discharge an LG HG2 cell at 2C from full, sampling every 2 minutes.
//! let mut sim = CellSim::new(CellParams::lg_hg2(), Soc::FULL, 25.0);
//! let run = sim.discharge_to_cutoff(2.0, 1.0, 120.0);
//! assert!(run.records.last().unwrap().soc < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aging;
pub mod chemistry;
pub mod coulomb;
pub mod ecm;
pub mod ekf;
pub mod ocv;
pub mod ocv_estimator;
pub mod sim;
pub mod thermal;
pub mod types;

pub use aging::{aged_params, FadeModel, Soh};
pub use chemistry::{CellParams, Chemistry};
pub use coulomb::{coulomb_predict, CoulombCounter};
pub use ecm::{Ecm, EcmOrder};
pub use ekf::{EkfEstimator, EkfState};
pub use ocv::{OcvCurve, OcvCurveError};
pub use ocv_estimator::OcvSocEstimator;
pub use sim::{CellSim, SimRun};
pub use thermal::LumpedThermal;
pub use types::{CellState, SimRecord, Soc, StopReason};
