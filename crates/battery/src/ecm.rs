//! Thevenin equivalent-circuit model (ECM) of a Li-ion cell.
//!
//! The cell is modelled as an OCV source in series with an ohmic resistance
//! `R0` and up to two RC polarization branches:
//!
//! ```text
//!   OCV(SoC,T) ──[R0(T,SoC)]──[R1 ∥ C1]──[R2 ∥ C2]──○ V_terminal
//! ```
//!
//! This is the same first-order model class whose dynamics Dang et al. \[7\]
//! embed in their loss, and the standard substrate for SoC work. RC branches
//! use the exact zero-order-hold discretization, so arbitrarily large time
//! steps remain stable.

use crate::chemistry::CellParams;
use crate::types::{CellState, Soc};
use serde::{Deserialize, Serialize};

/// Model order: how many RC branches to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EcmOrder {
    /// `R0` only (instant response; the model implied by plain Coulomb counting).
    Zero,
    /// `R0` + one RC branch — the model of \[7\].
    One,
    /// `R0` + two RC branches (fast polarization + slow diffusion) — the
    /// simulator default.
    Two,
}

/// Thevenin equivalent-circuit model of one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecm {
    params: CellParams,
    order: EcmOrder,
}

impl Ecm {
    /// Creates an ECM of the given order over a parameter preset.
    pub fn new(params: CellParams, order: EcmOrder) -> Self {
        Self { params, order }
    }

    /// The underlying cell parameters.
    pub fn params(&self) -> &CellParams {
        &self.params
    }

    /// Model order in use.
    pub fn order(&self) -> EcmOrder {
        self.order
    }

    /// Ohmic resistance at the given operating point.
    ///
    /// Grows with cold temperature (Arrhenius) and at the SoC extremes,
    /// which is what makes high-C-rate cycles terminate earlier.
    pub fn r0(&self, soc: Soc, temperature_c: f64) -> f64 {
        let s = soc.value();
        // Mild U-shape in SoC: +60% near empty, +15% near full.
        let soc_factor = 1.0 + 0.6 * (-(s / 0.12)).exp() + 0.15 * ((s - 1.0) / 0.08).exp();
        self.params.r0_ohm * self.params.resistance_factor(temperature_c) * soc_factor
    }

    /// Advances the RC polarization states by `dt_s` seconds under constant
    /// current `current_a`, returning the updated state (exact ZOH update).
    pub fn step_polarization(&self, state: &CellState, current_a: f64, dt_s: f64) -> [f64; 2] {
        assert!(dt_s > 0.0, "time step must be positive");
        let temp_factor = self.params.resistance_factor(state.temperature_c);
        let branches = [
            (self.params.r1_ohm * temp_factor, self.params.c1_farad),
            (self.params.r2_ohm * temp_factor, self.params.c2_farad),
        ];
        let active = match self.order {
            EcmOrder::Zero => 0,
            EcmOrder::One => 1,
            EcmOrder::Two => 2,
        };
        let mut out = [0.0; 2];
        for (k, (r, c)) in branches.iter().enumerate() {
            if k >= active {
                out[k] = 0.0;
                continue;
            }
            let tau = r * c;
            let alpha = (-dt_s / tau).exp();
            out[k] = state.rc_voltages[k] * alpha + r * current_a * (1.0 - alpha);
        }
        out
    }

    /// Terminal voltage at the given state under current `current_a`
    /// (positive = discharge).
    pub fn terminal_voltage(&self, state: &CellState, current_a: f64) -> f64 {
        let ocv = self.params.ocv.voltage(state.soc, state.temperature_c);
        ocv - current_a * self.r0(state.soc, state.temperature_c)
            - state.rc_voltages[0]
            - state.rc_voltages[1]
    }

    /// Instantaneous ohmic + polarization heat generation, watts.
    pub fn heat_generation(&self, state: &CellState, current_a: f64) -> f64 {
        let ohmic = current_a * current_a * self.r0(state.soc, state.temperature_c);
        // Polarization branches dissipate v_rc²/R; approximate with v_rc·I.
        let polarization = (state.rc_voltages[0] + state.rc_voltages[1]).abs() * current_a.abs();
        ohmic + polarization
    }

    /// SoC change over `dt_s` seconds at constant current (exact Coulomb
    /// integration; positive current discharges).
    pub fn soc_delta(&self, current_a: f64, dt_s: f64) -> f64 {
        -current_a * dt_s / (3600.0 * self.params.capacity_ah)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chemistry::CellParams;

    fn ecm() -> Ecm {
        Ecm::new(CellParams::lg_hg2(), EcmOrder::Two)
    }

    #[test]
    fn rested_terminal_voltage_equals_ocv() {
        let e = ecm();
        let st = CellState::rested(Soc::new(0.5).unwrap(), 25.0);
        let v = e.terminal_voltage(&st, 0.0);
        let ocv = e.params().ocv.voltage(st.soc, 25.0);
        assert!((v - ocv).abs() < 1e-12);
    }

    #[test]
    fn discharge_drops_voltage_charge_raises_it() {
        let e = ecm();
        let st = CellState::rested(Soc::new(0.5).unwrap(), 25.0);
        let ocv = e.params().ocv.voltage(st.soc, 25.0);
        assert!(e.terminal_voltage(&st, 3.0) < ocv);
        assert!(e.terminal_voltage(&st, -3.0) > ocv);
    }

    #[test]
    fn polarization_approaches_ir_asymptote() {
        let e = ecm();
        let mut st = CellState::rested(Soc::new(0.8).unwrap(), 25.0);
        let current = 3.0;
        // Step far beyond both time constants.
        st.rc_voltages = e.step_polarization(&st, current, 1e6);
        let expected1 = e.params().r1_ohm * current;
        let expected2 = e.params().r2_ohm * current;
        assert!((st.rc_voltages[0] - expected1).abs() < 1e-9);
        assert!((st.rc_voltages[1] - expected2).abs() < 1e-9);
    }

    #[test]
    fn polarization_relaxes_to_zero_at_rest() {
        let e = ecm();
        let mut st = CellState::rested(Soc::new(0.8).unwrap(), 25.0);
        st.rc_voltages = [0.05, 0.02];
        let relaxed = e.step_polarization(&st, 0.0, 1e6);
        assert!(relaxed[0].abs() < 1e-9 && relaxed[1].abs() < 1e-9);
    }

    #[test]
    fn zoh_stable_for_large_steps() {
        // Large dt must never overshoot the asymptote (a forward-Euler bug).
        let e = ecm();
        let st = CellState::rested(Soc::new(0.5).unwrap(), 25.0);
        let v = e.step_polarization(&st, 2.0, 3600.0);
        assert!(v[0] <= e.params().r1_ohm * 2.0 + 1e-12);
        assert!(v[0] >= 0.0);
    }

    #[test]
    fn order_controls_active_branches() {
        let p = CellParams::lg_hg2();
        let st = CellState::rested(Soc::new(0.5).unwrap(), 25.0);
        let one = Ecm::new(p.clone(), EcmOrder::One).step_polarization(&st, 2.0, 100.0);
        assert!(one[0] > 0.0);
        assert_eq!(one[1], 0.0);
        let zero = Ecm::new(p, EcmOrder::Zero).step_polarization(&st, 2.0, 100.0);
        assert_eq!(zero, [0.0, 0.0]);
    }

    #[test]
    fn r0_rises_in_cold_and_near_empty() {
        let e = ecm();
        let mid = Soc::new(0.5).unwrap();
        assert!(e.r0(mid, -10.0) > e.r0(mid, 25.0));
        assert!(e.r0(Soc::new(0.02).unwrap(), 25.0) > e.r0(mid, 25.0) * 1.2);
    }

    #[test]
    fn soc_delta_sign_convention() {
        let e = ecm();
        // 1C discharge for one hour = exactly −100% SoC.
        let delta = e.soc_delta(e.params().c_rate(1.0), 3600.0);
        assert!((delta + 1.0).abs() < 1e-12);
        assert!(e.soc_delta(-1.0, 10.0) > 0.0);
    }

    #[test]
    fn heat_generation_positive_for_both_signs() {
        let e = ecm();
        let mut st = CellState::rested(Soc::new(0.5).unwrap(), 25.0);
        st.rc_voltages = [0.02, 0.01];
        assert!(e.heat_generation(&st, 3.0) > 0.0);
        assert!(e.heat_generation(&st, -3.0) > 0.0);
    }
}
