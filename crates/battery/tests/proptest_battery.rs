//! Property-based tests for the battery substrate: physical invariants that
//! must hold for any operating point.

use pinnsoc_battery::{
    coulomb_predict, CellParams, CellSim, Chemistry, CoulombCounter, EkfEstimator, Soc,
};
use proptest::prelude::*;

fn any_chemistry() -> impl Strategy<Value = Chemistry> {
    prop_oneof![
        Just(Chemistry::Nca),
        Just(Chemistry::Nmc),
        Just(Chemistry::Lfp)
    ]
}

proptest! {
    #[test]
    fn soc_clamped_always_valid(x in -1e6f64..1e6) {
        let s = Soc::clamped(x);
        prop_assert!((0.0..=1.0).contains(&s.value()));
    }

    #[test]
    fn soc_shift_stays_valid(start in 0.0f64..=1.0, delta in -5.0f64..5.0) {
        let s = Soc::clamped(start).shifted(delta);
        prop_assert!((0.0..=1.0).contains(&s.value()));
    }

    #[test]
    fn coulomb_predict_monotone_in_horizon(
        soc in 0.0f64..=1.0,
        current in 0.01f64..10.0,
        h1 in 1.0f64..1000.0,
        h2 in 1.0f64..1000.0,
    ) {
        let s = Soc::clamped(soc);
        let (short, long) = if h1 < h2 { (h1, h2) } else { (h2, h1) };
        // Discharging longer can never leave more charge.
        prop_assert!(
            coulomb_predict(s, current, long, 3.0) <= coulomb_predict(s, current, short, 3.0)
        );
    }

    #[test]
    fn coulomb_predict_antisymmetric_in_current(
        soc in 0.3f64..=0.7,
        current in 0.0f64..1.0,
        horizon in 1.0f64..600.0,
    ) {
        // Within the unsaturated region, charging mirrors discharging.
        let s = Soc::clamped(soc);
        let down = coulomb_predict(s, current, horizon, 3.0).value() - soc;
        let up = coulomb_predict(s, -current, horizon, 3.0).value() - soc;
        prop_assert!((down + up).abs() < 1e-9);
    }

    #[test]
    fn ocv_voltage_within_curve_bounds(chem in any_chemistry(), soc in 0.0f64..=1.0) {
        let p = CellParams::sandia(chem);
        let v = p.ocv.voltage(Soc::clamped(soc), 25.0);
        prop_assert!(v >= p.ocv.min_voltage() - 1e-9);
        prop_assert!(v <= p.ocv.max_voltage() + 1e-9);
    }

    #[test]
    fn ocv_inverse_roundtrip(chem in any_chemistry(), soc in 0.0f64..=1.0, temp in -10.0f64..45.0) {
        let p = CellParams::sandia(chem);
        let s = Soc::clamped(soc);
        let v = p.ocv.voltage(s, temp);
        let back = p.ocv.soc_at(v, temp).expect("in range by construction");
        prop_assert!((back.value() - s.value()).abs() < 1e-6);
    }

    #[test]
    fn ocv_monotone_in_soc(chem in any_chemistry(), a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let p = CellParams::sandia(chem);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(
            p.ocv.voltage(Soc::clamped(lo), 25.0) <= p.ocv.voltage(Soc::clamped(hi), 25.0) + 1e-12
        );
    }

    #[test]
    fn resistance_factor_positive_and_monotone(chem in any_chemistry(), t1 in -30.0f64..60.0, t2 in -30.0f64..60.0) {
        let p = CellParams::sandia(chem);
        prop_assert!(p.resistance_factor(t1) > 0.0);
        if t1 < t2 {
            // Colder = more resistive.
            prop_assert!(p.resistance_factor(t1) >= p.resistance_factor(t2));
        }
    }

    #[test]
    fn simulated_soc_always_in_range(
        initial in 0.1f64..=1.0,
        current in -3.0f64..9.0,
        steps in 1usize..200,
    ) {
        let mut sim = CellSim::new(CellParams::lg_hg2(), Soc::clamped(initial), 25.0);
        for _ in 0..steps {
            let rec = sim.step(current, 5.0);
            prop_assert!((0.0..=1.0).contains(&rec.soc));
            prop_assert!(rec.voltage_v.is_finite());
            prop_assert!(rec.temperature_c.is_finite());
            prop_assert!(rec.temperature_c > -50.0 && rec.temperature_c < 150.0);
        }
    }

    #[test]
    fn higher_discharge_always_sags_more(
        soc in 0.2f64..=0.9,
        i_low in 0.1f64..3.0,
        extra in 0.5f64..6.0,
    ) {
        let mut sim_low = CellSim::new(CellParams::lg_hg2(), Soc::clamped(soc), 25.0);
        let mut sim_high = CellSim::new(CellParams::lg_hg2(), Soc::clamped(soc), 25.0);
        let v_low = sim_low.step(i_low, 1.0).voltage_v;
        let v_high = sim_high.step(i_low + extra, 1.0).voltage_v;
        prop_assert!(v_high < v_low);
    }

    #[test]
    fn coulomb_counter_is_exact_integrator(
        initial in 0.2f64..=0.8,
        current in -1.0f64..1.0,
        steps in 1usize..50,
    ) {
        let mut counter = CoulombCounter::new(Soc::clamped(initial), 3.0);
        for _ in 0..steps {
            counter.update(current, 10.0);
        }
        let expected = (initial - current * 10.0 * steps as f64 / (3600.0 * 3.0)).clamp(0.0, 1.0);
        prop_assert!((counter.soc().value() - expected).abs() < 1e-9);
    }

    #[test]
    fn ekf_estimate_stays_valid_under_arbitrary_inputs(
        init in 0.0f64..=1.0,
        current in -5.0f64..10.0,
        voltage in 2.0f64..4.5,
        temp in -20.0f64..50.0,
        steps in 1usize..30,
    ) {
        let mut ekf = EkfEstimator::new(CellParams::lg_hg2(), Soc::clamped(init));
        for _ in 0..steps {
            let s = ekf.update(current, voltage, temp, 1.0);
            prop_assert!((0.0..=1.0).contains(&s.value()));
            prop_assert!(ekf.soc_std().is_finite());
        }
    }

    #[test]
    fn ekf_covariance_finite_symmetric_soc_clamped_over_arbitrary_sequences(
        chem in any_chemistry(),
        init in 0.0f64..=1.0,
        // Arbitrary finite telemetry: currents and voltages far outside any
        // physical envelope, temperatures across the operating range, and
        // wildly varying measurement intervals.
        sequence in proptest::collection::vec(
            (-60.0f64..60.0, 0.0f64..8.0, -40.0f64..60.0, 1e-3f64..300.0),
            1..60,
        ),
    ) {
        let mut ekf = EkfEstimator::new(CellParams::sandia(chem), Soc::clamped(init));
        for (current, voltage, temp, dt) in sequence {
            let s = ekf.update(current, voltage, temp, dt);
            // The estimate is always a valid SoC.
            prop_assert!((0.0..=1.0).contains(&s.value()));
            let p = ekf.covariance();
            let mut magnitude = 0.0f64;
            for row in &p {
                for &v in row {
                    prop_assert!(v.is_finite(), "covariance entry not finite: {p:?}");
                    magnitude = magnitude.max(v.abs());
                }
            }
            // Variances must not go meaningfully negative, and the plain
            // (I − KH)P update must keep the matrix symmetric up to
            // floating-point rounding of the two off-diagonal expressions.
            prop_assert!(p[0][0] >= -1e-12, "negative SoC variance: {}", p[0][0]);
            prop_assert!(p[1][1] >= -1e-12, "negative v_rc variance: {}", p[1][1]);
            let tolerance = 1e-9 * magnitude.max(1.0);
            prop_assert!(
                (p[0][1] - p[1][0]).abs() <= tolerance,
                "asymmetric covariance: {p:?}"
            );
            prop_assert!(ekf.soc_std().is_finite());
        }
    }
}
