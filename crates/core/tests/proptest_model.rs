//! Property-based tests on the two-branch model: outputs must stay finite
//! and structurally sensible for any in-range query, trained or not.

use pinnsoc::{Branch1, Branch2, SecondStage, SocModel};
use pinnsoc_data::Normalizer;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn norm3() -> Normalizer {
    let rows: Vec<Vec<f64>> = vec![vec![2.5, -5.0, -10.0], vec![4.2, 9.0, 45.0]];
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Normalizer::fit(refs.iter().copied())
}

fn norm2() -> Normalizer {
    let rows: Vec<Vec<f64>> = vec![vec![-5.0, -10.0], vec![9.0, 45.0]];
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Normalizer::fit(refs.iter().copied())
}

fn untrained_model(seed: u64) -> SocModel {
    let mut rng = StdRng::seed_from_u64(seed);
    SocModel {
        branch1: Branch1::new(norm3(), &mut rng),
        stage2: SecondStage::Network(Branch2::new(norm2(), 30.0, &mut rng)),
        label: "proptest".into(),
    }
}

proptest! {
    #[test]
    fn estimates_finite_over_input_ranges(
        seed in 0u64..50,
        v in 2.0f64..4.5,
        i in -10.0f64..20.0,
        t in -30.0f64..60.0,
    ) {
        let m = untrained_model(seed);
        let soc = m.estimate(v, i, t);
        prop_assert!(soc.is_finite());
    }

    #[test]
    fn predictions_finite_over_query_space(
        seed in 0u64..50,
        soc in -0.5f64..1.5,
        i in -10.0f64..20.0,
        t in -30.0f64..60.0,
        n in 1.0f64..3600.0,
    ) {
        let m = untrained_model(seed);
        prop_assert!(m.predict_from(soc, i, t, n).is_finite());
    }

    #[test]
    fn coulomb_stage_exact_for_any_query(
        soc in 0.0f64..=1.0,
        i in -10.0f64..10.0,
        n in 0.0f64..3600.0,
        cap in 0.5f64..5.0,
    ) {
        let stage = SecondStage::Coulomb { capacity_ah: cap };
        let predicted = stage.predict(soc, i, 25.0, n);
        let expected = soc - i * n / (3600.0 * cap);
        prop_assert!((predicted - expected).abs() < 1e-12);
    }

    #[test]
    fn branch2_horizon_feature_is_linear(
        seed in 0u64..20,
        n in 1.0f64..600.0,
        k in 2.0f64..5.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b2 = Branch2::new(norm2(), 30.0, &mut rng);
        let f1 = b2.features(0.5, 1.0, 25.0, n);
        let fk = b2.features(0.5, 1.0, 25.0, n * k);
        prop_assert!((fk[3] - f1[3] * k as f32).abs() < 1e-4 * k as f32);
        // Only the horizon feature changes.
        prop_assert_eq!(f1[0], fk[0]);
        prop_assert_eq!(f1[1], fk[1]);
        prop_assert_eq!(f1[2], fk[2]);
    }

    #[test]
    fn pipeline_equals_two_stage_composition(
        seed in 0u64..20,
        v in 3.0f64..4.2,
        i in 0.0f64..9.0,
        t in 0.0f64..40.0,
        n in 10.0f64..300.0,
    ) {
        let m = untrained_model(seed);
        let direct = m.predict(v, i, t, i, t, n);
        let composed = m.predict_from(m.estimate(v, i, t), i, t, n);
        prop_assert!((direct - composed).abs() < 1e-12);
    }
}
