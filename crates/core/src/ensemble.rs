//! SoH-conditioned model ensemble — the extension the paper points to
//! (§III-B, following Alamin et al. \[26\]) for staying accurate as the
//! battery ages.
//!
//! One [`SocModel`] is trained per state-of-health level on data generated
//! from a correspondingly aged cell; at runtime, a separate SoH estimate
//! selects the nearest model.

use crate::config::TrainConfig;
use crate::model::SocModel;
use crate::train::train;
use pinnsoc_battery::{aged_params, CellParams, CellSim, Soc, Soh};
use pinnsoc_data::{Cycle, CycleKind, CycleMeta, NoiseConfig, SocDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An ensemble of SoC models indexed by state of health.
#[derive(Debug, Clone)]
pub struct SohEnsemble {
    /// `(SoH level, model)` pairs, sorted by SoH.
    entries: Vec<(Soh, SocModel)>,
}

impl SohEnsemble {
    /// Trains one model per SoH level on lab-cycle data from an aged cell.
    ///
    /// The per-level dataset mirrors the Sandia protocol (1C train
    /// discharge, 2C test) on `fresh_params` aged to that level; `C_rated`
    /// in each model's physics loss is the *aged* capacity, as \[26\]'s
    /// digital twin does.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or contains invalid SoH values.
    pub fn train_per_level(
        fresh_params: &CellParams,
        levels: &[f64],
        base_config: &TrainConfig,
    ) -> Self {
        assert!(!levels.is_empty(), "need at least one SoH level");
        let mut entries = Vec::with_capacity(levels.len());
        for (k, &level) in levels.iter().enumerate() {
            let soh = Soh::new(level).expect("SoH level must be in (0, 1]");
            let params = aged_params(fresh_params, soh);
            let dataset = aged_lab_dataset(&params, base_config.seed.wrapping_add(k as u64));
            let mut config = base_config.clone();
            config.capacity_ah = params.capacity_ah;
            config.seed = base_config.seed.wrapping_add(1000 + k as u64);
            let (model, _) = train(&dataset, &config);
            entries.push((soh, model));
        }
        entries.sort_by(|a, b| a.0.value().partial_cmp(&b.0.value()).expect("finite SoH"));
        Self { entries }
    }

    /// Number of models in the ensemble.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the ensemble holds no models (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// SoH levels covered, ascending.
    pub fn levels(&self) -> Vec<f64> {
        self.entries.iter().map(|(s, _)| s.value()).collect()
    }

    /// Selects the model whose training SoH is nearest to the estimate.
    pub fn select(&self, soh_estimate: Soh) -> &SocModel {
        let target = soh_estimate.value();
        self.entries
            .iter()
            .min_by(|a, b| {
                let da = (a.0.value() - target).abs();
                let db = (b.0.value() - target).abs();
                da.partial_cmp(&db).expect("finite distances")
            })
            .map(|(_, m)| m)
            .expect("ensemble is non-empty by construction")
    }

    /// Full pipeline prediction routed through the SoH-selected model.
    #[allow(clippy::too_many_arguments)]
    pub fn predict(
        &self,
        soh_estimate: Soh,
        voltage_v: f64,
        current_a: f64,
        temperature_c: f64,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
    ) -> f64 {
        self.select(soh_estimate).predict(
            voltage_v,
            current_a,
            temperature_c,
            avg_current_a,
            avg_temperature_c,
            horizon_s,
        )
    }
}

/// Generates a small Sandia-style lab dataset from explicit cell parameters
/// (the generator in `pinnsoc-data` is preset-based; aging needs arbitrary
/// parameters).
fn aged_lab_dataset(params: &CellParams, seed: u64) -> SocDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let noise = NoiseConfig::default();
    let mut make_cycle = |discharge_c: f64, ambient: f64| -> Cycle {
        let mut sim = CellSim::new(params.clone(), Soc::FULL, ambient);
        let mut records = Vec::new();
        let discharge = sim.discharge_to_cutoff(discharge_c, 1.0, 120.0);
        records.extend(discharge.records);
        let charge = sim.charge_to_cutoff(0.5, 1.0, 120.0);
        records.extend(charge.records);
        let noisy = records.iter().map(|r| noise.corrupt(r, &mut rng)).collect();
        Cycle::new(
            CycleMeta {
                kind: CycleKind::Lab { discharge_c },
                ambient_c: ambient,
                cell: format!("{}-aged", params.chemistry),
                capacity_ah: params.capacity_ah,
            },
            120.0,
            noisy,
        )
    };
    SocDataset {
        name: "sandia-aged".into(),
        train: vec![
            make_cycle(1.0, 15.0),
            make_cycle(1.0, 25.0),
            make_cycle(1.0, 35.0),
        ],
        test: vec![make_cycle(2.0, 25.0)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PinnVariant;

    fn quick_config() -> TrainConfig {
        TrainConfig {
            b1_epochs: 120,
            b2_epochs: 120,
            batch_size: 16,
            ..TrainConfig::sandia(PinnVariant::pinn_all(&[120.0, 240.0]), 11)
        }
    }

    #[test]
    fn ensemble_trains_one_model_per_level() {
        let ens =
            SohEnsemble::train_per_level(&CellParams::nmc_18650(), &[1.0, 0.8], &quick_config());
        assert_eq!(ens.len(), 2);
        assert_eq!(ens.levels(), vec![0.8, 1.0]);
        assert!(!ens.is_empty());
    }

    #[test]
    fn selection_picks_nearest_level() {
        let ens =
            SohEnsemble::train_per_level(&CellParams::nmc_18650(), &[1.0, 0.8], &quick_config());
        // Distinguish the two models by a probe query.
        let probe = |m: &SocModel| m.estimate(3.7, 3.0, 25.0);
        let near_fresh = probe(ens.select(Soh::new(0.97).unwrap()));
        let fresh = probe(ens.select(Soh::new(1.0).unwrap()));
        assert_eq!(near_fresh, fresh);
        let aged = probe(ens.select(Soh::new(0.75).unwrap()));
        assert_ne!(fresh, aged);
    }

    #[test]
    fn matched_soh_model_beats_mismatched_on_aged_cell() {
        // The motivating claim of [26]: on an aged cell, the model
        // conditioned at that SoH predicts better than the fresh-cell one.
        // Tested at the mechanism level — Physics-Only second stages and
        // oracle current SoC — so the comparison isolates what SoH
        // conditioning changes (the capacity `C_rated` in Eq. 1) instead of
        // riding on how two tiny trained networks happen to extrapolate to
        // the aged cell's out-of-distribution voltages.
        let fresh_params = CellParams::nmc_18650();
        let config = TrainConfig {
            b1_epochs: 20,
            batch_size: 16,
            ..TrainConfig::sandia(crate::config::PinnVariant::PhysicsOnly, 11)
        };
        let ens = SohEnsemble::train_per_level(&fresh_params, &[1.0, 0.7], &config);
        let aged = aged_params(&fresh_params, Soh::new(0.7).unwrap());
        let aged_data = aged_lab_dataset(&aged, 999);
        let matched = crate::eval_prediction_oracle_soc(
            ens.select(Soh::new(0.7).unwrap()),
            &aged_data.test,
            120.0,
        );
        let mismatched = crate::eval_prediction_oracle_soc(
            ens.select(Soh::new(1.0).unwrap()),
            &aged_data.test,
            120.0,
        );
        assert!(
            matched.mae < mismatched.mae,
            "matched {} should beat mismatched {}",
            matched.mae,
            mismatched.mae
        );
    }
}
