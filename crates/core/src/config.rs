//! Training configuration: PINN variants and hyper-parameters.

use pinnsoc_data::PhysicsCurrentMode;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The six configurations compared in Figs. 3 and 4 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PinnVariant {
    /// Purely data-driven training (no physics loss term).
    NoPinn,
    /// No trained Branch 2 at all: the second stage *is* the Coulomb
    /// equation.
    PhysicsOnly,
    /// Physics-informed: the loss of Eq. 2 with `Np` drawn from this set.
    Pinn {
        /// The horizon set 𝒩, seconds.
        horizons_s: Vec<f64>,
    },
}

impl PinnVariant {
    /// A PINN whose physics horizons are a single value (e.g. "PINN-120s").
    ///
    /// # Panics
    ///
    /// Panics if `horizon_s` is not positive.
    pub fn pinn_single(horizon_s: f64) -> Self {
        assert!(horizon_s > 0.0, "horizon must be positive");
        PinnVariant::Pinn {
            horizons_s: vec![horizon_s],
        }
    }

    /// A PINN trained on all the given horizons simultaneously ("PINN-All").
    ///
    /// # Panics
    ///
    /// Panics if `horizons_s` is empty or contains non-positive values.
    pub fn pinn_all(horizons_s: &[f64]) -> Self {
        assert!(!horizons_s.is_empty(), "need at least one horizon");
        assert!(
            horizons_s.iter().all(|h| *h > 0.0),
            "horizons must be positive"
        );
        PinnVariant::Pinn {
            horizons_s: horizons_s.to_vec(),
        }
    }

    /// Whether this variant uses the physics loss.
    pub fn uses_physics(&self) -> bool {
        matches!(self, PinnVariant::Pinn { .. })
    }
}

impl fmt::Display for PinnVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinnVariant::NoPinn => f.write_str("No-PINN"),
            PinnVariant::PhysicsOnly => f.write_str("Physics-Only"),
            PinnVariant::Pinn { horizons_s } => {
                if horizons_s.len() == 1 {
                    write!(f, "PINN-{:.0}s", horizons_s[0])
                } else {
                    f.write_str("PINN-All")
                }
            }
        }
    }
}

/// Hyper-parameters for training a [`crate::SocModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Which of the paper's configurations to train.
    pub variant: PinnVariant,
    /// The data horizon `N` (the dataset's sampling constraint, §III-B):
    /// 120 s for Sandia, 30 s for LG.
    pub data_horizon_s: f64,
    /// Rated capacity `C_rated` of the cell, amp-hours (paper Eq. 1).
    pub capacity_ah: f64,
    /// Branch 1 training epochs.
    pub b1_epochs: usize,
    /// Branch 2 training epochs.
    pub b2_epochs: usize,
    /// Minibatch size for both branches.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Weight of the physics term in Eq. 2 (the paper uses 1.0).
    pub physics_weight: f32,
    /// How the physics sampler draws currents (§III-B / §IV-A: "the same
    /// current conditions of the dataset").
    pub physics_current: PhysicsCurrentMode,
    /// Random seed (weights, shuffling, physics sampling).
    pub seed: u64,
}

impl TrainConfig {
    /// Defaults for the Sandia dataset (N = 120 s, NMC capacity).
    pub fn sandia(variant: PinnVariant, seed: u64) -> Self {
        Self {
            variant,
            data_horizon_s: 120.0,
            capacity_ah: 3.0,
            b1_epochs: 60,
            b2_epochs: 60,
            batch_size: 64,
            learning_rate: 3e-3,
            physics_weight: 1.0,
            // Sandia cycles span 0.5C charge to 3C discharge (§IV-A).
            physics_current: PhysicsCurrentMode::CRateUniform {
                min_c: -0.6,
                max_c: 3.2,
            },
            seed,
        }
    }

    /// Defaults for the LG dataset (N = 30 s, HG2 capacity).
    pub fn lg(variant: PinnVariant, seed: u64) -> Self {
        Self {
            variant,
            data_horizon_s: 30.0,
            capacity_ah: 3.0,
            b1_epochs: 20,
            b2_epochs: 16,
            batch_size: 256,
            learning_rate: 3e-3,
            physics_weight: 1.0,
            // Cover the drive cycles' full current envelope (regen to ~2.8C
            // peaks) uniformly, mirroring the Sandia treatment: pool draws
            // concentrate 99% of their mass below 2C, which would leave the
            // physics loss with almost no signal in the high-current,
            // long-horizon corner it exists to constrain.
            physics_current: PhysicsCurrentMode::CRateUniform {
                min_c: -0.5,
                max_c: 2.8,
            },
            seed,
        }
    }

    /// Validates the configuration, panicking with a clear message on
    /// nonsensical values.
    ///
    /// # Panics
    ///
    /// Panics on non-positive horizons, capacity, epochs, batch size, or
    /// learning rate.
    pub fn validate(&self) {
        assert!(self.data_horizon_s > 0.0, "data horizon must be positive");
        assert!(self.capacity_ah > 0.0, "capacity must be positive");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
        assert!(
            self.physics_weight >= 0.0,
            "physics weight must be non-negative"
        );
        if let PinnVariant::Pinn { horizons_s } = &self.variant {
            assert!(
                !horizons_s.is_empty(),
                "PINN variant needs at least one horizon"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_labels_match_paper() {
        assert_eq!(PinnVariant::NoPinn.to_string(), "No-PINN");
        assert_eq!(PinnVariant::PhysicsOnly.to_string(), "Physics-Only");
        assert_eq!(PinnVariant::pinn_single(120.0).to_string(), "PINN-120s");
        assert_eq!(
            PinnVariant::pinn_all(&[30.0, 50.0, 70.0]).to_string(),
            "PINN-All"
        );
    }

    #[test]
    fn uses_physics_flag() {
        assert!(!PinnVariant::NoPinn.uses_physics());
        assert!(!PinnVariant::PhysicsOnly.uses_physics());
        assert!(PinnVariant::pinn_single(60.0).uses_physics());
    }

    #[test]
    fn presets_are_valid() {
        TrainConfig::sandia(PinnVariant::NoPinn, 0).validate();
        TrainConfig::lg(PinnVariant::pinn_all(&[30.0, 50.0, 70.0]), 1).validate();
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let _ = PinnVariant::pinn_single(0.0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn invalid_config_rejected() {
        let mut c = TrainConfig::sandia(PinnVariant::NoPinn, 0);
        c.batch_size = 0;
        c.validate();
    }

    #[test]
    fn serde_roundtrip() {
        let c = TrainConfig::lg(PinnVariant::pinn_all(&[30.0, 70.0]), 5);
        let json = serde_json::to_string(&c).unwrap();
        let back: TrainConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
