//! The per-minibatch training objective — Eq. 2 of the paper as data.
//!
//! The monolithic trainer encoded the PINN variants as match arms inside
//! the epoch loop. Here the objective is a value: [`Eq2Objective`] holds an
//! optional [`PhysicsTerm`], so *No-PINN is `physics: None` and every PINN
//! variant is `physics: Some(..)`* — the epoch driver in
//! [`super::loop_`] is variant-agnostic, and new composite objectives plug
//! in behind the [`Objective`] trait without touching the loop.

use crate::model::Branch2Features;
use pinnsoc_data::{PhysicsSampler, PredictionSample};
use pinnsoc_nn::{Loss, Matrix, Mlp, TrainScratch};

/// One optimizer minibatch of a training objective.
///
/// Implementations run forward/backward over the gathered data batch
/// (plus any auxiliary terms), leaving gradients accumulated on `net` for
/// the driver's optimizer step, and return the batch's total loss.
pub trait Objective {
    /// Accumulates this minibatch's gradients on `net` and returns its
    /// loss. The driver calls `opt.step(net)` afterwards.
    fn batch_step(
        &mut self,
        net: &mut Mlp,
        x: &Matrix,
        y: &Matrix,
        scratch: &mut TrainScratch,
    ) -> f32;
}

/// The label-free physics term of Eq. 2: per minibatch, an equally sized
/// batch of randomly generated Coulomb tuples, featurized through the
/// branch's own normalization and weighted into the loss.
#[derive(Debug, Clone)]
pub struct PhysicsTerm {
    sampler: PhysicsSampler,
    featurizer: Branch2Features,
    weight: f32,
    /// Reused draw buffer (see [`PhysicsSampler::sample_batch_into`]).
    batch: Vec<PredictionSample>,
    /// Reused feature/target buffers for the physics forward pass.
    px: Matrix,
    py: Matrix,
}

impl PhysicsTerm {
    /// A physics term drawing from `sampler`, featurizing with
    /// `featurizer`, weighted by `weight` (the paper uses 1.0).
    pub fn new(sampler: PhysicsSampler, featurizer: Branch2Features, weight: f32) -> Self {
        Self {
            sampler,
            featurizer,
            weight,
            batch: Vec::new(),
            px: Matrix::zeros(1, 1),
            py: Matrix::zeros(1, 1),
        }
    }
}

/// The combined objective of Eq. 2: a data MAE term, plus — when the
/// variant is physics-informed — a weighted, label-free physics MAE term.
///
/// All intermediates (loss gradients, physics draws, physics features) live
/// in reused buffers, so the steady-state minibatch step allocates nothing.
#[derive(Debug, Clone)]
pub struct Eq2Objective {
    physics: Option<PhysicsTerm>,
    /// Reused loss-gradient buffer (shared by the data and physics terms).
    grad: Matrix,
}

impl Eq2Objective {
    /// A purely data-driven objective (Branch 1, and Branch 2 under
    /// No-PINN).
    pub fn data_only() -> Self {
        Self {
            physics: None,
            grad: Matrix::zeros(1, 1),
        }
    }

    /// Eq. 2 with the physics term attached (the PINN variants).
    pub fn with_physics(term: PhysicsTerm) -> Self {
        Self {
            physics: Some(term),
            grad: Matrix::zeros(1, 1),
        }
    }
}

impl Objective for Eq2Objective {
    fn batch_step(
        &mut self,
        net: &mut Mlp,
        x: &Matrix,
        y: &Matrix,
        scratch: &mut TrainScratch,
    ) -> f32 {
        // Data term of Eq. 2.
        let loss = {
            let pred = net.forward_train(x, scratch);
            let loss = Loss::Mae.value(pred, y);
            Loss::Mae.gradient_into(pred, y, &mut self.grad);
            loss
        };
        net.zero_grad();
        net.backward_train(&self.grad, scratch);
        let Some(term) = &mut self.physics else {
            return loss;
        };
        // Physics term of Eq. 2: an equally sized batch of randomly
        // generated Coulomb tuples (teacher-free labels).
        term.sampler.sample_batch_into(y.rows(), &mut term.batch);
        term.px.reset_for_overwrite(term.batch.len(), 4);
        term.py.reset_for_overwrite(term.batch.len(), 1);
        for (r, s) in term.batch.iter().enumerate() {
            let f = term.featurizer.features(
                s.soc_now,
                s.avg_current_a,
                s.avg_temperature_c,
                s.horizon_s,
            );
            term.px.row_mut(r).copy_from_slice(&f);
            term.py.row_mut(r)[0] = s.soc_next as f32;
        }
        let total = {
            let p_pred = net.forward_train(&term.px, scratch);
            let total = loss + term.weight * Loss::Mae.value(p_pred, &term.py);
            Loss::Mae.gradient_into(p_pred, &term.py, &mut self.grad);
            total
        };
        let weight = term.weight;
        self.grad.map_inplace(|g| g * weight);
        net.backward_train(&self.grad, scratch);
        total
    }
}
