//! Minibatch index shuffling and scratch-reusing row gathers.
//!
//! The monolithic trainer allocated two fresh matrices per minibatch (the
//! gathered feature rows and the target column). The batcher owns both
//! buffers and refills them in place, so the steady-state training step
//! performs zero allocations on the data path. Shuffling draws from the
//! caller's RNG with exactly the stream the old trainer used
//! (`indices.shuffle`), keeping seeded runs bit-identical.

use pinnsoc_nn::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Epoch-shuffled minibatch gatherer with reusable gather buffers.
#[derive(Debug, Clone)]
pub struct Batcher {
    indices: Vec<usize>,
    x: Matrix,
    y: Matrix,
}

impl Batcher {
    /// A batcher over `samples` training rows (initially in order).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn new(samples: usize) -> Self {
        assert!(samples > 0, "need at least one training sample");
        Self {
            indices: (0..samples).collect(),
            x: Matrix::zeros(1, 1),
            y: Matrix::zeros(1, 1),
        }
    }

    /// Number of training rows.
    pub fn samples(&self) -> usize {
        self.indices.len()
    }

    /// Number of minibatches per epoch at the given batch size (the last
    /// one may be partial).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn batches(&self, batch_size: usize) -> usize {
        assert!(batch_size > 0, "batch size must be positive");
        self.indices.len().div_ceil(batch_size)
    }

    /// Reshuffles the epoch order, drawing from `rng` exactly as
    /// `indices.shuffle(rng)` does.
    pub fn shuffle(&mut self, rng: &mut StdRng) {
        self.indices.shuffle(rng);
    }

    /// Gathers minibatch `b` of the current epoch order into the reused
    /// buffers: the selected `features` rows into an `len × cols` matrix
    /// and the matching `targets` into an `len × 1` column. Values are
    /// identical to the allocating `gather_rows` + `from_vec` path.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range or `targets` is shorter than the
    /// sample count.
    pub fn gather(
        &mut self,
        b: usize,
        batch_size: usize,
        features: &Matrix,
        targets: &[f32],
    ) -> (&Matrix, &Matrix) {
        let lo = b * batch_size;
        let hi = (lo + batch_size).min(self.indices.len());
        assert!(lo < hi, "minibatch {b} out of range");
        let chunk = &self.indices[lo..hi];
        features.gather_rows_into(chunk, &mut self.x);
        self.y.reset_for_overwrite(chunk.len(), 1);
        for (r, &i) in chunk.iter().enumerate() {
            self.y.row_mut(r)[0] = targets[i];
        }
        (&self.x, &self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gather_matches_allocating_path() {
        let features = Matrix::from_vec(7, 2, (0..14).map(|i| i as f32).collect());
        let targets: Vec<f32> = (0..7).map(|i| i as f32 * 10.0).collect();
        let mut batcher = Batcher::new(7);
        let mut rng = StdRng::seed_from_u64(3);
        batcher.shuffle(&mut rng);
        // Reference: the old trainer's chunked gather.
        let mut reference_rng = StdRng::seed_from_u64(3);
        let mut indices: Vec<usize> = (0..7).collect();
        indices.shuffle(&mut reference_rng);
        assert_eq!(batcher.batches(3), 3);
        for (b, chunk) in indices.chunks(3).enumerate() {
            let rx = features.gather_rows(chunk);
            let ry = Matrix::from_vec(chunk.len(), 1, chunk.iter().map(|&i| targets[i]).collect());
            let (x, y) = batcher.gather(b, 3, &features, &targets);
            assert_eq!(x, &rx, "batch {b}");
            assert_eq!(y, &ry, "batch {b}");
        }
    }

    #[test]
    fn partial_final_batch_has_correct_height() {
        let features = Matrix::from_vec(5, 1, (0..5).map(|i| i as f32).collect());
        let targets = [0.0f32; 5];
        let mut batcher = Batcher::new(5);
        assert_eq!(batcher.batches(2), 3);
        let (x, y) = batcher.gather(2, 2, &features, &targets);
        assert_eq!(x.shape(), (1, 1));
        assert_eq!(y.shape(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_batch_panics() {
        let features = Matrix::zeros(4, 1);
        let mut batcher = Batcher::new(4);
        let _ = batcher.gather(2, 2, &features, &[0.0; 4]);
    }
}
