//! Split training scheme of §III-B, as a composable engine.
//!
//! Branch 1 is trained alone on `(V, I, T) → SoC(t)`; gradients never flow
//! from Branch 2 into Branch 1. Branch 2 is trained on ground-truth
//! `SoC(t)` inputs (teacher forcing) with the loss of Eq. 2: a data MAE
//! term at the dataset horizon `N`, plus — for PINN variants — a label-free
//! physics MAE term over randomly generated Coulomb-counting tuples with
//! horizons drawn from the set 𝒩.
//!
//! The engine is split into four small layers, replacing the old
//! single-function trainer without changing a single bit of its output at a
//! fixed seed:
//!
//! - [`batcher`]: epoch shuffling plus scratch-reusing minibatch gathers —
//!   zero allocations per steady-state step on the data path.
//! - [`objective`]: the Eq. 2 loss behind the [`Objective`] trait. PINN
//!   variants are *data* ([`Eq2Objective`] with an optional
//!   [`PhysicsTerm`]), not match arms in the loop.
//! - [`loop_`]: the epoch driver (cosine LR schedule, optimizer steps,
//!   sample-weighted loss trace) shared by both branches.
//! - [`many`]: [`train_many`] — pool-parallel training of independent
//!   models over the shared `pinnsoc-runtime` worker pool, bit-identical
//!   to the serial loop, feeding the fleet's hot-swap registry.
//!
//! [`train`] remains the thin façade over all of it. The forward/backward
//! passes run through `pinnsoc-nn`'s fused, scratch-reusing training path
//! ([`pinnsoc_nn::Mlp::forward_train`]), which is bit-exact with the
//! allocating reference path by the crate's bit-exactness contract.

use crate::config::{PinnVariant, TrainConfig};
use crate::model::{Branch1, Branch2, SecondStage, SocModel};
use pinnsoc_data::{
    estimation_samples, prediction_pairs_all, Normalizer, PhysicsSampler, SocDataset,
};
use pinnsoc_obs::ObsHub;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

pub mod batcher;
pub mod loop_;
pub mod many;
pub mod objective;
pub mod obs;

pub use batcher::Batcher;
pub use loop_::{run_epochs, run_epochs_observed, EpochSink, EpochSpec, EpochStats, NoopEpochSink};
pub use many::{train_many, train_many_with, TrainTask};
pub use objective::{Eq2Objective, Objective, PhysicsTerm};
pub use obs::TrainObs;

/// Per-epoch loss trace of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Variant label of the trained model.
    pub label: String,
    /// Branch 1 training MAE per epoch (sample-weighted average).
    pub b1_loss: Vec<f32>,
    /// Branch 2 combined loss (data + physics) per epoch, sample-weighted;
    /// empty for Physics-Only.
    pub b2_loss: Vec<f32>,
}

/// Trains a [`SocModel`] on a dataset according to the configuration.
///
/// Thin façade over the training engine: it assembles the branches, picks
/// the [`Objective`] for the variant, and hands both branches to the shared
/// epoch driver. Results at a fixed seed are bit-identical to the
/// pre-decomposition trainer (enforced by a golden-value test).
/// Equivalent to [`train_from`] with no warm start.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`TrainConfig::validate`])
/// or the dataset has no training cycles.
pub fn train(dataset: &SocDataset, config: &TrainConfig) -> (SocModel, TrainReport) {
    train_from(dataset, config, None)
}

/// Trains a [`SocModel`], optionally **warm-starting** from an existing
/// model — the fine-tuning entry point behind `pinnsoc-adapt`'s online
/// adaptation loop.
///
/// With `warm: None` this is exactly [`train`]: branches are random-
/// initialized from the config seed and their normalizers are fit on the
/// dataset (golden tests pin this path bit-identical to the pre-warm-start
/// trainer). With `warm: Some(model)`:
///
/// - Both branches start from the warm model's **weights and normalizers**
///   (refitting normalization would silently re-scale the inputs the warm
///   weights were calibrated for), and the small-output init rescale is
///   skipped — it is an init-time conditioning trick, not a fine-tune one.
/// - `config.b2_epochs == 0` with a neural warm second stage is the
///   Branch-1-only fast path: the warm Branch 2 passes through untouched
///   and no prediction pairs are assembled (harvested pseudo-cycles are
///   generally too short to window at the data horizon).
/// - Everything else (shuffling, LR schedule, physics streams) derives from
///   `config.seed` exactly as in cold training, so fine-tuning is as
///   deterministic as training from scratch.
///
/// # Panics
///
/// As [`train`]; additionally if a warm Branch-2 is required but training
/// data yields no prediction pairs at the configured horizon.
pub fn train_from(
    dataset: &SocDataset,
    config: &TrainConfig,
    warm: Option<&SocModel>,
) -> (SocModel, TrainReport) {
    train_from_with(dataset, config, warm, None)
}

/// [`train_from`] with optional observability: when `hub` is `Some`, each
/// branch's epoch loop reports `pinnsoc_train_*` series (loss, LR,
/// epoch wall time, throughput, allocation counts) labeled `branch="b1"` /
/// `branch="b2"`. The trained model and report are **bit-identical** to
/// [`train_from`] either way — observation reads values the loop already
/// computed, never the other direction.
///
/// # Panics
///
/// As [`train_from`].
pub fn train_from_with(
    dataset: &SocDataset,
    config: &TrainConfig,
    warm: Option<&SocModel>,
    hub: Option<&Arc<ObsHub>>,
) -> (SocModel, TrainReport) {
    config.validate();
    assert!(!dataset.train.is_empty(), "dataset has no training cycles");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // ----- Branch 1: estimation -----
    let est_samples: Vec<_> = dataset.train.iter().flat_map(estimation_samples).collect();
    assert!(!est_samples.is_empty(), "no estimation samples");
    let feature_rows: Vec<[f64; 3]> = est_samples.iter().map(|s| s.features()).collect();
    let mut branch1 = match warm {
        Some(model) => model.branch1.clone(),
        None => {
            let norm1 = Normalizer::fit(feature_rows.iter().map(|r| r.as_slice()));
            let mut branch1 = Branch1::new(norm1, &mut rng);
            // Small-output init (see the Branch 2 note below): start near
            // the mean SoC instead of at random-scale outputs.
            branch1.net_mut().scale_output_weights(0.1);
            branch1
        }
    };
    let features = branch1.feature_matrix(&feature_rows);
    let targets: Vec<f32> = est_samples.iter().map(|s| s.soc as f32).collect();
    let mut b1_obs = hub.map(|h| TrainObs::new(h, "b1"));
    let mut noop = NoopEpochSink;
    let b1_sink: &mut dyn EpochSink = match b1_obs.as_mut() {
        Some(sink) => sink,
        None => &mut noop,
    };
    let b1_loss = run_epochs_observed(
        branch1.net_mut(),
        &features,
        &targets,
        EpochSpec {
            epochs: config.b1_epochs,
            batch_size: config.batch_size,
            learning_rate: config.learning_rate,
        },
        &mut Eq2Objective::data_only(),
        &mut rng,
        b1_sink,
    );
    if let Some(obs) = b1_obs {
        obs.finish();
    }

    // ----- Branch 2: prediction -----
    let warm_b2 = warm.and_then(|model| match &model.stage2 {
        SecondStage::Network(b2) => Some(b2),
        SecondStage::Coulomb { .. } => None,
    });
    let (stage2, b2_loss) = match &config.variant {
        PinnVariant::PhysicsOnly => (
            SecondStage::Coulomb {
                capacity_ah: config.capacity_ah,
            },
            Vec::new(),
        ),
        _ if config.b2_epochs == 0 && warm_b2.is_some() => {
            // Branch-1-only fine-tune: the warm predictor passes through.
            (
                SecondStage::Network(warm_b2.expect("checked").clone()),
                Vec::new(),
            )
        }
        variant => {
            let pairs = prediction_pairs_all(&dataset.train, config.data_horizon_s);
            assert!(
                !pairs.is_empty(),
                "no prediction pairs at horizon {}s",
                config.data_horizon_s
            );
            let mut branch2 = match warm_b2 {
                Some(b2) => b2.clone(),
                None => {
                    let it_rows: Vec<[f64; 2]> = pairs
                        .iter()
                        .map(|p| [p.avg_current_a, p.avg_temperature_c])
                        .collect();
                    let norm_it = Normalizer::fit(it_rows.iter().map(|r| r.as_slice()));
                    Branch2::new(norm_it, config.data_horizon_s, &mut rng)
                }
            };
            // The variant is data from here on: No-PINN trains the same
            // loop with no physics term.
            let mut objective = match variant {
                PinnVariant::Pinn { horizons_s } => Eq2Objective::with_physics(PhysicsTerm::new(
                    PhysicsSampler::new(
                        dataset,
                        horizons_s.clone(),
                        config.physics_current,
                        config.seed.wrapping_add(1),
                    ),
                    branch2.featurizer(),
                    config.physics_weight,
                )),
                _ => Eq2Objective::data_only(),
            };
            if warm_b2.is_none() {
                // Small-output init: Branch 2 starts near its mean
                // prediction, so the combined data + physics objective is
                // well-conditioned from the first step (large random initial
                // outputs can lock the horizon response into inverted
                // basins).
                branch2.net_mut().scale_output_weights(0.1);
            }
            let rows: Vec<[f64; 4]> = pairs.iter().map(|p| p.features()).collect();
            let features = branch2.feature_matrix(&rows);
            let targets: Vec<f32> = pairs.iter().map(|p| p.soc_next as f32).collect();
            let mut b2_obs = hub.map(|h| TrainObs::new(h, "b2"));
            let mut noop = NoopEpochSink;
            let b2_sink: &mut dyn EpochSink = match b2_obs.as_mut() {
                Some(sink) => sink,
                None => &mut noop,
            };
            let losses = run_epochs_observed(
                branch2.net_mut(),
                &features,
                &targets,
                EpochSpec {
                    epochs: config.b2_epochs,
                    batch_size: config.batch_size,
                    learning_rate: config.learning_rate,
                },
                &mut objective,
                &mut rng,
                b2_sink,
            );
            if let Some(obs) = b2_obs {
                obs.finish();
            }
            (SecondStage::Network(branch2), losses)
        }
    };

    let label = config.variant.to_string();
    let model = SocModel {
        branch1,
        stage2,
        label: label.clone(),
    };
    (
        model,
        TrainReport {
            label,
            b1_loss,
            b2_loss,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinnsoc_battery::Chemistry;
    use pinnsoc_data::{generate_sandia, NoiseConfig, SandiaConfig};
    use std::sync::Arc;

    fn tiny_dataset() -> SocDataset {
        generate_sandia(&SandiaConfig {
            chemistries: vec![Chemistry::Nmc],
            ambient_temps_c: vec![25.0],
            cycles_per_condition: 1,
            noise: NoiseConfig::none(),
            ..SandiaConfig::default()
        })
    }

    fn quick_config(variant: PinnVariant) -> TrainConfig {
        TrainConfig {
            b1_epochs: 30,
            b2_epochs: 30,
            batch_size: 16,
            ..TrainConfig::sandia(variant, 42)
        }
    }

    #[test]
    fn branch1_loss_decreases() {
        let ds = tiny_dataset();
        let (_, report) = train(&ds, &quick_config(PinnVariant::NoPinn));
        let first = report.b1_loss.first().unwrap();
        let last = report.b1_loss.last().unwrap();
        assert!(last < first, "B1 loss did not improve: {first} -> {last}");
        assert!(*last < 0.1, "B1 final loss too high: {last}");
    }

    #[test]
    fn branch2_loss_decreases() {
        let ds = tiny_dataset();
        let (_, report) = train(&ds, &quick_config(PinnVariant::NoPinn));
        let first = report.b2_loss.first().unwrap();
        let last = report.b2_loss.last().unwrap();
        assert!(last < first, "B2 loss did not improve: {first} -> {last}");
    }

    #[test]
    fn physics_only_skips_branch2() {
        let ds = tiny_dataset();
        let (model, report) = train(&ds, &quick_config(PinnVariant::PhysicsOnly));
        assert!(report.b2_loss.is_empty());
        assert!(matches!(model.stage2, SecondStage::Coulomb { .. }));
        assert_eq!(model.label, "Physics-Only");
    }

    #[test]
    fn pinn_trains_with_physics_batches() {
        let ds = tiny_dataset();
        let (model, report) = train(
            &ds,
            &quick_config(PinnVariant::pinn_all(&[120.0, 240.0, 360.0])),
        );
        assert!(!report.b2_loss.is_empty());
        assert_eq!(model.label, "PINN-All");
        assert!(matches!(model.stage2, SecondStage::Network(_)));
    }

    /// Golden-value regression against the pre-decomposition trainer: the
    /// outputs below were captured from the monolithic `trainer::train` at
    /// commit 1e75b11 (same dataset, same seeds). The decomposed engine —
    /// batcher, objective trait, shared epoch driver, fused nn training
    /// path — must reproduce them bit-for-bit.
    #[test]
    fn golden_no_pinn_model_is_bit_identical_to_pre_refactor_trainer() {
        let ds = tiny_dataset();
        let (m, _) = train(&ds, &quick_config(PinnVariant::NoPinn));
        assert_eq!(m.estimate(3.7, 3.0, 25.0).to_bits(), 0x3fe0ede660000000);
        assert_eq!(
            m.predict_from(0.8, 3.0, 25.0, 120.0).to_bits(),
            0x3fd85acea0000000
        );
        assert_eq!(
            m.predict(3.9, 1.5, 24.0, 2.0, 26.0, 240.0).to_bits(),
            0x3fdc87c6e0000000
        );
    }

    /// Same golden contract for the PINN-All variant, which additionally
    /// exercises the physics RNG stream, the stratified physics batches,
    /// and the weighted second backward pass per step.
    #[test]
    fn golden_pinn_all_model_is_bit_identical_to_pre_refactor_trainer() {
        let ds = tiny_dataset();
        let (m, _) = train(
            &ds,
            &quick_config(PinnVariant::pinn_all(&[120.0, 240.0, 360.0])),
        );
        assert_eq!(m.estimate(3.7, 3.0, 25.0).to_bits(), 0x3fe0ede660000000);
        assert_eq!(
            m.predict_from(0.8, 3.0, 25.0, 120.0).to_bits(),
            0x3fe44e2dc0000000
        );
        assert_eq!(
            m.predict(3.9, 1.5, 24.0, 2.0, 26.0, 240.0).to_bits(),
            0x3fee9a1e20000000
        );
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let ds = tiny_dataset();
        let (m1, _) = train(&ds, &quick_config(PinnVariant::NoPinn));
        let (m2, _) = train(&ds, &quick_config(PinnVariant::NoPinn));
        assert_eq!(m1.estimate(3.7, 3.0, 25.0), m2.estimate(3.7, 3.0, 25.0));
        assert_eq!(
            m1.predict_from(0.8, 3.0, 25.0, 120.0),
            m2.predict_from(0.8, 3.0, 25.0, 120.0)
        );
    }

    #[test]
    fn pinn_training_is_deterministic_given_seed() {
        // The PINN variant adds the physics sampler's derived RNG stream
        // (seed + 1); determinism must hold across both streams, and the
        // loss traces must match too.
        let ds = tiny_dataset();
        let config = quick_config(PinnVariant::pinn_all(&[120.0, 240.0, 360.0]));
        let (m1, r1) = train(&ds, &config);
        let (m2, r2) = train(&ds, &config);
        assert_eq!(
            m1.estimate(3.7, 3.0, 25.0).to_bits(),
            m2.estimate(3.7, 3.0, 25.0).to_bits()
        );
        assert_eq!(
            m1.predict_from(0.8, 3.0, 25.0, 120.0).to_bits(),
            m2.predict_from(0.8, 3.0, 25.0, 120.0).to_bits()
        );
        assert_eq!(r1, r2, "loss traces must be reproducible");
    }

    #[test]
    fn different_seeds_give_different_models() {
        let ds = tiny_dataset();
        let (m1, _) = train(&ds, &quick_config(PinnVariant::NoPinn));
        let mut config = quick_config(PinnVariant::NoPinn);
        config.seed = 43;
        let (m2, _) = train(&ds, &config);
        assert_ne!(m1.estimate(3.7, 3.0, 25.0), m2.estimate(3.7, 3.0, 25.0));
    }

    #[test]
    fn trained_estimator_tracks_soc_on_train_data() {
        let ds = tiny_dataset();
        let (model, _) = train(&ds, &quick_config(PinnVariant::NoPinn));
        let cycle = &ds.train[0];
        let mut total = 0.0;
        for r in &cycle.records {
            total += (model.estimate(r.voltage_v, r.current_a, r.temperature_c) - r.soc).abs();
        }
        let mae = total / cycle.records.len() as f64;
        assert!(mae < 0.08, "train-set estimation MAE too high: {mae}");
    }

    #[test]
    fn train_many_matches_serial_training_exactly() {
        let ds = Arc::new(tiny_dataset());
        // Mixed seeds and variants in one run, including a physics variant.
        let configs = [
            quick_config(PinnVariant::NoPinn),
            TrainConfig {
                seed: 7,
                ..quick_config(PinnVariant::NoPinn)
            },
            quick_config(PinnVariant::pinn_all(&[120.0, 240.0])),
            quick_config(PinnVariant::PhysicsOnly),
        ];
        let serial: Vec<_> = configs.iter().map(|c| train(&ds, c)).collect();
        for workers in [0usize, 2] {
            let tasks: Vec<TrainTask> = configs
                .iter()
                .map(|c| TrainTask::new(Arc::clone(&ds), c.clone()))
                .collect();
            let pooled = train_many(tasks, workers);
            assert_eq!(pooled.len(), serial.len());
            for (i, ((ms, rs), (mp, rp))) in serial.iter().zip(&pooled).enumerate() {
                assert_eq!(rs, rp, "task {i} (workers={workers}): loss trace");
                assert_eq!(
                    ms.estimate(3.7, 3.0, 25.0).to_bits(),
                    mp.estimate(3.7, 3.0, 25.0).to_bits(),
                    "task {i} (workers={workers}): estimate"
                );
                assert_eq!(
                    ms.predict_from(0.8, 3.0, 25.0, 120.0).to_bits(),
                    mp.predict_from(0.8, 3.0, 25.0, 120.0).to_bits(),
                    "task {i} (workers={workers}): prediction"
                );
            }
        }
    }

    #[test]
    fn train_many_empty_is_empty() {
        assert!(train_many(Vec::new(), 2).is_empty());
    }

    #[test]
    fn warm_start_with_zero_epochs_is_identity() {
        // Fine-tuning for zero epochs must hand the warm model back
        // bit-for-bit: weights, normalizers, and both branches untouched.
        let ds = tiny_dataset();
        let (warm, _) = train(&ds, &quick_config(PinnVariant::NoPinn));
        let frozen = TrainConfig {
            b1_epochs: 0,
            b2_epochs: 0,
            ..quick_config(PinnVariant::NoPinn)
        };
        let (tuned, report) = train_from(&ds, &frozen, Some(&warm));
        assert!(report.b1_loss.is_empty() && report.b2_loss.is_empty());
        assert_eq!(
            tuned.estimate(3.7, 3.0, 25.0).to_bits(),
            warm.estimate(3.7, 3.0, 25.0).to_bits()
        );
        assert_eq!(
            tuned.predict(3.9, 1.5, 24.0, 2.0, 26.0, 240.0).to_bits(),
            warm.predict(3.9, 1.5, 24.0, 2.0, 26.0, 240.0).to_bits()
        );
    }

    #[test]
    fn warm_start_branch1_fine_tune_moves_b1_and_freezes_b2() {
        let ds = tiny_dataset();
        let (warm, _) = train(&ds, &quick_config(PinnVariant::NoPinn));
        let config = TrainConfig {
            b1_epochs: 5,
            b2_epochs: 0,
            learning_rate: 1e-3,
            ..quick_config(PinnVariant::NoPinn)
        };
        let (tuned, report) = train_from(&ds, &config, Some(&warm));
        assert_eq!(report.b1_loss.len(), 5);
        assert!(report.b2_loss.is_empty());
        assert_ne!(
            tuned.estimate(3.7, 3.0, 25.0).to_bits(),
            warm.estimate(3.7, 3.0, 25.0).to_bits(),
            "Branch 1 must have trained"
        );
        // Branch 2 passed through untouched: identical predictions from the
        // same starting SoC.
        assert_eq!(
            tuned.predict_from(0.8, 3.0, 25.0, 120.0).to_bits(),
            warm.predict_from(0.8, 3.0, 25.0, 120.0).to_bits()
        );
        // Warm-start fine-tuning is deterministic like everything else.
        let (tuned2, report2) = train_from(&ds, &config, Some(&warm));
        assert_eq!(report, report2);
        assert_eq!(
            tuned.estimate(3.7, 3.0, 25.0).to_bits(),
            tuned2.estimate(3.7, 3.0, 25.0).to_bits()
        );
    }

    #[test]
    fn warm_start_keeps_improving_training_loss() {
        // Continuing training from a trained model should start near the
        // warm model's final loss, not re-climb a random-init cliff.
        let ds = tiny_dataset();
        let (warm, warm_report) = train(&ds, &quick_config(PinnVariant::NoPinn));
        let config = TrainConfig {
            b1_epochs: 5,
            b2_epochs: 0,
            learning_rate: 1e-3,
            ..quick_config(PinnVariant::NoPinn)
        };
        let (_, report) = train_from(&ds, &config, Some(&warm));
        let warm_final = *warm_report.b1_loss.last().unwrap();
        let resumed_first = report.b1_loss[0];
        assert!(
            resumed_first < warm_final * 3.0 + 0.05,
            "warm start lost the trained state: {warm_final} -> {resumed_first}"
        );
    }

    #[test]
    fn warm_started_train_many_matches_serial_train_from() {
        let ds = Arc::new(tiny_dataset());
        let (warm, _) = train(&ds, &quick_config(PinnVariant::NoPinn));
        let warm = Arc::new(warm);
        let configs: Vec<TrainConfig> = [11u64, 12]
            .iter()
            .map(|&seed| TrainConfig {
                b1_epochs: 4,
                b2_epochs: 0,
                seed,
                ..quick_config(PinnVariant::NoPinn)
            })
            .collect();
        let serial: Vec<_> = configs
            .iter()
            .map(|c| train_from(&ds, c, Some(&warm)))
            .collect();
        for workers in [0usize, 2] {
            let tasks: Vec<TrainTask> = configs
                .iter()
                .map(|c| TrainTask::new(Arc::clone(&ds), c.clone()).warm_started(Arc::clone(&warm)))
                .collect();
            let pooled = train_many(tasks, workers);
            for (i, ((ms, rs), (mp, rp))) in serial.iter().zip(&pooled).enumerate() {
                assert_eq!(rs, rp, "task {i} (workers={workers}): loss trace");
                assert_eq!(
                    ms.estimate(3.7, 3.0, 25.0).to_bits(),
                    mp.estimate(3.7, 3.0, 25.0).to_bits(),
                    "task {i} (workers={workers})"
                );
            }
        }
    }
}
