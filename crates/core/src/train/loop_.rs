//! The epoch driver: LR schedule, shuffled minibatches, objective steps,
//! and the per-epoch loss trace.
//!
//! Both branches of the split training scheme (§III-B) run through this one
//! loop; what differs between them — and between the paper's PINN variants
//! — is only the [`Objective`](super::Objective) value passed in.

use super::batcher::Batcher;
use super::objective::Objective;
use pinnsoc_nn::{Adam, LrSchedule, Matrix, Mlp, Optimizer, TrainScratch};
use rand::rngs::StdRng;
use std::time::Instant;

/// Shape of one branch's epoch loop.
#[derive(Debug, Clone, Copy)]
pub struct EpochSpec {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam base learning rate (cosine-annealed to 5% over the run).
    pub learning_rate: f32,
}

/// Per-epoch observation handed to an [`EpochSink`].
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Sample-weighted loss of this epoch.
    pub loss: f32,
    /// Learning rate this epoch (after the cosine schedule).
    pub lr: f32,
    /// Samples in the epoch (the full dataset; every epoch sees all).
    pub samples: usize,
    /// Wall time of the epoch, seconds.
    pub wall_s: f64,
    /// Heap allocations during the epoch, when an allocation counter is
    /// installed via `pinnsoc_obs::alloc_hook` (`None` otherwise).
    pub allocs: Option<u64>,
}

/// Observer of the epoch loop with a no-op default, so the uninstrumented
/// path ([`run_epochs`]) compiles to exactly the pre-observability loop —
/// not even the clock is read unless [`EpochSink::is_live`] says so.
pub trait EpochSink {
    /// True when epochs should be measured and reported.
    fn is_live(&self) -> bool {
        false
    }

    /// Called once per completed epoch.
    fn epoch(&mut self, stats: &EpochStats) {
        let _ = stats;
    }
}

/// The do-nothing sink behind [`run_epochs`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopEpochSink;

impl EpochSink for NoopEpochSink {}

/// Runs `spec.epochs` epochs of minibatch training on `net` and returns the
/// per-epoch loss trace.
///
/// Epoch losses are **weighted by sample count**: each minibatch's loss
/// contributes proportionally to its height, so a partial final batch is no
/// longer over-weighted the way the old per-chunk average over-weighted it.
/// (The model trajectory is unaffected — gradients never depended on the
/// reported average.)
pub fn run_epochs(
    net: &mut Mlp,
    features: &Matrix,
    targets: &[f32],
    spec: EpochSpec,
    objective: &mut dyn Objective,
    rng: &mut StdRng,
) -> Vec<f32> {
    run_epochs_observed(
        net,
        features,
        targets,
        spec,
        objective,
        rng,
        &mut NoopEpochSink,
    )
}

/// [`run_epochs`] with a per-epoch observer. The model trajectory and the
/// returned loss trace are bit-identical to the unobserved loop for any
/// sink: observation reads quantities the loop already computed and the
/// clock — it never touches the data, RNG, or optimizer state.
#[allow(clippy::too_many_arguments)]
pub fn run_epochs_observed(
    net: &mut Mlp,
    features: &Matrix,
    targets: &[f32],
    spec: EpochSpec,
    objective: &mut dyn Objective,
    rng: &mut StdRng,
    sink: &mut dyn EpochSink,
) -> Vec<f32> {
    assert_eq!(
        features.rows(),
        targets.len(),
        "feature/target row mismatch"
    );
    let mut opt = Adam::new(spec.learning_rate);
    let schedule = LrSchedule::Cosine {
        total: spec.epochs,
        min_lr: spec.learning_rate * 0.05,
    };
    let mut batcher = Batcher::new(targets.len());
    let mut scratch = TrainScratch::default();
    let mut history = Vec::with_capacity(spec.epochs);
    let total_samples = targets.len() as f32;
    let live = sink.is_live();
    for epoch in 0..spec.epochs {
        let epoch_start = live.then(Instant::now);
        let allocs_before = if live {
            pinnsoc_obs::alloc_hook::current()
        } else {
            None
        };
        let lr = schedule.rate_at(spec.learning_rate, epoch);
        opt.set_learning_rate(lr);
        batcher.shuffle(rng);
        let mut weighted_loss = 0.0_f32;
        for b in 0..batcher.batches(spec.batch_size) {
            let (x, y) = batcher.gather(b, spec.batch_size, features, targets);
            let samples = y.rows() as f32;
            let loss = objective.batch_step(net, x, y, &mut scratch);
            opt.step(net);
            weighted_loss += loss * samples;
        }
        let loss = weighted_loss / total_samples;
        history.push(loss);
        if let Some(start) = epoch_start {
            let allocs = pinnsoc_obs::alloc_hook::current()
                .zip(allocs_before)
                .map(|(now, before)| now.saturating_sub(before));
            sink.epoch(&EpochStats {
                epoch,
                loss,
                lr,
                samples: targets.len(),
                wall_s: start.elapsed().as_secs_f64(),
                allocs,
            });
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinnsoc_nn::{Activation, Init, Loss};
    use rand::SeedableRng;

    /// Objective stub whose loss is the minibatch height — makes the epoch
    /// average directly observable.
    struct HeightLoss;

    impl Objective for HeightLoss {
        fn batch_step(
            &mut self,
            net: &mut Mlp,
            x: &Matrix,
            y: &Matrix,
            scratch: &mut TrainScratch,
        ) -> f32 {
            // Keep gradients well-defined so the driver's optimizer step
            // has something to consume.
            let mut grad = Matrix::zeros(1, 1);
            {
                let pred = net.forward_train(x, scratch);
                Loss::Mae.gradient_into(pred, y, &mut grad);
            }
            net.zero_grad();
            net.backward_train(&grad, scratch);
            y.rows() as f32
        }
    }

    #[test]
    fn epoch_loss_is_sample_weighted_not_chunk_weighted() {
        // 5 samples at batch size 2 -> chunks of 2, 2, 1. Per-batch loss is
        // the batch height, so the sample-weighted epoch average is
        // (2·2 + 2·2 + 1·1) / 5 = 1.8. The old per-chunk average would
        // report (2 + 2 + 1) / 3 ≈ 1.667, over-weighting the partial batch.
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Mlp::new(&[2, 4, 1], Activation::Relu, Init::HeNormal, &mut rng);
        let features = Matrix::from_vec(5, 2, (0..10).map(|i| i as f32 * 0.1).collect());
        let targets = [0.1f32, 0.2, 0.3, 0.4, 0.5];
        let history = run_epochs(
            &mut net,
            &features,
            &targets,
            EpochSpec {
                epochs: 2,
                batch_size: 2,
                learning_rate: 1e-3,
            },
            &mut HeightLoss,
            &mut rng,
        );
        assert_eq!(history.len(), 2);
        for (epoch, &loss) in history.iter().enumerate() {
            assert!(
                (loss - 1.8).abs() < 1e-6,
                "epoch {epoch}: expected sample-weighted 1.8, got {loss}"
            );
        }
    }
}
