//! Training observability: per-epoch loss, learning rate, throughput,
//! and allocation counts as `pinnsoc_train_*` series.
//!
//! [`TrainObs`] is an [`EpochSink`] labeled by branch (`branch="b1"` /
//! `branch="b2"`); the epoch driver feeds it one [`EpochStats`] per epoch
//! and [`TrainObs::finish`] merges the accumulated buffer into the hub in
//! one lock acquisition — a training worker never holds the registry lock
//! mid-epoch.

use super::loop_::{EpochSink, EpochStats};
use pinnsoc_obs::{LocalMetrics, MetricId, ObsHub, DURATION_BUCKETS};
use std::sync::Arc;

/// Records one branch's epoch loop into a hub.
#[derive(Debug)]
pub struct TrainObs {
    hub: Arc<ObsHub>,
    local: LocalMetrics,
    epochs: MetricId,
    epoch_seconds: MetricId,
    loss: MetricId,
    lr: MetricId,
    samples_per_s: MetricId,
    allocs: MetricId,
}

impl TrainObs {
    /// Registers the `pinnsoc_train_*` series for `branch` (idempotent).
    pub fn new(hub: &Arc<ObsHub>, branch: &str) -> Self {
        let reg = hub.registry();
        let labels: &[(&str, &str)] = &[("branch", branch)];
        Self {
            hub: Arc::clone(hub),
            epochs: reg.counter_with(
                "pinnsoc_train_epochs_total",
                "Completed training epochs.",
                labels,
            ),
            epoch_seconds: reg.histogram_with(
                "pinnsoc_train_epoch_seconds",
                "Wall time of one training epoch.",
                labels,
                DURATION_BUCKETS,
            ),
            loss: reg.gauge_with(
                "pinnsoc_train_epoch_loss",
                "Sample-weighted loss of the most recent epoch.",
                labels,
            ),
            lr: reg.gauge_with(
                "pinnsoc_train_lr",
                "Learning rate of the most recent epoch (cosine schedule).",
                labels,
            ),
            samples_per_s: reg.gauge_with(
                "pinnsoc_train_samples_per_second",
                "Training throughput of the most recent epoch.",
                labels,
            ),
            allocs: reg.counter_with(
                "pinnsoc_train_allocs_total",
                "Heap allocations during training epochs (needs an \
                 installed alloc hook; 0 otherwise).",
                labels,
            ),
            local: reg.local(),
        }
    }

    /// Merges everything recorded so far into the hub — one registry
    /// lock for the whole branch run.
    pub fn finish(mut self) {
        self.hub.registry().merge(&mut self.local);
    }
}

impl EpochSink for TrainObs {
    fn is_live(&self) -> bool {
        true
    }

    fn epoch(&mut self, stats: &EpochStats) {
        self.local.add(self.epochs, 1);
        self.local.observe(self.epoch_seconds, stats.wall_s);
        self.local.set(self.loss, stats.loss as f64);
        self.local.set(self.lr, stats.lr as f64);
        if stats.wall_s > 0.0 {
            self.local
                .set(self.samples_per_s, stats.samples as f64 / stats.wall_s);
        }
        if let Some(allocs) = stats.allocs {
            self.local.add(self.allocs, allocs);
        }
    }
}
