//! Pool-parallel training of independent models.
//!
//! Training tasks are independent — ensemble seeds, PINN variants, or
//! different datasets entirely — so they scale across cores exactly the way
//! fleet serving does: through the shared
//! [`pinnsoc_runtime::WorkerPool`]. Each task carries its own
//! [`TrainConfig`] seed, and [`train`] derives every RNG stream from that
//! seed alone, so results are deterministic and **identical to running the
//! same `train()` calls serially** regardless of worker count or completion
//! order.

use super::{train, TrainReport};
use crate::config::TrainConfig;
use crate::model::SocModel;
use pinnsoc_data::SocDataset;
use pinnsoc_runtime::{NoContext, PoolTask, WorkerPool};
use std::sync::Arc;

/// One independent training job: a dataset (shared by `Arc`, so N seeds on
/// one dataset don't copy it N times) and its configuration.
#[derive(Debug, Clone)]
pub struct TrainTask {
    /// The dataset to train on.
    pub dataset: Arc<SocDataset>,
    /// The variant, hyper-parameters, and seed.
    pub config: TrainConfig,
}

impl TrainTask {
    /// A task training `config` on `dataset`.
    pub fn new(dataset: Arc<SocDataset>, config: TrainConfig) -> Self {
        Self { dataset, config }
    }
}

impl PoolTask for TrainTask {
    type Ctx = ();
    type Kind = ();
    type Output = (SocModel, TrainReport);

    fn run(&mut self, _: &(), (): ()) -> Self::Output {
        train(&self.dataset, &self.config)
    }
}

/// Trains every task, draining them through a persistent worker pool with
/// `workers` extra threads (the calling thread always participates; `0`
/// runs everything on the calling thread, which is optimal on a single-core
/// host). Results are returned **in task order** and are bit-identical to
/// calling [`train`] on each task serially.
///
/// # Panics
///
/// Panics if any training task panics (after every other task completed),
/// or if a task's configuration is invalid.
pub fn train_many(tasks: Vec<TrainTask>, workers: usize) -> Vec<(SocModel, TrainReport)> {
    if tasks.is_empty() {
        return Vec::new();
    }
    let mut pool: WorkerPool<NoContext, TrainTask> = WorkerPool::new(Arc::new(NoContext), workers);
    let mut queue: Vec<(usize, TrainTask)> = tasks.into_iter().enumerate().collect();
    let mut done = Vec::with_capacity(queue.len());
    let panicked = pool.run((), &mut queue, &mut done);
    assert!(!panicked, "a training task panicked");
    // Completion order is nondeterministic under concurrency; the outputs
    // are not — restore task order.
    done.sort_unstable_by_key(|d| d.idx);
    done.into_iter().map(|d| d.output).collect()
}
