//! Pool-parallel training of independent models.
//!
//! Training tasks are independent — ensemble seeds, PINN variants, or
//! different datasets entirely — so they scale across cores exactly the way
//! fleet serving does: through the shared
//! [`pinnsoc_runtime::WorkerPool`]. Each task carries its own
//! [`TrainConfig`] seed, and [`train`] derives every RNG stream from that
//! seed alone, so results are deterministic and **identical to running the
//! same `train()` calls serially** regardless of worker count or completion
//! order.

use super::{train_from_with, TrainReport};
use crate::config::TrainConfig;
use crate::model::SocModel;
use pinnsoc_data::SocDataset;
use pinnsoc_obs::ObsHub;
use pinnsoc_runtime::{NoContext, PoolTask, WorkerPool};
use std::sync::Arc;

/// One independent training job: a dataset (shared by `Arc`, so N seeds on
/// one dataset don't copy it N times), its configuration, and an optional
/// warm-start model (shared the same way — N fine-tune candidates off one
/// serving snapshot don't copy the weights N times).
#[derive(Debug, Clone)]
pub struct TrainTask {
    /// The dataset to train on.
    pub dataset: Arc<SocDataset>,
    /// The variant, hyper-parameters, and seed.
    pub config: TrainConfig,
    /// Initial weights and normalizers (see
    /// [`train_from`](super::train_from)); `None` trains from random init.
    pub warm_start: Option<Arc<SocModel>>,
    /// Observability hub receiving per-epoch `pinnsoc_train_*` series;
    /// `None` trains fully uninstrumented (zero overhead). Results are
    /// bit-identical either way.
    pub obs: Option<Arc<ObsHub>>,
}

impl TrainTask {
    /// A task training `config` on `dataset` from random init.
    pub fn new(dataset: Arc<SocDataset>, config: TrainConfig) -> Self {
        Self {
            dataset,
            config,
            warm_start: None,
            obs: None,
        }
    }

    /// The same task, warm-started from `model` (the fine-tuning form used
    /// by the online-adaptation loop).
    pub fn warm_started(mut self, model: Arc<SocModel>) -> Self {
        self.warm_start = Some(model);
        self
    }

    /// The same task, reporting per-epoch training metrics into `hub`.
    pub fn observed(mut self, hub: Arc<ObsHub>) -> Self {
        self.obs = Some(hub);
        self
    }
}

impl PoolTask for TrainTask {
    type Ctx = ();
    type Kind = ();
    type Output = (SocModel, TrainReport);

    fn run(&mut self, _: &(), (): ()) -> Self::Output {
        train_from_with(
            &self.dataset,
            &self.config,
            self.warm_start.as_deref(),
            self.obs.as_ref(),
        )
    }
}

/// Trains every task, draining them through a persistent worker pool with
/// `workers` extra threads (the calling thread always participates; `0`
/// runs everything on the calling thread, which is optimal on a single-core
/// host). Results are returned **in task order** and are bit-identical to
/// calling [`train`] on each task serially.
///
/// # Panics
///
/// Panics if any training task panics (after every other task completed),
/// or if a task's configuration is invalid.
pub fn train_many(tasks: Vec<TrainTask>, workers: usize) -> Vec<(SocModel, TrainReport)> {
    if tasks.is_empty() {
        return Vec::new();
    }
    let mut pool: WorkerPool<NoContext, TrainTask> = WorkerPool::new(Arc::new(NoContext), workers);
    train_many_with(&mut pool, tasks)
}

/// [`train_many`] over a caller-owned pool, so repeated training rounds
/// (e.g. the online-adaptation engine's background fine-tunes) reuse the
/// same parked worker threads instead of spawning a pool per round. Same
/// ordering and bit-identity contract as [`train_many`].
///
/// # Panics
///
/// Panics if any training task panics (after every other task completed),
/// or if a task's configuration is invalid.
pub fn train_many_with(
    pool: &mut WorkerPool<NoContext, TrainTask>,
    tasks: Vec<TrainTask>,
) -> Vec<(SocModel, TrainReport)> {
    if tasks.is_empty() {
        return Vec::new();
    }
    let mut queue: Vec<(usize, TrainTask)> = tasks.into_iter().enumerate().collect();
    let mut done = Vec::with_capacity(queue.len());
    let panicked = pool.run((), &mut queue, &mut done);
    assert!(!panicked, "a training task panicked");
    // Completion order is nondeterministic under concurrency; the outputs
    // are not — restore task order.
    done.sort_unstable_by_key(|d| d.idx);
    done.into_iter().map(|d| d.output).collect()
}
