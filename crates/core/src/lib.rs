//! # pinnsoc
//!
//! Rust reproduction of *"Coupling Neural Networks and Physics Equations For
//! Li-Ion Battery State-of-Charge Prediction"* (Pollo et al., DATE 2025,
//! arXiv:2412.16724).
//!
//! The paper contributes (i) a two-branch fully-connected network — Branch 1
//! estimates the current SoC from `(V, I, T)`, Branch 2 predicts the SoC a
//! horizon `N` into the future from the expected workload — and (ii) a
//! physics-informed training loss that adds the Coulomb-counting equation
//! over randomly generated, label-free conditions, which makes the predictor
//! generalize across horizons it never saw in the data.
//!
//! ## Crate map
//!
//! | Module | Paper section |
//! |---|---|
//! | [`model`] | §III-A: the two-branch architecture (2,322 parameters), plus the batched serving API ([`SocModel::predict_batch`], [`BatchScratch`]) behind `pinnsoc-fleet` |
//! | [`train`] | §III-B: split training + Eq. 2 physics loss, decomposed into batcher / objective / epoch loop, plus pool-parallel [`train_many`] and warm-start fine-tuning ([`train_from`], behind `pinnsoc-adapt`) |
//! | [`config`] | the six variants of Figs. 3–4 |
//! | [`eval`] | MAE metrics of Figs. 3–4 and Table I |
//! | [`rollout`] | Fig. 2 / Fig. 5: autoregressive multi-step prediction |
//! | [`baselines`] | Table I: LSTM \[17\], DE-MLP / DE-LSTM \[7\] |
//! | [`ensemble`] | §III-B's SoH extension following \[26\] |
//!
//! The fleet-scale serving layer on top of this crate lives in
//! `pinnsoc-fleet`: sharded per-cell state, micro-batched forward passes
//! (bit-exact with the scalar paths here), and hot-swappable models.
//!
//! ## Quick example
//!
//! ```no_run
//! use pinnsoc::{train, PinnVariant, TrainConfig};
//! use pinnsoc_data::{generate_lg, LgConfig};
//!
//! let dataset = generate_lg(&LgConfig::default());
//! let config = TrainConfig::lg(PinnVariant::pinn_all(&[30.0, 50.0, 70.0]), 42);
//! let (model, report) = train(&dataset, &config);
//! println!("trained {} ({} params)", model.label, model.param_count());
//! let soc_in_70s = model.predict(3.9, 2.5, 25.0, 3.0, 25.0, 70.0);
//! println!("SoC in 70 s under a 1C load: {soc_in_70s:.3}");
//! # let _ = report;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod config;
pub mod ensemble;
pub mod eval;
pub mod model;
pub mod quantized;
pub mod rollout;
pub mod train;
pub mod trainer;

pub use baselines::{LstmBaselineConfig, LstmEstimator, MlpBaselineConfig, MlpEstimator};
pub use config::{PinnVariant, TrainConfig};
pub use ensemble::SohEnsemble;
pub use eval::{eval_estimation, eval_prediction, eval_prediction_oracle_soc, EvalReport};
pub use model::{
    BatchScratch, Branch1, Branch2, Branch2Features, PredictQuery, SecondStage, SocModel,
    HIDDEN_WIDTHS,
};
pub use quantized::{model_fingerprint, QuantBatchScratch, QuantizeError, QuantizedSocModel};
// Re-exported so quantization callers can build calibration matrices
// without depending on `pinnsoc-nn` directly.
pub use pinnsoc_nn::Matrix;
pub use rollout::{autoregressive_rollout, Rollout};
pub use train::{
    train, train_from, train_from_with, train_many, train_many_with, TrainReport, TrainTask,
};
