//! The paper's two-branch network (§III-A) and its Physics-Only sibling.
//!
//! Branch 1 estimates the instantaneous SoC from sensor readings; Branch 2
//! rolls the SoC forward under a described workload. Both branches are
//! inverted-bottleneck MLPs (hidden widths 16/32/16, ReLU, linear scalar
//! output), totalling 2,322 parameters.

use pinnsoc_data::Normalizer;
use pinnsoc_nn::{Account, Activation, CostReport, Init, Matrix, Mlp};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hidden layer widths shared by both branches (§III-A).
pub const HIDDEN_WIDTHS: [usize; 3] = [16, 32, 16];

/// Branch 1: `(V, I, T) → SoC(t)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Branch1 {
    net: Mlp,
    norm: Normalizer,
}

impl Branch1 {
    /// Creates an untrained Branch 1 with the given input normalizer
    /// (fit on training features `(V, I, T)`).
    ///
    /// # Panics
    ///
    /// Panics if the normalizer width is not 3.
    pub fn new(norm: Normalizer, rng: &mut impl Rng) -> Self {
        assert_eq!(norm.width(), 3, "Branch 1 expects (V, I, T) normalization");
        let widths = [3, HIDDEN_WIDTHS[0], HIDDEN_WIDTHS[1], HIDDEN_WIDTHS[2], 1];
        Self { net: Mlp::new(&widths, Activation::Relu, Init::HeNormal, rng), norm }
    }

    /// Normalized feature row for one measurement.
    pub fn features(&self, voltage_v: f64, current_a: f64, temperature_c: f64) -> [f32; 3] {
        let row = self.norm.normalized(&[voltage_v, current_a, temperature_c]);
        [row[0] as f32, row[1] as f32, row[2] as f32]
    }

    /// Estimates SoC from one sensor reading.
    pub fn estimate(&self, voltage_v: f64, current_a: f64, temperature_c: f64) -> f64 {
        let f = self.features(voltage_v, current_a, temperature_c);
        self.net.infer_scalar(&f) as f64
    }

    /// The underlying network (for training and accounting).
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// Mutable access for the trainer.
    pub(crate) fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Builds the normalized feature matrix for a batch of raw rows.
    pub fn feature_matrix(&self, rows: &[[f64; 3]]) -> Matrix {
        assert!(!rows.is_empty(), "empty batch");
        let mut data = Vec::with_capacity(rows.len() * 3);
        for r in rows {
            let n = self.norm.normalized(r);
            data.extend(n.iter().map(|&x| x as f32));
        }
        Matrix::from_vec(rows.len(), 3, data)
    }
}

/// Branch 2: `(SoC(t), Ī, T̄, N) → SoC(t+N)`.
///
/// SoC enters unnormalized (it is already a fraction); current and
/// temperature are z-scored; the horizon is divided by `horizon_scale_s`
/// so multiples of the data horizon land on comparable magnitudes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Branch2 {
    net: Mlp,
    /// Normalizer over `(Ī, T̄)`.
    norm_it: Normalizer,
    horizon_scale_s: f64,
}

impl Branch2 {
    /// Creates an untrained Branch 2.
    ///
    /// # Panics
    ///
    /// Panics if the normalizer width is not 2 or the horizon scale is not
    /// positive.
    pub fn new(norm_it: Normalizer, horizon_scale_s: f64, rng: &mut impl Rng) -> Self {
        assert_eq!(norm_it.width(), 2, "Branch 2 expects (Ī, T̄) normalization");
        assert!(horizon_scale_s > 0.0, "horizon scale must be positive");
        let widths = [4, HIDDEN_WIDTHS[0], HIDDEN_WIDTHS[1], HIDDEN_WIDTHS[2], 1];
        Self {
            net: Mlp::new(&widths, Activation::Relu, Init::HeNormal, rng),
            norm_it,
            horizon_scale_s,
        }
    }

    /// Normalized feature row for one prediction query.
    pub fn features(
        &self,
        soc_now: f64,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
    ) -> [f32; 4] {
        let it = self.norm_it.normalized(&[avg_current_a, avg_temperature_c]);
        [
            soc_now as f32,
            it[0] as f32,
            it[1] as f32,
            (horizon_s / self.horizon_scale_s) as f32,
        ]
    }

    /// Predicts `SoC(t+N)` for one query. Output is unrestricted, as in the
    /// paper (autoregressive rollouts may legitimately overshoot `[0, 1]`).
    pub fn predict(
        &self,
        soc_now: f64,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
    ) -> f64 {
        let f = self.features(soc_now, avg_current_a, avg_temperature_c, horizon_s);
        self.net.infer_scalar(&f) as f64
    }

    /// The underlying network (for training and accounting).
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// Mutable access for the trainer.
    pub(crate) fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Builds the normalized feature matrix for a batch of raw
    /// `(soc, Ī, T̄, N)` rows.
    pub fn feature_matrix(&self, rows: &[[f64; 4]]) -> Matrix {
        assert!(!rows.is_empty(), "empty batch");
        let mut data = Vec::with_capacity(rows.len() * 4);
        for r in rows {
            let f = self.features(r[0], r[1], r[2], r[3]);
            data.extend_from_slice(&f);
        }
        Matrix::from_vec(rows.len(), 4, data)
    }
}

/// The second stage of a trained model: either the neural Branch 2 or the
/// raw Coulomb-counting equation (the paper's *Physics-Only* configuration).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SecondStage {
    /// Neural predictor (No-PINN and all PINN variants).
    Network(Branch2),
    /// Closed-form Coulomb counting with the rated capacity (Physics-Only).
    Coulomb {
        /// Rated capacity `C_rated`, amp-hours.
        capacity_ah: f64,
    },
}

impl SecondStage {
    /// Predicts `SoC(t+N)` for one query.
    pub fn predict(
        &self,
        soc_now: f64,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
    ) -> f64 {
        match self {
            SecondStage::Network(b2) => {
                b2.predict(soc_now, avg_current_a, avg_temperature_c, horizon_s)
            }
            SecondStage::Coulomb { capacity_ah } => {
                // Unsaturated form: the paper's Physics-Only rollouts also
                // drift outside [0, 1] (Fig. 5).
                soc_now - avg_current_a * horizon_s / (3600.0 * capacity_ah)
            }
        }
    }
}

/// A fully trained SoC model: Branch 1 plus a second stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SocModel {
    /// Estimator branch.
    pub branch1: Branch1,
    /// Predictor stage.
    pub stage2: SecondStage,
    /// Human-readable variant label ("No-PINN", "PINN-All", ...).
    pub label: String,
}

impl SocModel {
    /// Estimates the instantaneous SoC from sensor readings (Branch 1 only).
    pub fn estimate(&self, voltage_v: f64, current_a: f64, temperature_c: f64) -> f64 {
        self.branch1.estimate(voltage_v, current_a, temperature_c)
    }

    /// Full pipeline: estimate SoC at `t` from sensors, then predict
    /// `SoC(t+N)` under the described workload.
    #[allow(clippy::too_many_arguments)]
    pub fn predict(
        &self,
        voltage_v: f64,
        current_a: f64,
        temperature_c: f64,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
    ) -> f64 {
        let soc_now = self.estimate(voltage_v, current_a, temperature_c);
        self.stage2.predict(soc_now, avg_current_a, avg_temperature_c, horizon_s)
    }

    /// Predicts `SoC(t+N)` from an already-known current SoC (used in
    /// autoregressive rollouts after the first step).
    pub fn predict_from(
        &self,
        soc_now: f64,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
    ) -> f64 {
        self.stage2.predict(soc_now, avg_current_a, avg_temperature_c, horizon_s)
    }

    /// Trainable parameter count of the whole model.
    pub fn param_count(&self) -> usize {
        let b2 = match &self.stage2 {
            SecondStage::Network(b2) => b2.net().param_count(),
            SecondStage::Coulomb { .. } => 0,
        };
        self.branch1.net().param_count() + b2
    }

    /// Inference cost of one full-pipeline query.
    pub fn cost(&self) -> CostReport {
        let b1 = self.branch1.net().cost();
        let b2 = match &self.stage2 {
            SecondStage::Network(b2) => b2.net().cost(),
            SecondStage::Coulomb { .. } => CostReport { params: 0, macs: 2, memory_bytes: 8 },
        };
        CostReport {
            params: b1.params + b2.params,
            macs: b1.macs + b2.macs,
            memory_bytes: b1.memory_bytes + b2.memory_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn norm3() -> Normalizer {
        let rows: Vec<Vec<f64>> = vec![vec![3.0, 0.0, 20.0], vec![4.2, 9.0, 30.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Normalizer::fit(refs.iter().copied())
    }

    fn norm2() -> Normalizer {
        let rows: Vec<Vec<f64>> = vec![vec![0.0, 20.0], vec![9.0, 30.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Normalizer::fit(refs.iter().copied())
    }

    fn model() -> SocModel {
        let mut rng = StdRng::seed_from_u64(0);
        SocModel {
            branch1: Branch1::new(norm3(), &mut rng),
            stage2: SecondStage::Network(Branch2::new(norm2(), 120.0, &mut rng)),
            label: "test".into(),
        }
    }

    #[test]
    fn paper_parameter_count() {
        assert_eq!(model().param_count(), 2322);
    }

    #[test]
    fn paper_memory_and_ops() {
        let cost = model().cost();
        assert_eq!(cost.params, 2322);
        assert_eq!(cost.memory_bytes, 9288); // ≈9 kB, §III-A
        // MACs per full query ≈ 2·1150 (Table I counts one branch ≈ 1150).
        assert!(cost.macs > 2000 && cost.macs < 2500, "macs {}", cost.macs);
    }

    #[test]
    fn physics_only_has_no_stage2_params() {
        let mut m = model();
        m.stage2 = SecondStage::Coulomb { capacity_ah: 3.0 };
        assert_eq!(m.param_count(), 1153);
    }

    #[test]
    fn coulomb_stage_matches_equation() {
        let stage = SecondStage::Coulomb { capacity_ah: 3.0 };
        // 1 A for one hour on a 3 Ah cell = 1/3 of the capacity.
        let next = stage.predict(0.5, 1.0, 25.0, 3600.0);
        assert!((next - (0.5 - 1.0 / 3.0)).abs() < 1e-12);
        // And it may exceed [0, 1] — intentionally unsaturated.
        assert!(stage.predict(0.1, 30.0, 25.0, 3600.0) < 0.0);
    }

    #[test]
    fn horizon_scaling_in_features() {
        let mut rng = StdRng::seed_from_u64(1);
        let b2 = Branch2::new(norm2(), 120.0, &mut rng);
        let f = b2.features(0.8, 4.5, 25.0, 240.0);
        assert!((f[3] - 2.0).abs() < 1e-6);
        assert!((f[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn feature_matrix_matches_single_features() {
        let mut rng = StdRng::seed_from_u64(2);
        let b1 = Branch1::new(norm3(), &mut rng);
        let m = b1.feature_matrix(&[[3.7, 2.0, 25.0], [3.5, 1.0, 22.0]]);
        assert_eq!(m.shape(), (2, 3));
        let single = b1.features(3.7, 2.0, 25.0);
        assert_eq!(m.row(0), &single);
    }

    #[test]
    fn predict_pipeline_consistency() {
        let m = model();
        let soc_hat = m.estimate(3.8, 2.0, 25.0);
        let via_pipeline = m.predict(3.8, 2.0, 25.0, 3.0, 25.0, 120.0);
        let via_two_calls = m.predict_from(soc_hat, 3.0, 25.0, 120.0);
        assert!((via_pipeline - via_two_calls).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip_preserves_outputs() {
        let m = model();
        let json = serde_json::to_string(&m).unwrap();
        let m2: SocModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m.estimate(3.7, 1.0, 25.0), m2.estimate(3.7, 1.0, 25.0));
        assert_eq!(m.predict_from(0.5, 2.0, 25.0, 60.0), m2.predict_from(0.5, 2.0, 25.0, 60.0));
    }
}
