//! The paper's two-branch network (§III-A) and its Physics-Only sibling.
//!
//! Branch 1 estimates the instantaneous SoC from sensor readings; Branch 2
//! rolls the SoC forward under a described workload. Both branches are
//! inverted-bottleneck MLPs (hidden widths 16/32/16, ReLU, linear scalar
//! output), totalling 2,322 parameters.

use pinnsoc_data::Normalizer;
use pinnsoc_nn::{Account, Activation, CostReport, InferScratch, Init, Matrix, Mlp};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hidden layer widths shared by both branches (§III-A).
pub const HIDDEN_WIDTHS: [usize; 3] = [16, 32, 16];

/// Branch 1: `(V, I, T) → SoC(t)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Branch1 {
    net: Mlp,
    norm: Normalizer,
}

impl Branch1 {
    /// Creates an untrained Branch 1 with the given input normalizer
    /// (fit on training features `(V, I, T)`).
    ///
    /// # Panics
    ///
    /// Panics if the normalizer width is not 3.
    pub fn new(norm: Normalizer, rng: &mut impl Rng) -> Self {
        assert_eq!(norm.width(), 3, "Branch 1 expects (V, I, T) normalization");
        let widths = [3, HIDDEN_WIDTHS[0], HIDDEN_WIDTHS[1], HIDDEN_WIDTHS[2], 1];
        Self {
            net: Mlp::new(&widths, Activation::Relu, Init::HeNormal, rng),
            norm,
        }
    }

    /// Normalized feature row for one measurement (allocation-free: the
    /// batched serving path calls this once per cell).
    pub fn features(&self, voltage_v: f64, current_a: f64, temperature_c: f64) -> [f32; 3] {
        let mut row = [voltage_v, current_a, temperature_c];
        self.norm.normalize(&mut row);
        [row[0] as f32, row[1] as f32, row[2] as f32]
    }

    /// The input normalizer's `(means, stds)` over `(V, I, T)`, for batched
    /// gather loops that hoist the constants and apply `(x − mean) / std`
    /// inline — the same operation sequence as [`Self::features`], so the
    /// hoisted form stays bit-identical.
    pub fn norm_stats(&self) -> (&[f64], &[f64]) {
        self.norm.stats()
    }

    /// Estimates SoC from one sensor reading.
    pub fn estimate(&self, voltage_v: f64, current_a: f64, temperature_c: f64) -> f64 {
        let f = self.features(voltage_v, current_a, temperature_c);
        self.net.infer_scalar(&f) as f64
    }

    /// The underlying network (for training and accounting).
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// Mutable access for the trainer.
    pub(crate) fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Builds the normalized feature matrix for a batch of raw rows.
    pub fn feature_matrix(&self, rows: &[[f64; 3]]) -> Matrix {
        assert!(!rows.is_empty(), "empty batch");
        let mut data = Vec::with_capacity(rows.len() * 3);
        for r in rows {
            let n = self.norm.normalized(r);
            data.extend(n.iter().map(|&x| x as f32));
        }
        Matrix::from_vec(rows.len(), 3, data)
    }
}

/// Branch 2: `(SoC(t), Ī, T̄, N) → SoC(t+N)`.
///
/// SoC enters unnormalized (it is already a fraction); current and
/// temperature are z-scored; the horizon is divided by `horizon_scale_s`
/// so multiples of the data horizon land on comparable magnitudes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Branch2 {
    net: Mlp,
    /// Normalizer over `(Ī, T̄)`.
    norm_it: Normalizer,
    horizon_scale_s: f64,
}

impl Branch2 {
    /// Creates an untrained Branch 2.
    ///
    /// # Panics
    ///
    /// Panics if the normalizer width is not 2 or the horizon scale is not
    /// positive.
    pub fn new(norm_it: Normalizer, horizon_scale_s: f64, rng: &mut impl Rng) -> Self {
        assert_eq!(norm_it.width(), 2, "Branch 2 expects (Ī, T̄) normalization");
        assert!(horizon_scale_s > 0.0, "horizon scale must be positive");
        let widths = [4, HIDDEN_WIDTHS[0], HIDDEN_WIDTHS[1], HIDDEN_WIDTHS[2], 1];
        Self {
            net: Mlp::new(&widths, Activation::Relu, Init::HeNormal, rng),
            norm_it,
            horizon_scale_s,
        }
    }

    /// Normalized feature row for one prediction query (allocation-free:
    /// the batched serving path calls this once per cell).
    pub fn features(
        &self,
        soc_now: f64,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
    ) -> [f32; 4] {
        b2_feature_row(
            &self.norm_it,
            self.horizon_scale_s,
            soc_now,
            avg_current_a,
            avg_temperature_c,
            horizon_s,
        )
    }

    /// A cloneable snapshot of this branch's featurization (normalizer +
    /// horizon scale). The training objective featurizes physics batches
    /// through this while holding the branch's network mutably; both paths
    /// share [`b2_feature_row`], so the rows are bit-identical.
    pub fn featurizer(&self) -> Branch2Features {
        Branch2Features {
            norm_it: self.norm_it.clone(),
            horizon_scale_s: self.horizon_scale_s,
        }
    }

    /// Precomputed feature tail shared by every query of one uniform
    /// workload: `(normalized Ī, normalized T̄, scaled N)`. A batch over a
    /// fleet-wide workload normalizes these once instead of per cell; the
    /// values are identical to what [`Branch2::features`] computes, so the
    /// batched path stays bit-exact with the scalar one.
    pub fn uniform_workload(
        &self,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
    ) -> [f32; 3] {
        let mut it = [avg_current_a, avg_temperature_c];
        self.norm_it.normalize(&mut it);
        [
            it[0] as f32,
            it[1] as f32,
            (horizon_s / self.horizon_scale_s) as f32,
        ]
    }

    /// Predicts `SoC(t+N)` for one query. Output is unrestricted, as in the
    /// paper (autoregressive rollouts may legitimately overshoot `[0, 1]`).
    pub fn predict(
        &self,
        soc_now: f64,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
    ) -> f64 {
        let f = self.features(soc_now, avg_current_a, avg_temperature_c, horizon_s);
        self.net.infer_scalar(&f) as f64
    }

    /// The underlying network (for training and accounting).
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// Mutable access for the trainer.
    pub(crate) fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Builds the normalized feature matrix for a batch of raw
    /// `(soc, Ī, T̄, N)` rows.
    pub fn feature_matrix(&self, rows: &[[f64; 4]]) -> Matrix {
        assert!(!rows.is_empty(), "empty batch");
        let mut data = Vec::with_capacity(rows.len() * 4);
        for r in rows {
            let f = self.features(r[0], r[1], r[2], r[3]);
            data.extend_from_slice(&f);
        }
        Matrix::from_vec(rows.len(), 4, data)
    }
}

/// The one place Branch-2 feature rows are computed: `(SoC, Ī, T̄, N)` with
/// SoC raw, current/temperature z-scored, and the horizon divided by the
/// scale. [`Branch2::features`] and [`Branch2Features::features`] both
/// delegate here, so the training-time physics featurization can never
/// drift from the serving path.
fn b2_feature_row(
    norm_it: &Normalizer,
    horizon_scale_s: f64,
    soc_now: f64,
    avg_current_a: f64,
    avg_temperature_c: f64,
    horizon_s: f64,
) -> [f32; 4] {
    let mut it = [avg_current_a, avg_temperature_c];
    norm_it.normalize(&mut it);
    [
        soc_now as f32,
        it[0] as f32,
        it[1] as f32,
        (horizon_s / horizon_scale_s) as f32,
    ]
}

/// A detached [`Branch2`] featurization context (see
/// [`Branch2::featurizer`]).
#[derive(Debug, Clone)]
pub struct Branch2Features {
    norm_it: Normalizer,
    horizon_scale_s: f64,
}

impl Branch2Features {
    /// Normalized feature row for one prediction query — identical values
    /// to [`Branch2::features`] on the branch this was taken from.
    pub fn features(
        &self,
        soc_now: f64,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
    ) -> [f32; 4] {
        b2_feature_row(
            &self.norm_it,
            self.horizon_scale_s,
            soc_now,
            avg_current_a,
            avg_temperature_c,
            horizon_s,
        )
    }
}

/// The second stage of a trained model: either the neural Branch 2 or the
/// raw Coulomb-counting equation (the paper's *Physics-Only* configuration).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SecondStage {
    /// Neural predictor (No-PINN and all PINN variants).
    Network(Branch2),
    /// Closed-form Coulomb counting with the rated capacity (Physics-Only).
    Coulomb {
        /// Rated capacity `C_rated`, amp-hours.
        capacity_ah: f64,
    },
}

impl SecondStage {
    /// Predicts `SoC(t+N)` for one query.
    pub fn predict(
        &self,
        soc_now: f64,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
    ) -> f64 {
        match self {
            SecondStage::Network(b2) => {
                b2.predict(soc_now, avg_current_a, avg_temperature_c, horizon_s)
            }
            SecondStage::Coulomb { capacity_ah } => {
                // Unsaturated form: the paper's Physics-Only rollouts also
                // drift outside [0, 1] (Fig. 5).
                soc_now - avg_current_a * horizon_s / (3600.0 * capacity_ah)
            }
        }
    }
}

/// One full-pipeline prediction query: the instantaneous sensor reading
/// plus the described future workload (the inputs of [`SocModel::predict`],
/// as one batchable value).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictQuery {
    /// Terminal voltage now, volts.
    pub voltage_v: f64,
    /// Current now, amps (positive = discharge).
    pub current_a: f64,
    /// Cell temperature now, °C.
    pub temperature_c: f64,
    /// Expected average current over the horizon, amps.
    pub avg_current_a: f64,
    /// Expected average temperature over the horizon, °C.
    pub avg_temperature_c: f64,
    /// Prediction horizon `N`, seconds.
    pub horizon_s: f64,
}

/// Reusable buffers for the batched [`SocModel`] paths. Keep one per
/// serving thread: steady-state batched queries then allocate nothing
/// beyond the output vector the caller provides.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    features: Option<Matrix>,
    net: InferScratch,
    soc_now: Vec<f64>,
}

impl BatchScratch {
    /// Reusable feature buffer; contents are unspecified — every caller
    /// assigns all `rows × cols` elements before the forward pass.
    fn features_buffer(&mut self, rows: usize, cols: usize) -> &mut Matrix {
        let m = self.features.get_or_insert_with(|| Matrix::zeros(1, 1));
        m.reset_for_overwrite(rows, cols);
        m
    }
}

/// A fully trained SoC model: Branch 1 plus a second stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SocModel {
    /// Estimator branch.
    pub branch1: Branch1,
    /// Predictor stage.
    pub stage2: SecondStage,
    /// Human-readable variant label ("No-PINN", "PINN-All", ...).
    pub label: String,
}

impl SocModel {
    /// Estimates the instantaneous SoC from sensor readings (Branch 1 only).
    pub fn estimate(&self, voltage_v: f64, current_a: f64, temperature_c: f64) -> f64 {
        self.branch1.estimate(voltage_v, current_a, temperature_c)
    }

    /// Full pipeline: estimate SoC at `t` from sensors, then predict
    /// `SoC(t+N)` under the described workload.
    #[allow(clippy::too_many_arguments)]
    pub fn predict(
        &self,
        voltage_v: f64,
        current_a: f64,
        temperature_c: f64,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
    ) -> f64 {
        let soc_now = self.estimate(voltage_v, current_a, temperature_c);
        self.stage2
            .predict(soc_now, avg_current_a, avg_temperature_c, horizon_s)
    }

    /// Predicts `SoC(t+N)` from an already-known current SoC (used in
    /// autoregressive rollouts after the first step).
    pub fn predict_from(
        &self,
        soc_now: f64,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
    ) -> f64 {
        self.stage2
            .predict(soc_now, avg_current_a, avg_temperature_c, horizon_s)
    }

    /// Batched Branch-1 estimation: one GEMM per layer over the whole batch
    /// of `(V, I, T)` readings instead of one tiny GEMM per cell.
    ///
    /// Appends one estimate per reading to `out`. Outputs are bit-exact
    /// with calling [`SocModel::estimate`] per reading (the batched network
    /// path accumulates in the same order per row).
    pub fn estimate_batch_into(
        &self,
        readings: &[[f64; 3]],
        scratch: &mut BatchScratch,
        out: &mut Vec<f64>,
    ) {
        if readings.is_empty() {
            return;
        }
        let features = scratch.features_buffer(readings.len(), 3);
        for (r, reading) in readings.iter().enumerate() {
            let f = self.branch1.features(reading[0], reading[1], reading[2]);
            features.row_mut(r).copy_from_slice(&f);
        }
        // Split borrow: `features` lives in `scratch.features`, the network
        // scratch in `scratch.net`.
        let estimates = self
            .branch1
            .net()
            .forward_batch_fused(scratch.features.as_ref().expect("built"), &mut scratch.net);
        out.extend(estimates.as_slice().iter().map(|&soc| soc as f64));
    }

    /// Batched Branch-1 estimation over an **already normalized** feature
    /// matrix (`batch × 3`, rows built with [`Branch1::features`]). This is
    /// the serving engines' gather-then-GEMM split: the caller scatters
    /// features straight from its own cell-state layout into the matrix, and
    /// this call runs only the fused network pass — letting the engine
    /// account gather and GEMM time separately and skip the intermediate
    /// `[[f64; 3]]` staging of [`SocModel::estimate_batch_into`].
    ///
    /// Appends one estimate per row to `out`; bit-exact with per-row
    /// [`SocModel::estimate`] on the raw readings the features came from.
    ///
    /// # Panics
    ///
    /// Panics if `features.cols() != 3`.
    pub fn estimate_features_into(
        &self,
        features: &Matrix,
        scratch: &mut BatchScratch,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(features.cols(), 3, "Branch 1 features are (V, I, T)");
        let estimates = self
            .branch1
            .net()
            .forward_batch_fused(features, &mut scratch.net);
        out.extend(estimates.as_slice().iter().map(|&soc| soc as f64));
    }

    /// Batched full-pipeline prediction for one **uniform workload**: every
    /// row shares `(Ī, T̄, N)`, so the workload tail of the Branch-2
    /// features is normalized once ([`Branch2::uniform_workload`]) instead
    /// of per cell. `features` is the normalized `batch × 3` Branch-1
    /// input, as in [`SocModel::estimate_features_into`].
    ///
    /// Appends one predicted SoC per row to `out`; bit-exact with per-row
    /// [`SocModel::predict`] under the same workload.
    ///
    /// # Panics
    ///
    /// Panics if `features.cols() != 3`.
    pub fn predict_uniform_into(
        &self,
        features: &Matrix,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
        scratch: &mut BatchScratch,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(features.cols(), 3, "Branch 1 features are (V, I, T)");
        let rows = features.rows();
        {
            let estimates = self
                .branch1
                .net()
                .forward_batch_fused(features, &mut scratch.net);
            scratch.soc_now.clear();
            scratch
                .soc_now
                .extend(estimates.as_slice().iter().map(|&soc| soc as f64));
        }
        let soc_now = std::mem::take(&mut scratch.soc_now);
        match &self.stage2 {
            SecondStage::Network(b2) => {
                let tail = b2.uniform_workload(avg_current_a, avg_temperature_c, horizon_s);
                let b2_features = scratch.features_buffer(rows, 4);
                for (r, &soc) in soc_now.iter().enumerate() {
                    let row = b2_features.row_mut(r);
                    row[0] = soc as f32;
                    row[1..].copy_from_slice(&tail);
                }
                let preds = b2.net().forward_batch_fused(
                    scratch.features.as_ref().expect("built"),
                    &mut scratch.net,
                );
                out.extend(preds.as_slice().iter().map(|&soc| soc as f64));
            }
            stage @ SecondStage::Coulomb { .. } => {
                out.extend(
                    soc_now.iter().map(|&soc| {
                        stage.predict(soc, avg_current_a, avg_temperature_c, horizon_s)
                    }),
                );
            }
        }
        scratch.soc_now = soc_now;
    }

    /// Allocating convenience wrapper over [`SocModel::estimate_batch_into`].
    pub fn estimate_batch(&self, readings: &[[f64; 3]]) -> Vec<f64> {
        let mut scratch = BatchScratch::default();
        let mut out = Vec::with_capacity(readings.len());
        self.estimate_batch_into(readings, &mut scratch, &mut out);
        out
    }

    /// Batched full-pipeline prediction: Branch-1 estimates for the whole
    /// batch in one matrix pass, then the second stage rolls every cell
    /// forward (one matrix pass for neural Branch 2, closed form for
    /// Coulomb).
    ///
    /// Appends one predicted SoC per query to `out`. Outputs are bit-exact
    /// with calling [`SocModel::predict`] per query.
    pub fn predict_batch_into(
        &self,
        queries: &[PredictQuery],
        scratch: &mut BatchScratch,
        out: &mut Vec<f64>,
    ) {
        if queries.is_empty() {
            return;
        }
        // Stage 1: batched estimation.
        let features = scratch.features_buffer(queries.len(), 3);
        for (r, q) in queries.iter().enumerate() {
            let f = self
                .branch1
                .features(q.voltage_v, q.current_a, q.temperature_c);
            features.row_mut(r).copy_from_slice(&f);
        }
        {
            let estimates = self
                .branch1
                .net()
                .forward_batch_fused(scratch.features.as_ref().expect("built"), &mut scratch.net);
            scratch.soc_now.clear();
            scratch
                .soc_now
                .extend(estimates.as_slice().iter().map(|&soc| soc as f64));
        }
        // Stage 2: batched rollforward. `soc_now` is moved out of the
        // scratch (and back afterwards) so the feature buffer can be
        // borrowed mutably alongside it.
        let soc_now = std::mem::take(&mut scratch.soc_now);
        match &self.stage2 {
            SecondStage::Network(b2) => {
                let features = scratch.features_buffer(queries.len(), 4);
                for (r, (q, &soc)) in queries.iter().zip(&soc_now).enumerate() {
                    let f = b2.features(soc, q.avg_current_a, q.avg_temperature_c, q.horizon_s);
                    features.row_mut(r).copy_from_slice(&f);
                }
                let preds = b2.net().forward_batch_fused(
                    scratch.features.as_ref().expect("built"),
                    &mut scratch.net,
                );
                out.extend(preds.as_slice().iter().map(|&soc| soc as f64));
            }
            stage @ SecondStage::Coulomb { .. } => {
                out.extend(queries.iter().zip(&soc_now).map(|(q, &soc)| {
                    stage.predict(soc, q.avg_current_a, q.avg_temperature_c, q.horizon_s)
                }));
            }
        }
        scratch.soc_now = soc_now;
    }

    /// Allocating convenience wrapper over [`SocModel::predict_batch_into`].
    pub fn predict_batch(&self, queries: &[PredictQuery]) -> Vec<f64> {
        let mut scratch = BatchScratch::default();
        let mut out = Vec::with_capacity(queries.len());
        self.predict_batch_into(queries, &mut scratch, &mut out);
        out
    }

    /// Trainable parameter count of the whole model.
    pub fn param_count(&self) -> usize {
        let b2 = match &self.stage2 {
            SecondStage::Network(b2) => b2.net().param_count(),
            SecondStage::Coulomb { .. } => 0,
        };
        self.branch1.net().param_count() + b2
    }

    /// Inference cost of one full-pipeline query.
    pub fn cost(&self) -> CostReport {
        let b1 = self.branch1.net().cost();
        let b2 = match &self.stage2 {
            SecondStage::Network(b2) => b2.net().cost(),
            SecondStage::Coulomb { .. } => CostReport {
                params: 0,
                macs: 2,
                memory_bytes: 8,
            },
        };
        CostReport {
            params: b1.params + b2.params,
            macs: b1.macs + b2.macs,
            memory_bytes: b1.memory_bytes + b2.memory_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn norm3() -> Normalizer {
        let rows: Vec<Vec<f64>> = vec![vec![3.0, 0.0, 20.0], vec![4.2, 9.0, 30.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Normalizer::fit(refs.iter().copied())
    }

    fn norm2() -> Normalizer {
        let rows: Vec<Vec<f64>> = vec![vec![0.0, 20.0], vec![9.0, 30.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Normalizer::fit(refs.iter().copied())
    }

    fn model() -> SocModel {
        let mut rng = StdRng::seed_from_u64(0);
        SocModel {
            branch1: Branch1::new(norm3(), &mut rng),
            stage2: SecondStage::Network(Branch2::new(norm2(), 120.0, &mut rng)),
            label: "test".into(),
        }
    }

    #[test]
    fn paper_parameter_count() {
        assert_eq!(model().param_count(), 2322);
    }

    #[test]
    fn paper_memory_and_ops() {
        let cost = model().cost();
        assert_eq!(cost.params, 2322);
        assert_eq!(cost.memory_bytes, 9288); // ≈9 kB, §III-A
                                             // MACs per full query ≈ 2·1150 (Table I counts one branch ≈ 1150).
        assert!(cost.macs > 2000 && cost.macs < 2500, "macs {}", cost.macs);
    }

    #[test]
    fn physics_only_has_no_stage2_params() {
        let mut m = model();
        m.stage2 = SecondStage::Coulomb { capacity_ah: 3.0 };
        assert_eq!(m.param_count(), 1153);
    }

    #[test]
    fn coulomb_stage_matches_equation() {
        let stage = SecondStage::Coulomb { capacity_ah: 3.0 };
        // 1 A for one hour on a 3 Ah cell = 1/3 of the capacity.
        let next = stage.predict(0.5, 1.0, 25.0, 3600.0);
        assert!((next - (0.5 - 1.0 / 3.0)).abs() < 1e-12);
        // And it may exceed [0, 1] — intentionally unsaturated.
        assert!(stage.predict(0.1, 30.0, 25.0, 3600.0) < 0.0);
    }

    #[test]
    fn horizon_scaling_in_features() {
        let mut rng = StdRng::seed_from_u64(1);
        let b2 = Branch2::new(norm2(), 120.0, &mut rng);
        let f = b2.features(0.8, 4.5, 25.0, 240.0);
        assert!((f[3] - 2.0).abs() < 1e-6);
        assert!((f[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn feature_matrix_matches_single_features() {
        let mut rng = StdRng::seed_from_u64(2);
        let b1 = Branch1::new(norm3(), &mut rng);
        let m = b1.feature_matrix(&[[3.7, 2.0, 25.0], [3.5, 1.0, 22.0]]);
        assert_eq!(m.shape(), (2, 3));
        let single = b1.features(3.7, 2.0, 25.0);
        assert_eq!(m.row(0), &single);
    }

    #[test]
    fn predict_pipeline_consistency() {
        let m = model();
        let soc_hat = m.estimate(3.8, 2.0, 25.0);
        let via_pipeline = m.predict(3.8, 2.0, 25.0, 3.0, 25.0, 120.0);
        let via_two_calls = m.predict_from(soc_hat, 3.0, 25.0, 120.0);
        assert!((via_pipeline - via_two_calls).abs() < 1e-12);
    }

    #[test]
    fn estimate_batch_is_bitwise_identical_to_scalar_loop() {
        let m = model();
        let readings: Vec<[f64; 3]> = (0..64)
            .map(|i| {
                let t = i as f64 / 63.0;
                [3.0 + 1.2 * t, 9.0 * t - 1.0, 20.0 + 10.0 * t]
            })
            .collect();
        let batch = m.estimate_batch(&readings);
        assert_eq!(batch.len(), readings.len());
        for (b, r) in batch.iter().zip(&readings) {
            let scalar = m.estimate(r[0], r[1], r[2]);
            assert_eq!(b.to_bits(), scalar.to_bits(), "{b} vs {scalar}");
        }
    }

    #[test]
    fn predict_batch_is_bitwise_identical_to_scalar_loop() {
        for stage2 in [
            SecondStage::Network(Branch2::new(norm2(), 120.0, &mut StdRng::seed_from_u64(3))),
            SecondStage::Coulomb { capacity_ah: 3.0 },
        ] {
            let mut m = model();
            m.stage2 = stage2;
            let queries: Vec<PredictQuery> = (0..50)
                .map(|i| {
                    let t = i as f64 / 49.0;
                    PredictQuery {
                        voltage_v: 3.1 + t,
                        current_a: 6.0 * t,
                        temperature_c: 18.0 + 14.0 * t,
                        avg_current_a: 9.0 * t - 0.5,
                        avg_temperature_c: 21.0 + 8.0 * t,
                        horizon_s: 30.0 + 330.0 * t,
                    }
                })
                .collect();
            let batch = m.predict_batch(&queries);
            for (b, q) in batch.iter().zip(&queries) {
                let scalar = m.predict(
                    q.voltage_v,
                    q.current_a,
                    q.temperature_c,
                    q.avg_current_a,
                    q.avg_temperature_c,
                    q.horizon_s,
                );
                assert_eq!(
                    b.to_bits(),
                    scalar.to_bits(),
                    "{b} vs {scalar} ({})",
                    m.label
                );
            }
        }
    }

    #[test]
    fn estimate_features_into_matches_scalar_bitwise() {
        let m = model();
        let readings: Vec<[f64; 3]> = (0..33)
            .map(|i| {
                let t = i as f64 / 32.0;
                [3.1 + t, 8.0 * t - 2.0, 18.0 + 12.0 * t]
            })
            .collect();
        let mut features = Matrix::zeros(readings.len(), 3);
        for (r, reading) in readings.iter().enumerate() {
            let f = m.branch1.features(reading[0], reading[1], reading[2]);
            features.row_mut(r).copy_from_slice(&f);
        }
        let mut scratch = BatchScratch::default();
        let mut out = Vec::new();
        m.estimate_features_into(&features, &mut scratch, &mut out);
        assert_eq!(out.len(), readings.len());
        for (b, r) in out.iter().zip(&readings) {
            let scalar = m.estimate(r[0], r[1], r[2]);
            assert_eq!(b.to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn predict_uniform_into_matches_scalar_bitwise() {
        for stage2 in [
            SecondStage::Network(Branch2::new(norm2(), 120.0, &mut StdRng::seed_from_u64(4))),
            SecondStage::Coulomb { capacity_ah: 3.0 },
        ] {
            let mut m = model();
            m.stage2 = stage2;
            let readings: Vec<[f64; 3]> = (0..41)
                .map(|i| {
                    let t = i as f64 / 40.0;
                    [3.2 + 0.9 * t, 6.0 * t, 19.0 + 13.0 * t]
                })
                .collect();
            let (avg_i, avg_t, horizon) = (2.5, 24.0, 180.0);
            let mut features = Matrix::zeros(readings.len(), 3);
            for (r, reading) in readings.iter().enumerate() {
                let f = m.branch1.features(reading[0], reading[1], reading[2]);
                features.row_mut(r).copy_from_slice(&f);
            }
            let mut scratch = BatchScratch::default();
            let mut out = Vec::new();
            m.predict_uniform_into(&features, avg_i, avg_t, horizon, &mut scratch, &mut out);
            assert_eq!(out.len(), readings.len());
            for (b, r) in out.iter().zip(&readings) {
                let scalar = m.predict(r[0], r[1], r[2], avg_i, avg_t, horizon);
                assert_eq!(b.to_bits(), scalar.to_bits(), "({})", m.label);
            }
        }
    }

    #[test]
    fn uniform_workload_matches_per_query_features() {
        let mut rng = StdRng::seed_from_u64(5);
        let b2 = Branch2::new(norm2(), 120.0, &mut rng);
        let tail = b2.uniform_workload(4.5, 25.0, 240.0);
        let full = b2.features(0.8, 4.5, 25.0, 240.0);
        assert_eq!(&full[1..], &tail);
    }

    #[test]
    fn batch_scratch_reuse_across_batch_sizes() {
        let m = model();
        let mut scratch = BatchScratch::default();
        let mut out = Vec::new();
        let big: Vec<[f64; 3]> = (0..32).map(|i| [3.5, i as f64 * 0.2, 25.0]).collect();
        m.estimate_batch_into(&big, &mut scratch, &mut out);
        let small = &big[..3];
        m.estimate_batch_into(small, &mut scratch, &mut out);
        assert_eq!(out.len(), 35);
        assert_eq!(out[32].to_bits(), out[0].to_bits());
        // Empty batches are a no-op, not a panic.
        m.estimate_batch_into(&[], &mut scratch, &mut out);
        m.predict_batch_into(&[], &mut scratch, &mut out);
        assert_eq!(out.len(), 35);
    }

    #[test]
    fn serde_roundtrip_preserves_outputs() {
        let m = model();
        let json = serde_json::to_string(&m).unwrap();
        let m2: SocModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m.estimate(3.7, 1.0, 25.0), m2.estimate(3.7, 1.0, 25.0));
        assert_eq!(
            m.predict_from(0.5, 2.0, 25.0, 60.0),
            m2.predict_from(0.5, 2.0, 25.0, 60.0)
        );
    }
}
