//! State-of-the-art baselines of Table I.
//!
//! - [`LstmEstimator`] — the deep LSTM SoC estimator of Wong et al. \[17\]
//!   (and, with `de_residual_weight > 0`, the DE-LSTM of Dang et al. \[7\]).
//! - [`MlpEstimator`] — the DE-MLP of \[7\]: a plain MLP estimator whose loss
//!   adds a differential-equation residual tying consecutive SoC outputs to
//!   the current integral.
//!
//! Both are *estimation-only* models (`SoC(t)`); the paper marks their
//! `SoC(t+N)` column "n.a.". Following §V-C, the DE baselines are trained
//! without the 30 s moving-average preprocessing — the paper credits much of
//! its accuracy edge to that preprocessing.

use crate::eval::EvalReport;
use pinnsoc_data::{estimation_samples, Cycle, Normalizer};
use pinnsoc_nn::{
    Account, Activation, Adam, CostReport, Init, Loss, Lstm, LstmQuery, Matrix, Mlp, Optimizer,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for the LSTM baselines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmBaselineConfig {
    /// Hidden width. 500 reproduces the ≈1 M-parameter / ≈4 MB scale of
    /// \[17\]; smaller widths train faster with similar MAE on our data.
    pub hidden: usize,
    /// Input window length in samples.
    pub window: usize,
    /// Training iterations (each draws `batch_size` random windows).
    pub iterations: usize,
    /// Windows per training batch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Weight of the DE residual term (0 = plain LSTM \[17\], >0 = DE-LSTM \[7\]).
    pub de_residual_weight: f32,
    /// Rated capacity for the DE residual, amp-hours.
    pub capacity_ah: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for LstmBaselineConfig {
    fn default() -> Self {
        Self {
            hidden: 48,
            window: 60,
            iterations: 400,
            batch_size: 32,
            learning_rate: 3e-3,
            de_residual_weight: 0.0,
            capacity_ah: 3.0,
            seed: 17,
        }
    }
}

/// A trained LSTM SoC estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmEstimator {
    lstm: Lstm,
    norm: Normalizer,
    window: usize,
}

impl LstmEstimator {
    /// Trains the estimator on the given cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is empty or shorter than the window.
    pub fn train(cycles: &[Cycle], config: &LstmBaselineConfig) -> Self {
        assert!(!cycles.is_empty(), "no training cycles");
        assert!(config.window >= 2, "window must cover at least two samples");
        let usable: Vec<&Cycle> = cycles
            .iter()
            .filter(|c| c.records.len() > config.window)
            .collect();
        assert!(!usable.is_empty(), "every cycle is shorter than the window");

        let rows: Vec<[f64; 3]> = usable
            .iter()
            .flat_map(|c| estimation_samples(c))
            .map(|s| s.features())
            .collect();
        let norm = Normalizer::fit(rows.iter().map(|r| r.as_slice()));
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut lstm = Lstm::new(3, config.hidden, 1, &mut rng);
        let mut opt = Adam::new(config.learning_rate);

        for _ in 0..config.iterations {
            // Draw a batch of random windows (cycle, start) pairs.
            let mut starts = Vec::with_capacity(config.batch_size);
            for _ in 0..config.batch_size {
                let c = usable[rng.gen_range(0..usable.len())];
                let start = rng.gen_range(0..c.records.len() - config.window);
                starts.push((c, start));
            }
            let mut steps: Vec<Matrix> = Vec::with_capacity(config.window);
            let mut targets: Vec<Matrix> = Vec::with_capacity(config.window);
            let mut step_currents: Vec<Vec<f64>> = Vec::with_capacity(config.window);
            for k in 0..config.window {
                let mut x = Vec::with_capacity(config.batch_size * 3);
                let mut y = Vec::with_capacity(config.batch_size);
                let mut i_raw = Vec::with_capacity(config.batch_size);
                for (c, start) in &starts {
                    let r = &c.records[start + k];
                    let n = norm.normalized(&[r.voltage_v, r.current_a, r.temperature_c]);
                    x.extend(n.iter().map(|&v| v as f32));
                    y.push(r.soc as f32);
                    i_raw.push(r.current_a);
                }
                steps.push(Matrix::from_vec(config.batch_size, 3, x));
                targets.push(Matrix::from_vec(config.batch_size, 1, y));
                step_currents.push(i_raw);
            }
            let outs = lstm.forward_sequence(&steps);
            let mut grads: Vec<Matrix> = outs
                .iter()
                .zip(&targets)
                .map(|(o, t)| Loss::Mae.gradient(o, t))
                .collect();
            if config.de_residual_weight > 0.0 {
                let dt = starts[0].0.dt_s;
                apply_de_residual(
                    &outs,
                    &step_currents,
                    dt,
                    config.capacity_ah,
                    config.de_residual_weight,
                    &mut grads,
                );
            }
            lstm.zero_grad();
            lstm.backward_sequence(&grads);
            opt.step(&mut lstm);
        }
        Self {
            lstm,
            norm,
            window: config.window,
        }
    }

    /// Per-record SoC estimates over a whole cycle (the recurrent state is
    /// carried across the full sequence, as at deployment).
    pub fn estimate_cycle(&self, cycle: &Cycle) -> Vec<f64> {
        let steps: Vec<Matrix> = cycle
            .records
            .iter()
            .map(|r| {
                let n = self
                    .norm
                    .normalized(&[r.voltage_v, r.current_a, r.temperature_c]);
                Matrix::from_vec(1, 3, n.iter().map(|&v| v as f32).collect())
            })
            .collect();
        self.lstm
            .infer_sequence(&steps)
            .iter()
            .map(|o| o[(0, 0)] as f64)
            .collect()
    }

    /// Estimation MAE over cycles (skipping a warm-up of one window so the
    /// recurrent state is converged, as \[17\] does).
    pub fn eval(&self, cycles: &[Cycle]) -> EvalReport {
        let mut errors = Vec::new();
        for cycle in cycles {
            let est = self.estimate_cycle(cycle);
            for (e, r) in est.iter().zip(&cycle.records).skip(self.window) {
                errors.push((e - r.soc).abs());
            }
        }
        assert!(!errors.is_empty(), "no evaluation samples after warm-up");
        let n = errors.len() as f64;
        let mae = errors.iter().sum::<f64>() / n;
        let rmse = (errors.iter().map(|e| e * e).sum::<f64>() / n).sqrt();
        let max_abs = errors.iter().copied().fold(0.0_f64, f64::max);
        EvalReport {
            mae,
            rmse,
            max_abs,
            count: errors.len(),
        }
    }

    /// Inference cost for one query over this estimator's window.
    pub fn cost(&self) -> CostReport {
        LstmQuery {
            lstm: &self.lstm,
            sequence_len: self.window,
        }
        .cost()
    }

    /// The underlying recurrent network.
    pub fn lstm(&self) -> &Lstm {
        &self.lstm
    }
}

/// Hyper-parameters for the DE-MLP baseline of \[7\].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpBaselineConfig {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Training epochs over all consecutive-sample pairs.
    pub epochs: usize,
    /// Pairs per minibatch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Weight of the DE residual term.
    pub de_residual_weight: f32,
    /// Rated capacity for the residual, amp-hours.
    pub capacity_ah: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for MlpBaselineConfig {
    fn default() -> Self {
        Self {
            hidden: vec![64, 64],
            epochs: 20,
            batch_size: 128,
            learning_rate: 3e-3,
            de_residual_weight: 0.5,
            capacity_ah: 3.0,
            seed: 23,
        }
    }
}

/// A trained (DE-)MLP SoC estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpEstimator {
    net: Mlp,
    norm: Normalizer,
}

impl MlpEstimator {
    /// Trains the estimator; with `de_residual_weight > 0` the loss includes
    /// the finite-difference Coulomb ODE residual between consecutive
    /// samples, as in \[7\].
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than two records in total.
    pub fn train(cycles: &[Cycle], config: &MlpBaselineConfig) -> Self {
        let mut rows: Vec<[f64; 3]> = Vec::new();
        let mut socs: Vec<f64> = Vec::new();
        let mut pair_starts: Vec<usize> = Vec::new();
        let mut currents: Vec<f64> = Vec::new();
        let mut dt_s = 1.0;
        for c in cycles {
            let base = rows.len();
            dt_s = c.dt_s;
            for s in estimation_samples(c) {
                rows.push(s.features());
                socs.push(s.soc);
                currents.push(s.current_a);
            }
            for k in 0..c.records.len().saturating_sub(1) {
                pair_starts.push(base + k);
            }
        }
        assert!(
            pair_starts.len() > 1,
            "need at least two consecutive records"
        );
        let norm = Normalizer::fit(rows.iter().map(|r| r.as_slice()));
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut widths = vec![3usize];
        widths.extend_from_slice(&config.hidden);
        widths.push(1);
        let mut net = Mlp::new(&widths, Activation::Relu, Init::HeNormal, &mut rng);
        let mut opt = Adam::new(config.learning_rate);

        let features = {
            let mut data = Vec::with_capacity(rows.len() * 3);
            for r in &rows {
                data.extend(norm.normalized(r).iter().map(|&v| v as f32));
            }
            Matrix::from_vec(rows.len(), 3, data)
        };

        use rand::seq::SliceRandom;
        let mut order: Vec<usize> = (0..pair_starts.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch_size) {
                let idx_now: Vec<usize> = chunk.iter().map(|&k| pair_starts[k]).collect();
                let idx_next: Vec<usize> = idx_now.iter().map(|&i| i + 1).collect();
                let x_now = features.gather_rows(&idx_now);
                let x_next = features.gather_rows(&idx_next);
                let y_now = Matrix::from_vec(
                    idx_now.len(),
                    1,
                    idx_now.iter().map(|&i| socs[i] as f32).collect(),
                );
                let y_next = Matrix::from_vec(
                    idx_next.len(),
                    1,
                    idx_next.iter().map(|&i| socs[i] as f32).collect(),
                );
                // Data terms on both ends of the pair.
                net.zero_grad();
                let pred_now = net.forward(&x_now);
                let grad_now = Loss::Mae.gradient(&pred_now, &y_now);
                net.backward(&grad_now);
                let pred_next = net.forward(&x_next);
                let grad_next = Loss::Mae.gradient(&pred_next, &y_next);
                // DE residual: (SoC_{t+1} − SoC_t) + I·dt/(3600·C) ≈ 0.
                let mut grad_next = grad_next;
                if config.de_residual_weight > 0.0 {
                    let w = config.de_residual_weight / idx_now.len() as f32;
                    for (row, &i) in idx_now.iter().enumerate() {
                        let delta = pred_next[(row, 0)] - pred_now[(row, 0)];
                        let expected = (-currents[i] * dt_s / (3600.0 * config.capacity_ah)) as f32;
                        let residual = delta - expected;
                        // d|r|/d pred_next = sign(r); the pred_now half is
                        // dropped (its cache was consumed by the second
                        // forward), which halves but does not bias the
                        // residual gradient.
                        grad_next[(row, 0)] += w * residual.signum();
                    }
                }
                net.backward(&grad_next);
                opt.step(&mut net);
            }
        }
        Self { net, norm }
    }

    /// SoC estimate for one sensor reading.
    pub fn estimate(&self, voltage_v: f64, current_a: f64, temperature_c: f64) -> f64 {
        let n = self.norm.normalized(&[voltage_v, current_a, temperature_c]);
        let f: Vec<f32> = n.iter().map(|&v| v as f32).collect();
        self.net.infer_scalar(&f) as f64
    }

    /// Estimation MAE over cycles.
    pub fn eval(&self, cycles: &[Cycle]) -> EvalReport {
        let mut errors = Vec::new();
        for cycle in cycles {
            for s in estimation_samples(cycle) {
                errors
                    .push((self.estimate(s.voltage_v, s.current_a, s.temperature_c) - s.soc).abs());
            }
        }
        assert!(!errors.is_empty(), "no evaluation samples");
        let n = errors.len() as f64;
        EvalReport {
            mae: errors.iter().sum::<f64>() / n,
            rmse: (errors.iter().map(|e| e * e).sum::<f64>() / n).sqrt(),
            max_abs: errors.iter().copied().fold(0.0_f64, f64::max),
            count: errors.len(),
        }
    }

    /// Inference cost of one query.
    pub fn cost(&self) -> CostReport {
        self.net.cost()
    }
}

/// Adds the DE residual gradient for recurrent outputs:
/// `r_k = (o_{k+1} − o_k) + I_k·dt/(3600·C)`, MAE-style subgradient.
fn apply_de_residual(
    outs: &[Matrix],
    step_currents: &[Vec<f64>],
    dt_s: f64,
    capacity_ah: f64,
    weight: f32,
    grads: &mut [Matrix],
) {
    let batch = outs[0].rows();
    let pairs = (outs.len() - 1) * batch;
    let w = weight / pairs.max(1) as f32;
    for k in 0..outs.len() - 1 {
        for b in 0..batch {
            let delta = outs[k + 1][(b, 0)] - outs[k][(b, 0)];
            let expected = (-step_currents[k][b] * dt_s / (3600.0 * capacity_ah)) as f32;
            let sign = (delta - expected).signum();
            grads[k + 1][(b, 0)] += w * sign;
            grads[k][(b, 0)] -= w * sign;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinnsoc_battery::Chemistry;
    use pinnsoc_data::{generate_sandia, NoiseConfig, SandiaConfig};

    fn dataset() -> pinnsoc_data::SocDataset {
        generate_sandia(&SandiaConfig {
            chemistries: vec![Chemistry::Nmc],
            ambient_temps_c: vec![25.0],
            cycles_per_condition: 1,
            noise: NoiseConfig::none(),
            ..SandiaConfig::default()
        })
    }

    #[test]
    fn lstm_estimator_learns_soc() {
        let ds = dataset();
        let config = LstmBaselineConfig {
            hidden: 16,
            window: 10,
            iterations: 150,
            batch_size: 16,
            ..LstmBaselineConfig::default()
        };
        let est = LstmEstimator::train(&ds.train, &config);
        let report = est.eval(&ds.train);
        assert!(report.mae < 0.15, "LSTM train MAE {}", report.mae);
    }

    #[test]
    fn lstm_paper_scale_cost() {
        let ds = dataset();
        let config = LstmBaselineConfig {
            hidden: 500,
            window: 10,
            iterations: 1, // accounting only
            batch_size: 2,
            ..LstmBaselineConfig::default()
        };
        let est = LstmEstimator::train(&ds.train, &config);
        let cost = est.cost();
        assert!(cost.params > 1_000_000, "params {}", cost.params);
        assert!(cost.memory_bytes > 4_000_000);
    }

    #[test]
    fn mlp_estimator_learns_soc() {
        let ds = dataset();
        let config = MlpBaselineConfig {
            epochs: 30,
            batch_size: 32,
            de_residual_weight: 0.0,
            ..MlpBaselineConfig::default()
        };
        let est = MlpEstimator::train(&ds.train, &config);
        let report = est.eval(&ds.train);
        assert!(report.mae < 0.1, "MLP train MAE {}", report.mae);
    }

    #[test]
    fn de_residual_does_not_break_training() {
        let ds = dataset();
        let config = MlpBaselineConfig {
            epochs: 30,
            batch_size: 32,
            de_residual_weight: 0.5,
            ..MlpBaselineConfig::default()
        };
        let est = MlpEstimator::train(&ds.train, &config);
        let report = est.eval(&ds.train);
        assert!(report.mae < 0.15, "DE-MLP train MAE {}", report.mae);
    }

    #[test]
    fn estimate_cycle_length_matches() {
        let ds = dataset();
        let config = LstmBaselineConfig {
            hidden: 8,
            window: 5,
            iterations: 5,
            batch_size: 4,
            ..LstmBaselineConfig::default()
        };
        let est = LstmEstimator::train(&ds.train, &config);
        let cycle = &ds.test[0];
        assert_eq!(est.estimate_cycle(cycle).len(), cycle.records.len());
    }
}
