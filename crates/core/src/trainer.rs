//! Split training scheme of §III-B.
//!
//! Branch 1 is trained alone on `(V, I, T) → SoC(t)`; gradients never flow
//! from Branch 2 into Branch 1. Branch 2 is trained on ground-truth
//! `SoC(t)` inputs (teacher forcing) with the loss of Eq. 2: a data MAE term
//! at the dataset horizon `N`, plus — for PINN variants — a label-free
//! physics MAE term over randomly generated Coulomb-counting tuples with
//! horizons drawn from the set 𝒩.

use crate::config::{PinnVariant, TrainConfig};
use crate::model::{Branch1, Branch2, SecondStage, SocModel};
use pinnsoc_data::{
    estimation_samples, prediction_pairs_all, Normalizer, PhysicsSampler, PredictionSample,
    SocDataset,
};
use pinnsoc_nn::{Adam, Loss, LrSchedule, Matrix, Optimizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Per-epoch loss trace of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Variant label of the trained model.
    pub label: String,
    /// Branch 1 training MAE per epoch.
    pub b1_loss: Vec<f32>,
    /// Branch 2 combined loss (data + physics) per epoch; empty for
    /// Physics-Only.
    pub b2_loss: Vec<f32>,
}

/// Trains a [`SocModel`] on a dataset according to the configuration.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`TrainConfig::validate`]) or
/// the dataset has no training cycles.
pub fn train(dataset: &SocDataset, config: &TrainConfig) -> (SocModel, TrainReport) {
    config.validate();
    assert!(!dataset.train.is_empty(), "dataset has no training cycles");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // ----- Branch 1: estimation -----
    let est_samples: Vec<_> = dataset.train.iter().flat_map(estimation_samples).collect();
    assert!(!est_samples.is_empty(), "no estimation samples");
    let feature_rows: Vec<[f64; 3]> = est_samples.iter().map(|s| s.features()).collect();
    let norm1 = Normalizer::fit(feature_rows.iter().map(|r| r.as_slice()));
    let mut branch1 = Branch1::new(norm1, &mut rng);
    // Small-output init (see the Branch 2 note below): start near the mean
    // SoC instead of at random-scale outputs.
    branch1.net_mut().scale_output_weights(0.1);
    let b1_loss = train_branch1(&mut branch1, &feature_rows, &est_samples, config, &mut rng);

    // ----- Branch 2: prediction -----
    let (stage2, b2_loss) = match &config.variant {
        PinnVariant::PhysicsOnly => (
            SecondStage::Coulomb {
                capacity_ah: config.capacity_ah,
            },
            Vec::new(),
        ),
        variant => {
            let pairs = prediction_pairs_all(&dataset.train, config.data_horizon_s);
            assert!(
                !pairs.is_empty(),
                "no prediction pairs at horizon {}s",
                config.data_horizon_s
            );
            let it_rows: Vec<[f64; 2]> = pairs
                .iter()
                .map(|p| [p.avg_current_a, p.avg_temperature_c])
                .collect();
            let norm_it = Normalizer::fit(it_rows.iter().map(|r| r.as_slice()));
            let mut branch2 = Branch2::new(norm_it, config.data_horizon_s, &mut rng);
            let sampler = match variant {
                PinnVariant::Pinn { horizons_s } => Some(PhysicsSampler::new(
                    dataset,
                    horizons_s.clone(),
                    config.physics_current,
                    config.seed.wrapping_add(1),
                )),
                _ => None,
            };
            // Small-output init: Branch 2 starts near its mean prediction,
            // so the combined data + physics objective is well-conditioned
            // from the first step (large random initial outputs can lock
            // the horizon response into inverted basins).
            branch2.net_mut().scale_output_weights(0.1);
            let losses = train_branch2(&mut branch2, &pairs, sampler, config, &mut rng);
            (SecondStage::Network(branch2), losses)
        }
    };

    let label = config.variant.to_string();
    let model = SocModel {
        branch1,
        stage2,
        label: label.clone(),
    };
    (
        model,
        TrainReport {
            label,
            b1_loss,
            b2_loss,
        },
    )
}

fn train_branch1(
    branch1: &mut Branch1,
    feature_rows: &[[f64; 3]],
    samples: &[pinnsoc_data::EstimationSample],
    config: &TrainConfig,
    rng: &mut StdRng,
) -> Vec<f32> {
    let features = branch1.feature_matrix(feature_rows);
    let targets: Vec<f32> = samples.iter().map(|s| s.soc as f32).collect();
    let mut opt = Adam::new(config.learning_rate);
    let schedule = LrSchedule::Cosine {
        total: config.b1_epochs,
        min_lr: config.learning_rate * 0.05,
    };
    let mut indices: Vec<usize> = (0..samples.len()).collect();
    let mut history = Vec::with_capacity(config.b1_epochs);
    for epoch in 0..config.b1_epochs {
        opt.set_learning_rate(schedule.rate_at(config.learning_rate, epoch));
        indices.shuffle(rng);
        let mut epoch_loss = 0.0_f32;
        let mut batches = 0usize;
        for chunk in indices.chunks(config.batch_size) {
            let x = features.gather_rows(chunk);
            let y = Matrix::from_vec(chunk.len(), 1, chunk.iter().map(|&i| targets[i]).collect());
            let net = branch1.net_mut();
            let pred = net.forward(&x);
            epoch_loss += Loss::Mae.value(&pred, &y);
            batches += 1;
            let grad = Loss::Mae.gradient(&pred, &y);
            net.zero_grad();
            net.backward(&grad);
            opt.step(net);
        }
        history.push(epoch_loss / batches.max(1) as f32);
    }
    history
}

fn train_branch2(
    branch2: &mut Branch2,
    pairs: &[PredictionSample],
    mut physics: Option<PhysicsSampler>,
    config: &TrainConfig,
    rng: &mut StdRng,
) -> Vec<f32> {
    let rows: Vec<[f64; 4]> = pairs.iter().map(|p| p.features()).collect();
    let features = branch2.feature_matrix(&rows);
    let targets: Vec<f32> = pairs.iter().map(|p| p.soc_next as f32).collect();
    let mut opt = Adam::new(config.learning_rate);
    let schedule = LrSchedule::Cosine {
        total: config.b2_epochs,
        min_lr: config.learning_rate * 0.05,
    };
    let mut indices: Vec<usize> = (0..pairs.len()).collect();
    let mut history = Vec::with_capacity(config.b2_epochs);
    for epoch in 0..config.b2_epochs {
        opt.set_learning_rate(schedule.rate_at(config.learning_rate, epoch));
        indices.shuffle(rng);
        let mut epoch_loss = 0.0_f32;
        let mut batches = 0usize;
        for chunk in indices.chunks(config.batch_size) {
            let x = features.gather_rows(chunk);
            let y = Matrix::from_vec(chunk.len(), 1, chunk.iter().map(|&i| targets[i]).collect());
            // Data term of Eq. 2.
            let net = branch2.net_mut();
            let pred = net.forward(&x);
            let mut batch_loss = Loss::Mae.value(&pred, &y);
            let grad = Loss::Mae.gradient(&pred, &y);
            net.zero_grad();
            net.backward(&grad);
            // Physics term of Eq. 2: an equally sized batch of randomly
            // generated Coulomb tuples (teacher-free labels).
            if let Some(sampler) = physics.as_mut() {
                let batch = sampler.sample_batch(chunk.len());
                let p_rows: Vec<[f64; 4]> = batch.iter().map(|p| p.features()).collect();
                let px = branch2.feature_matrix(&p_rows);
                let py = Matrix::from_vec(
                    batch.len(),
                    1,
                    batch.iter().map(|p| p.soc_next as f32).collect(),
                );
                let net = branch2.net_mut();
                let p_pred = net.forward(&px);
                batch_loss += config.physics_weight * Loss::Mae.value(&p_pred, &py);
                let p_grad = Loss::Mae
                    .gradient(&p_pred, &py)
                    .scale(config.physics_weight);
                net.backward(&p_grad);
            }
            opt.step(branch2.net_mut());
            epoch_loss += batch_loss;
            batches += 1;
        }
        history.push(epoch_loss / batches.max(1) as f32);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinnsoc_battery::Chemistry;
    use pinnsoc_data::{generate_sandia, NoiseConfig, SandiaConfig};

    fn tiny_dataset() -> SocDataset {
        generate_sandia(&SandiaConfig {
            chemistries: vec![Chemistry::Nmc],
            ambient_temps_c: vec![25.0],
            cycles_per_condition: 1,
            noise: NoiseConfig::none(),
            ..SandiaConfig::default()
        })
    }

    fn quick_config(variant: PinnVariant) -> TrainConfig {
        TrainConfig {
            b1_epochs: 30,
            b2_epochs: 30,
            batch_size: 16,
            ..TrainConfig::sandia(variant, 42)
        }
    }

    #[test]
    fn branch1_loss_decreases() {
        let ds = tiny_dataset();
        let (_, report) = train(&ds, &quick_config(PinnVariant::NoPinn));
        let first = report.b1_loss.first().unwrap();
        let last = report.b1_loss.last().unwrap();
        assert!(last < first, "B1 loss did not improve: {first} -> {last}");
        assert!(*last < 0.1, "B1 final loss too high: {last}");
    }

    #[test]
    fn branch2_loss_decreases() {
        let ds = tiny_dataset();
        let (_, report) = train(&ds, &quick_config(PinnVariant::NoPinn));
        let first = report.b2_loss.first().unwrap();
        let last = report.b2_loss.last().unwrap();
        assert!(last < first, "B2 loss did not improve: {first} -> {last}");
    }

    #[test]
    fn physics_only_skips_branch2() {
        let ds = tiny_dataset();
        let (model, report) = train(&ds, &quick_config(PinnVariant::PhysicsOnly));
        assert!(report.b2_loss.is_empty());
        assert!(matches!(model.stage2, SecondStage::Coulomb { .. }));
        assert_eq!(model.label, "Physics-Only");
    }

    #[test]
    fn pinn_trains_with_physics_batches() {
        let ds = tiny_dataset();
        let (model, report) = train(
            &ds,
            &quick_config(PinnVariant::pinn_all(&[120.0, 240.0, 360.0])),
        );
        assert!(!report.b2_loss.is_empty());
        assert_eq!(model.label, "PINN-All");
        assert!(matches!(model.stage2, SecondStage::Network(_)));
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let ds = tiny_dataset();
        let (m1, _) = train(&ds, &quick_config(PinnVariant::NoPinn));
        let (m2, _) = train(&ds, &quick_config(PinnVariant::NoPinn));
        assert_eq!(m1.estimate(3.7, 3.0, 25.0), m2.estimate(3.7, 3.0, 25.0));
        assert_eq!(
            m1.predict_from(0.8, 3.0, 25.0, 120.0),
            m2.predict_from(0.8, 3.0, 25.0, 120.0)
        );
    }

    #[test]
    fn different_seeds_give_different_models() {
        let ds = tiny_dataset();
        let (m1, _) = train(&ds, &quick_config(PinnVariant::NoPinn));
        let mut config = quick_config(PinnVariant::NoPinn);
        config.seed = 43;
        let (m2, _) = train(&ds, &config);
        assert_ne!(m1.estimate(3.7, 3.0, 25.0), m2.estimate(3.7, 3.0, 25.0));
    }

    #[test]
    fn trained_estimator_tracks_soc_on_train_data() {
        let ds = tiny_dataset();
        let (model, _) = train(&ds, &quick_config(PinnVariant::NoPinn));
        let cycle = &ds.train[0];
        let mut total = 0.0;
        for r in &cycle.records {
            total += (model.estimate(r.voltage_v, r.current_a, r.temperature_c) - r.soc).abs();
        }
        let mae = total / cycle.records.len() as f64;
        assert!(mae < 0.08, "train-set estimation MAE too high: {mae}");
    }
}
