//! Compatibility façade over the decomposed training engine.
//!
//! The monolithic trainer that used to live here is now the [`crate::train`]
//! module tree (batcher / objective / epoch loop / pool-parallel
//! `train_many`); this module keeps the historical import path working.

pub use crate::train::{train, TrainReport};
