//! Autoregressive multi-step inference (Fig. 2) and full-discharge
//! prediction (Fig. 5).
//!
//! Branch 1 runs once on the first sensor reading; Branch 2 (or the Coulomb
//! stage) then chains forward, feeding each prediction back as the next
//! initial SoC. Voltage is only used at the first timestamp — the property
//! that lets this model predict battery lifetime for a hypothetical workload.

use crate::model::SocModel;
use pinnsoc_data::Cycle;
use serde::{Deserialize, Serialize};

/// Result of one autoregressive rollout against a reference cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rollout {
    /// Model label the rollout was produced with.
    pub label: String,
    /// Step horizon used, seconds.
    pub step_s: f64,
    /// Prediction timestamps, seconds from the cycle start.
    pub times_s: Vec<f64>,
    /// Predicted SoC at each timestamp (may leave `[0, 1]`, as in Fig. 5).
    pub predicted: Vec<f64>,
    /// Ground-truth SoC at each timestamp.
    pub ground_truth: Vec<f64>,
}

impl Rollout {
    /// Absolute error at the final timestamp — the "final SoC prediction"
    /// number §V-D reports (ground truth ≈ 0 for a full discharge).
    pub fn final_error(&self) -> f64 {
        let p = self.predicted.last().expect("non-empty rollout");
        let g = self.ground_truth.last().expect("non-empty rollout");
        (p - g).abs()
    }

    /// Mean absolute error along the whole trajectory.
    pub fn trajectory_mae(&self) -> f64 {
        self.predicted
            .iter()
            .zip(&self.ground_truth)
            .map(|(p, g)| (p - g).abs())
            .sum::<f64>()
            / self.predicted.len() as f64
    }

    /// Number of autoregressive steps taken.
    pub fn steps(&self) -> usize {
        self.predicted.len().saturating_sub(1)
    }
}

/// Rolls the model forward over an entire cycle with steps of `step_s`
/// seconds (the per-model best horizon in Fig. 5).
///
/// The first SoC comes from Branch 1 on the first record's sensor readings;
/// every subsequent step feeds the previous prediction into the second
/// stage together with the workload's average current and temperature over
/// that step window.
///
/// # Panics
///
/// Panics if `step_s` is not a positive multiple of the cycle's sampling
/// interval or the cycle is shorter than one step.
pub fn autoregressive_rollout(model: &SocModel, cycle: &Cycle, step_s: f64) -> Rollout {
    assert!(step_s > 0.0, "step must be positive");
    let stride_f = step_s / cycle.dt_s;
    let stride = stride_f.round() as usize;
    assert!(
        stride >= 1 && (stride_f - stride as f64).abs() < 1e-6,
        "step {step_s}s is not a multiple of the sampling interval {}s",
        cycle.dt_s
    );
    assert!(
        cycle.records.len() > stride,
        "cycle shorter than one rollout step"
    );

    let first = &cycle.records[0];
    let mut soc = model.estimate(first.voltage_v, first.current_a, first.temperature_c);
    let mut times = vec![first.time_s];
    let mut predicted = vec![soc];
    let mut truth = vec![first.soc];

    let mut start = 0usize;
    while start + stride < cycle.records.len() {
        let end = start + stride;
        let window = &cycle.records[start + 1..=end];
        let avg_i = window.iter().map(|r| r.current_a).sum::<f64>() / window.len() as f64;
        let avg_t = window.iter().map(|r| r.temperature_c).sum::<f64>() / window.len() as f64;
        soc = model.predict_from(soc, avg_i, avg_t, step_s);
        times.push(cycle.records[end].time_s);
        predicted.push(soc);
        truth.push(cycle.records[end].soc);
        start = end;
    }
    Rollout {
        label: model.label.clone(),
        step_s,
        times_s: times,
        predicted,
        ground_truth: truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PinnVariant, TrainConfig};
    use crate::train::train;
    use pinnsoc_battery::Chemistry;
    use pinnsoc_data::{generate_sandia, NoiseConfig, SandiaConfig};

    fn dataset() -> pinnsoc_data::SocDataset {
        generate_sandia(&SandiaConfig {
            chemistries: vec![Chemistry::Nmc],
            ambient_temps_c: vec![25.0],
            cycles_per_condition: 1,
            noise: NoiseConfig::none(),
            ..SandiaConfig::default()
        })
    }

    fn trained(variant: PinnVariant) -> SocModel {
        let config = TrainConfig {
            b1_epochs: 30,
            b2_epochs: 30,
            batch_size: 16,
            ..TrainConfig::sandia(variant, 3)
        };
        train(&dataset(), &config).0
    }

    #[test]
    fn rollout_covers_the_cycle() {
        let ds = dataset();
        let model = trained(PinnVariant::pinn_all(&[120.0, 240.0, 360.0]));
        let cycle = &ds.test[0];
        let r = autoregressive_rollout(&model, cycle, 120.0);
        assert_eq!(r.times_s.len(), r.predicted.len());
        assert_eq!(r.predicted.len(), r.ground_truth.len());
        assert!(r.steps() > 5);
        // Covers (nearly) the whole cycle.
        let last_t = *r.times_s.last().unwrap();
        assert!(last_t >= cycle.duration_s() - 2.0 * 120.0);
    }

    #[test]
    fn physics_only_rollout_follows_coulomb_integral() {
        // On a constant-current cycle the Coulomb stage accumulates exactly
        // the simulator's SoC drop, starting from the Branch-1 estimate.
        let ds = dataset();
        let model = trained(PinnVariant::PhysicsOnly);
        let cycle = &ds.test[0];
        let r = autoregressive_rollout(&model, cycle, 120.0);
        let initial_offset = (r.predicted[0] - r.ground_truth[0]).abs();
        // Drift beyond the initial Branch-1 error stays bounded on the
        // discharge segment (both integrate the same current).
        let k = r.predicted.len() / 2;
        let mid_err = (r.predicted[k] - r.ground_truth[k]).abs();
        assert!(
            mid_err < initial_offset + 0.1,
            "Coulomb rollout drifted: initial {initial_offset}, mid {mid_err}"
        );
    }

    #[test]
    fn rollout_final_error_definition() {
        let r = Rollout {
            label: "x".into(),
            step_s: 1.0,
            times_s: vec![0.0, 1.0],
            predicted: vec![1.0, 0.3],
            ground_truth: vec![1.0, 0.0],
        };
        assert!((r.final_error() - 0.3).abs() < 1e-12);
        assert!((r.trajectory_mae() - 0.15).abs() < 1e-12);
        assert_eq!(r.steps(), 1);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bad_step_panics() {
        let ds = dataset();
        let model = trained(PinnVariant::NoPinn);
        let _ = autoregressive_rollout(&model, &ds.test[0], 100.0);
    }
}
