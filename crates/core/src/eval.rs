//! Evaluation: the MAE metrics reported in Figs. 3–4 and Table I.

use crate::model::{SecondStage, SocModel};
use pinnsoc_data::{estimation_samples, pipeline_samples_all, Cycle};
use serde::{Deserialize, Serialize};

/// Error summary over one evaluation set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Mean absolute error — the paper's headline metric.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Worst-case absolute error.
    pub max_abs: f64,
    /// Number of evaluated samples.
    pub count: usize,
}

impl EvalReport {
    fn from_errors(errors: &[f64]) -> Self {
        assert!(!errors.is_empty(), "cannot evaluate on zero samples");
        let n = errors.len() as f64;
        let mae = errors.iter().map(|e| e.abs()).sum::<f64>() / n;
        let rmse = (errors.iter().map(|e| e * e).sum::<f64>() / n).sqrt();
        let max_abs = errors.iter().map(|e| e.abs()).fold(0.0_f64, f64::max);
        Self {
            mae,
            rmse,
            max_abs,
            count: errors.len(),
        }
    }
}

/// Evaluates Branch 1 (instantaneous SoC estimation) over cycles —
/// the `SoC(t)` column of Table I.
///
/// # Panics
///
/// Panics if `cycles` contains no records.
pub fn eval_estimation(model: &SocModel, cycles: &[Cycle]) -> EvalReport {
    let mut errors = Vec::new();
    for cycle in cycles {
        for s in estimation_samples(cycle) {
            let est = model.estimate(s.voltage_v, s.current_a, s.temperature_c);
            errors.push(est - s.soc);
        }
    }
    EvalReport::from_errors(&errors)
}

/// Evaluates the full pipeline (Branch 1 estimate feeding the second stage)
/// at a prediction horizon — the bars of Figs. 3–4 and the `SoC(t+N)`
/// column of Table I.
///
/// # Panics
///
/// Panics if no cycle is long enough for the horizon.
pub fn eval_prediction(model: &SocModel, cycles: &[Cycle], horizon_s: f64) -> EvalReport {
    let samples = pipeline_samples_all(cycles, horizon_s);
    assert!(
        !samples.is_empty(),
        "no evaluation windows at horizon {horizon_s}s"
    );
    let errors: Vec<f64> = samples
        .iter()
        .map(|s| {
            let pred = model.predict(
                s.voltage_v,
                s.current_a,
                s.temperature_c,
                s.avg_current_a,
                s.avg_temperature_c,
                s.horizon_s,
            );
            pred - s.soc_next
        })
        .collect();
    EvalReport::from_errors(&errors)
}

/// Like [`eval_prediction`] but feeding ground-truth `SoC(t)` into the
/// second stage (isolates Branch 2 quality from Branch 1 error).
pub fn eval_prediction_oracle_soc(
    model: &SocModel,
    cycles: &[Cycle],
    horizon_s: f64,
) -> EvalReport {
    let samples = pipeline_samples_all(cycles, horizon_s);
    assert!(
        !samples.is_empty(),
        "no evaluation windows at horizon {horizon_s}s"
    );
    let errors: Vec<f64> = samples
        .iter()
        .map(|s| {
            let pred =
                model.predict_from(s.soc_now, s.avg_current_a, s.avg_temperature_c, s.horizon_s);
            pred - s.soc_next
        })
        .collect();
    EvalReport::from_errors(&errors)
}

/// Returns true when the model's second stage is the Coulomb equation
/// (Physics-Only); useful for reporting.
pub fn is_physics_only(model: &SocModel) -> bool {
    matches!(model.stage2, SecondStage::Coulomb { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PinnVariant, TrainConfig};
    use crate::train::train;
    use pinnsoc_battery::Chemistry;
    use pinnsoc_data::{generate_sandia, NoiseConfig, SandiaConfig};

    fn dataset() -> pinnsoc_data::SocDataset {
        generate_sandia(&SandiaConfig {
            chemistries: vec![Chemistry::Nmc],
            ambient_temps_c: vec![25.0],
            cycles_per_condition: 1,
            noise: NoiseConfig::none(),
            ..SandiaConfig::default()
        })
    }

    fn quick(variant: PinnVariant) -> TrainConfig {
        TrainConfig {
            b1_epochs: 30,
            b2_epochs: 30,
            batch_size: 16,
            ..TrainConfig::sandia(variant, 7)
        }
    }

    #[test]
    fn estimation_report_fields_consistent() {
        let ds = dataset();
        let (model, _) = train(&ds, &quick(PinnVariant::NoPinn));
        let report = eval_estimation(&model, &ds.test);
        assert!(report.count > 0);
        assert!(
            report.mae <= report.rmse + 1e-12,
            "MAE must not exceed RMSE"
        );
        assert!(report.rmse <= report.max_abs + 1e-12);
        assert!(report.mae > 0.0);
    }

    #[test]
    fn prediction_eval_runs_at_multiple_horizons() {
        let ds = dataset();
        let (model, _) = train(&ds, &quick(PinnVariant::pinn_all(&[120.0, 240.0, 360.0])));
        for h in [120.0, 240.0, 360.0] {
            let report = eval_prediction(&model, &ds.test, h);
            assert!(report.count > 0, "no samples at horizon {h}");
            assert!(report.mae.is_finite());
        }
    }

    #[test]
    fn physics_only_prediction_is_exact_on_constant_current_oracle() {
        // With ground-truth SoC(t) and constant current, Coulomb counting
        // equals the simulator's SoC integral, so oracle MAE ≈ sensor-noise
        // free exactness.
        let ds = dataset();
        let (model, _) = train(&ds, &quick(PinnVariant::PhysicsOnly));
        assert!(is_physics_only(&model));
        let report = eval_prediction_oracle_soc(&model, &ds.test, 120.0);
        assert!(report.mae < 0.01, "oracle Physics-Only MAE {}", report.mae);
    }

    #[test]
    fn oracle_eval_is_not_worse_than_pipeline() {
        let ds = dataset();
        let (model, _) = train(&ds, &quick(PinnVariant::NoPinn));
        let pipeline = eval_prediction(&model, &ds.test, 120.0);
        let oracle = eval_prediction_oracle_soc(&model, &ds.test, 120.0);
        // Feeding the truth can only help on average (small tolerance for
        // compensation effects).
        assert!(oracle.mae <= pipeline.mae * 1.5 + 0.02);
    }

    #[test]
    #[should_panic(expected = "no evaluation windows")]
    fn too_long_horizon_panics() {
        let ds = dataset();
        let (model, _) = train(&ds, &quick(PinnVariant::NoPinn));
        // A multiple of the 120 s sampling that exceeds every cycle length.
        let _ = eval_prediction(&model, &ds.test, 120.0 * 1_000_000.0);
    }
}
