//! Int8 quantized serving: [`QuantizedSocModel`] wraps a trained
//! [`SocModel`] with per-layer-calibrated [`QuantizedMlp`] networks for
//! both branches, exposing the same batched serving entry points the fleet
//! engine drives (`estimate_features_into` / `predict_uniform_into`).
//!
//! The quantized model is a *derived artifact*: it keeps an `Arc` to its
//! f32 source and a [`model_fingerprint`] of the source weights, so the
//! serving registry can verify — at installation time — that a quantized
//! candidate really was built from the incumbent it would shadow.
//! Featurization (normalizers, horizon scaling) is shared with the source
//! model bit-for-bit; only the network forward passes run int8, carrying
//! the `pinnsoc_nn::quant` error contract (analytic per-layer bounds,
//! path-bit-identical kernels) instead of f32 bit-exactness. Whether the
//! accumulated error is acceptable is decided end-to-end by the
//! `pinnsoc_scenario` promotion gate, never assumed here.

use crate::model::{SecondStage, SocModel};
use pinnsoc_nn::{CalibrationStats, Matrix, Mlp, QuantScratch, QuantizedMlp};
use std::sync::Arc;

/// FNV-1a over a stream of f32 bit patterns.
fn fnv1a_f32s(hash: &mut u64, values: &[f32]) {
    for &v in values {
        for byte in v.to_bits().to_le_bytes() {
            *hash ^= u64::from(byte);
            *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

fn fnv1a_mlp(hash: &mut u64, mlp: &Mlp) {
    for layer in mlp.layers() {
        fnv1a_f32s(hash, layer.weight().as_slice());
        fnv1a_f32s(hash, layer.bias());
    }
}

/// Order-sensitive fingerprint of a model's numeric parameters (both
/// branches' weights and biases, or the Coulomb capacity): two models
/// fingerprint equal iff their served arithmetic is identical. Labels and
/// normalizer provenance are deliberately excluded — the fingerprint binds
/// a quantized artifact to the *weights* it approximates.
pub fn model_fingerprint(model: &SocModel) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    fnv1a_mlp(&mut hash, model.branch1.net());
    match &model.stage2 {
        SecondStage::Network(b2) => fnv1a_mlp(&mut hash, b2.net()),
        SecondStage::Coulomb { capacity_ah } => {
            let bits = capacity_ah.to_bits();
            fnv1a_f32s(&mut hash, &[bits as u32 as f32, (bits >> 32) as u32 as f32]);
        }
    }
    hash
}

/// Why a quantization attempt was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantizeError {
    /// A calibration pass left some layer with an all-zero input range —
    /// the calibration set never exercised that branch meaningfully, so no
    /// sane activation scale exists.
    UninformativeCalibration {
        /// Which branch failed ("branch1" / "branch2").
        branch: &'static str,
    },
    /// The model's second stage is a network but no Branch-2 calibration
    /// inputs were supplied.
    MissingBranch2Calibration,
}

impl std::fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantizeError::UninformativeCalibration { branch } => {
                write!(f, "calibration left {branch} with an all-zero input range")
            }
            QuantizeError::MissingBranch2Calibration => {
                write!(
                    f,
                    "second stage is a network but no Branch-2 calibration inputs were given"
                )
            }
        }
    }
}

impl std::error::Error for QuantizeError {}

/// Reusable buffers for the batched [`QuantizedSocModel`] paths — the
/// int8 counterpart of [`crate::BatchScratch`]; keep one per serving
/// thread.
#[derive(Debug, Clone, Default)]
pub struct QuantBatchScratch {
    b1: QuantScratch,
    b2: QuantScratch,
    features: Option<Matrix>,
    soc_now: Vec<f64>,
}

impl QuantBatchScratch {
    /// Reusable feature buffer; every caller assigns all elements before
    /// the forward pass.
    fn features_buffer(&mut self, rows: usize, cols: usize) -> &mut Matrix {
        let m = self.features.get_or_insert_with(|| Matrix::zeros(1, 1));
        m.reset_for_overwrite(rows, cols);
        m
    }
}

/// A [`SocModel`] quantized for int8 serving: both branch networks as
/// [`QuantizedMlp`]s, featurization and the Coulomb stage shared with the
/// f32 source. See the [module docs](self) for the derived-artifact
/// contract.
#[derive(Debug, Clone)]
pub struct QuantizedSocModel {
    source: Arc<SocModel>,
    b1: QuantizedMlp,
    /// `Some` iff the source's second stage is a network.
    b2: Option<QuantizedMlp>,
    fingerprint: u64,
}

impl QuantizedSocModel {
    /// Quantizes `source` with activation scales calibrated from
    /// `b1_inputs` (normalized `(V, I, T)` feature rows, e.g. built with
    /// [`crate::Branch1::feature_matrix`]) and — when the second stage is
    /// a network — `b2_inputs` (normalized `(SoC, Ī, T̄, N)` rows).
    ///
    /// # Errors
    ///
    /// Fails when a calibration set leaves any layer's input range at
    /// zero, or when a network second stage gets no `b2_inputs`.
    pub fn quantize(
        source: Arc<SocModel>,
        b1_inputs: &Matrix,
        b2_inputs: Option<&Matrix>,
    ) -> Result<Self, QuantizeError> {
        let calibrated = |net: &Mlp, inputs: &Matrix, branch| {
            let mut calib = CalibrationStats::new(net.layers().len());
            calib.observe(net, inputs);
            if calib.is_informative() {
                Ok(QuantizedMlp::quantize(net, &calib))
            } else {
                Err(QuantizeError::UninformativeCalibration { branch })
            }
        };
        let b1 = calibrated(source.branch1.net(), b1_inputs, "branch1")?;
        let b2 = match &source.stage2 {
            SecondStage::Network(b2) => {
                let inputs = b2_inputs.ok_or(QuantizeError::MissingBranch2Calibration)?;
                Some(calibrated(b2.net(), inputs, "branch2")?)
            }
            SecondStage::Coulomb { .. } => None,
        };
        let fingerprint = model_fingerprint(&source);
        Ok(Self {
            source,
            b1,
            b2,
            fingerprint,
        })
    }

    /// The f32 model this was quantized from.
    pub fn source(&self) -> &Arc<SocModel> {
        &self.source
    }

    /// [`model_fingerprint`] of the source weights, computed at
    /// quantization time.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The source model's human-readable label.
    pub fn label(&self) -> &str {
        &self.source.label
    }

    /// The quantized Branch-1 network (accounting and tests).
    pub fn branch1_net(&self) -> &QuantizedMlp {
        &self.b1
    }

    /// Heap bytes of the quantized networks (weights, biases, scales).
    pub fn memory_bytes(&self) -> usize {
        self.b1.memory_bytes() + self.b2.as_ref().map_or(0, QuantizedMlp::memory_bytes)
    }

    /// Int8 instantaneous SoC estimate from one sensor reading —
    /// featurized by the shared f32 normalizer, inferred by the quantized
    /// Branch 1. Spot-check counterpart of [`SocModel::estimate`].
    pub fn estimate(&self, voltage_v: f64, current_a: f64, temperature_c: f64) -> f64 {
        let f = self
            .source
            .branch1
            .features(voltage_v, current_a, temperature_c);
        self.b1.infer_scalar(&f) as f64
    }

    /// Batched int8 Branch-1 estimation over an already normalized
    /// `batch × 3` feature matrix — the quantized counterpart of
    /// [`SocModel::estimate_features_into`], sharing its gather seam: the
    /// features come from the same normalizer, so f32 and int8 serving
    /// differ only in the network pass.
    ///
    /// Appends one estimate per row to `out`. Results are bit-identical
    /// across kernel paths and batch splits (the `pinnsoc_nn::quant`
    /// contract), but NOT bit-identical to f32 — they carry the quantized
    /// error bound instead.
    ///
    /// # Panics
    ///
    /// Panics if `features.cols() != 3`.
    pub fn estimate_features_into(
        &self,
        features: &Matrix,
        scratch: &mut QuantBatchScratch,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(features.cols(), 3, "Branch 1 features are (V, I, T)");
        let estimates = self.b1.forward_batch(features, &mut scratch.b1);
        out.extend(estimates.as_slice().iter().map(|&soc| soc as f64));
    }

    /// Batched int8 full-pipeline prediction for one uniform workload —
    /// the quantized counterpart of [`SocModel::predict_uniform_into`].
    /// The Branch-2 feature tail is normalized once through the shared
    /// f32 featurizer; a Coulomb second stage runs the identical closed
    /// form (only its SoC input carries quantization error).
    ///
    /// # Panics
    ///
    /// Panics if `features.cols() != 3`.
    pub fn predict_uniform_into(
        &self,
        features: &Matrix,
        avg_current_a: f64,
        avg_temperature_c: f64,
        horizon_s: f64,
        scratch: &mut QuantBatchScratch,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(features.cols(), 3, "Branch 1 features are (V, I, T)");
        let rows = features.rows();
        {
            let QuantBatchScratch { b1, soc_now, .. } = scratch;
            let estimates = self.b1.forward_batch(features, b1);
            soc_now.clear();
            soc_now.extend(estimates.as_slice().iter().map(|&soc| soc as f64));
        }
        let soc_now = std::mem::take(&mut scratch.soc_now);
        match (&self.source.stage2, &self.b2) {
            (SecondStage::Network(b2), Some(qnet)) => {
                let tail = b2.uniform_workload(avg_current_a, avg_temperature_c, horizon_s);
                {
                    let b2_features = scratch.features_buffer(rows, 4);
                    for (r, &soc) in soc_now.iter().enumerate() {
                        let row = b2_features.row_mut(r);
                        row[0] = soc as f32;
                        row[1..].copy_from_slice(&tail);
                    }
                }
                let QuantBatchScratch {
                    b2: b2s, features, ..
                } = scratch;
                let preds = qnet.forward_batch(features.as_ref().expect("built"), b2s);
                out.extend(preds.as_slice().iter().map(|&soc| soc as f64));
            }
            (stage @ SecondStage::Coulomb { .. }, None) => {
                out.extend(
                    soc_now.iter().map(|&soc| {
                        stage.predict(soc, avg_current_a, avg_temperature_c, horizon_s)
                    }),
                );
            }
            // `quantize` builds b2 iff the stage is a network.
            _ => unreachable!("quantized stage-2 out of sync with source"),
        }
        scratch.soc_now = soc_now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Branch1, Branch2, PredictQuery};
    use crate::BatchScratch;
    use pinnsoc_data::Normalizer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn norm3() -> Normalizer {
        let rows: Vec<Vec<f64>> = vec![vec![3.0, 0.0, 20.0], vec![4.2, 9.0, 30.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Normalizer::fit(refs.iter().copied())
    }

    fn norm2() -> Normalizer {
        let rows: Vec<Vec<f64>> = vec![vec![0.0, 20.0], vec![9.0, 30.0]];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Normalizer::fit(refs.iter().copied())
    }

    fn model(seed: u64) -> SocModel {
        let mut rng = StdRng::seed_from_u64(seed);
        SocModel {
            branch1: Branch1::new(norm3(), &mut rng),
            stage2: SecondStage::Network(Branch2::new(norm2(), 120.0, &mut rng)),
            label: "test".into(),
        }
    }

    fn readings() -> Vec<[f64; 3]> {
        (0..64)
            .map(|i| {
                let t = i as f64 / 63.0;
                [3.0 + 1.2 * t, 9.0 * t - 1.0, 20.0 + 10.0 * t]
            })
            .collect()
    }

    fn queries() -> Vec<PredictQuery> {
        (0..48)
            .map(|i| {
                let t = i as f64 / 47.0;
                PredictQuery {
                    voltage_v: 3.1 + t,
                    current_a: 6.0 * t,
                    temperature_c: 18.0 + 14.0 * t,
                    avg_current_a: 9.0 * t - 0.5,
                    avg_temperature_c: 21.0 + 8.0 * t,
                    horizon_s: 30.0 + 330.0 * t,
                }
            })
            .collect()
    }

    /// Calibration matrices covering the serving ranges above.
    fn calibrate(m: &SocModel) -> (Matrix, Matrix) {
        let b1 = m.branch1.feature_matrix(&readings());
        let rows: Vec<[f64; 4]> = queries()
            .iter()
            .map(|q| [0.8, q.avg_current_a, q.avg_temperature_c, q.horizon_s])
            .collect();
        let b2 = match &m.stage2 {
            SecondStage::Network(b2) => b2.feature_matrix(&rows),
            SecondStage::Coulomb { .. } => unreachable!(),
        };
        (b1, b2)
    }

    fn quantized(seed: u64) -> (Arc<SocModel>, QuantizedSocModel) {
        let m = Arc::new(model(seed));
        let (b1, b2) = calibrate(&m);
        let q = QuantizedSocModel::quantize(Arc::clone(&m), &b1, Some(&b2)).unwrap();
        (m, q)
    }

    #[test]
    fn fingerprint_tracks_weights_not_labels() {
        let mut a = model(1);
        let fp = model_fingerprint(&a);
        a.label = "renamed".into();
        assert_eq!(model_fingerprint(&a), fp, "label must not affect it");
        let b = model(2);
        assert_ne!(model_fingerprint(&b), fp, "different weights");
        let mut c = model(1);
        c.stage2 = SecondStage::Coulomb { capacity_ah: 3.0 };
        assert_ne!(model_fingerprint(&c), fp, "stage-2 swap");
    }

    #[test]
    fn estimates_track_f32_closely_but_not_bitwise() {
        let (m, q) = quantized(3);
        assert_eq!(q.fingerprint(), model_fingerprint(&m));
        let mut fs = BatchScratch::default();
        let mut qs = QuantBatchScratch::default();
        let features = m.branch1.feature_matrix(&readings());
        let (mut f32_out, mut q_out) = (Vec::new(), Vec::new());
        m.estimate_features_into(&features, &mut fs, &mut f32_out);
        q.estimate_features_into(&features, &mut qs, &mut q_out);
        assert_eq!(f32_out.len(), q_out.len());
        let mut max_err = 0.0f64;
        for (a, b) in f32_out.iter().zip(&q_out) {
            max_err = max_err.max((a - b).abs());
        }
        assert!(max_err < 0.05, "quantized drifted {max_err}");
        // The scalar spot-check agrees with the batched path.
        let r = readings()[7];
        let batched = q_out[7];
        assert_eq!(q.estimate(r[0], r[1], r[2]).to_bits(), batched.to_bits());
    }

    #[test]
    fn predict_uniform_matches_f32_closely_for_both_stages() {
        for coulomb in [false, true] {
            let mut m = model(5);
            if coulomb {
                m.stage2 = SecondStage::Coulomb { capacity_ah: 3.0 };
            }
            let m = Arc::new(m);
            let b1 = m.branch1.feature_matrix(&readings());
            let b2 = match &m.stage2 {
                SecondStage::Network(b2) => {
                    let rows: Vec<[f64; 4]> = queries()
                        .iter()
                        .map(|q| [0.8, q.avg_current_a, q.avg_temperature_c, q.horizon_s])
                        .collect();
                    Some(b2.feature_matrix(&rows))
                }
                SecondStage::Coulomb { .. } => None,
            };
            let q = QuantizedSocModel::quantize(Arc::clone(&m), &b1, b2.as_ref()).unwrap();
            let features = m.branch1.feature_matrix(&readings());
            let mut fs = BatchScratch::default();
            let mut qs = QuantBatchScratch::default();
            let (mut f32_out, mut q_out) = (Vec::new(), Vec::new());
            m.predict_uniform_into(&features, 2.5, 24.0, 180.0, &mut fs, &mut f32_out);
            q.predict_uniform_into(&features, 2.5, 24.0, 180.0, &mut qs, &mut q_out);
            assert_eq!(f32_out.len(), q_out.len());
            for (a, b) in f32_out.iter().zip(&q_out) {
                assert!((a - b).abs() < 0.1, "coulomb={coulomb}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn quantize_error_paths() {
        let m = Arc::new(model(7));
        let (b1, _) = calibrate(&m);
        match QuantizedSocModel::quantize(Arc::clone(&m), &b1, None) {
            Err(QuantizeError::MissingBranch2Calibration) => {}
            other => panic!("expected missing branch2 calibration, got {other:?}"),
        }
        // All-zero calibration inputs leave layer 0 uninformative.
        let zeros = Matrix::zeros(4, 3);
        let (_, b2) = calibrate(&m);
        match QuantizedSocModel::quantize(Arc::clone(&m), &zeros, Some(&b2)) {
            Err(QuantizeError::UninformativeCalibration { branch: "branch1" }) => {}
            other => panic!("expected uninformative branch1, got {other:?}"),
        }
    }

    #[test]
    fn memory_shrinks_versus_f32_model() {
        let (m, q) = quantized(9);
        assert!(q.memory_bytes() < m.cost().memory_bytes);
        assert_eq!(q.label(), "test");
    }
}
