//! Persistent worker pool with epoch/condvar handoff and caller
//! participation.
//!
//! Extracted from the fleet serving engine (where it drains shard batch
//! passes) so the training layer can drive independent training tasks
//! through the same machinery. The pool is generic over three things:
//!
//! - [`PoolTask`]: the unit of work. Tasks are **owned values** that move
//!   into the queue and come back inside [`Done`] records — no borrows
//!   cross threads, so no `unsafe` and no scoped threads.
//! - `PoolTask::Kind`: a per-run job description, shared by every task of
//!   one run (the fleet's process-vs-predict switch; `()` for training).
//! - [`PinSource`]: a shared context provider pinned under the queue lock
//!   at every pop (the fleet's hot-swappable model registry; [`NoContext`]
//!   when tasks are self-contained).
//!
//! Steady-state runs spawn no threads and perform no allocations in the
//! pool machinery: the queue and result buffers are caller-owned vectors
//! whose capacity is reused across runs.

use crate::obs::{PoolObs, PoolTracer};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

// Poisoned locks are recovered (`PoisonError::into_inner`) everywhere in
// this module rather than propagated: the state mutex guards only
// plain-data bookkeeping, and every panic that can fire with the lock held
// happens before the critical section mutates anything (task bodies run
// outside the lock, behind `catch_unwind`). Propagating the poison would
// turn one dead worker into a panic in every other thread that touches the
// pool — including `Drop`, where a second panic aborts the process.

/// A unit of work that moves through the pool by ownership.
pub trait PoolTask: Send + 'static {
    /// Context pinned from the [`PinSource`] at each queue pop (e.g. a
    /// model snapshot). Never crosses threads: each pop pins its own.
    type Ctx;
    /// Per-run job description, copied to every task of the run.
    type Kind: Copy + Send + 'static;
    /// What one completed task produces.
    type Output: Send + 'static;

    /// Executes the task against the pinned context.
    fn run(&mut self, ctx: &Self::Ctx, kind: Self::Kind) -> Self::Output;
}

/// Provides the per-pop execution context.
///
/// Implementations must be cheap to call under a lock (an `Arc` clone, an
/// atomic load): the pool pins the context while holding its state mutex so
/// a task never runs against a context older than its own pop. The source
/// must never take the pool's own lock (the fleet registry's swap path
/// upholds this), or pinning would deadlock.
pub trait PinSource: Send + Sync + 'static {
    /// The pinned context handed to [`PoolTask::run`].
    type Ctx;

    /// Pins the current context.
    fn pin(&self) -> Self::Ctx;
}

/// [`PinSource`] for self-contained tasks that need no shared context.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoContext;

impl PinSource for NoContext {
    type Ctx = ();

    fn pin(&self) {}
}

/// A completed task: its index in the submitting run, the task itself
/// (ownership returns to the caller), and what it produced.
#[derive(Debug)]
pub struct Done<T: PoolTask> {
    /// The caller-assigned index submitted alongside the task.
    pub idx: usize,
    /// The task, back in the caller's ownership.
    pub task: T,
    /// The task's output.
    pub output: T::Output,
}

struct PoolState<T: PoolTask> {
    /// Bumped once per run; workers compare it against the last epoch they
    /// served to decide whether a wake-up means new work.
    epoch: u64,
    shutdown: bool,
    /// The active run's job kind; `None` before the first run.
    kind: Option<T::Kind>,
    /// Tasks awaiting execution this run.
    queue: Vec<(usize, T)>,
    /// Tasks currently executing (on workers or the caller).
    active: usize,
    /// Completed tasks, awaiting collection by the caller.
    done: Vec<Done<T>>,
    /// Set when a task panicked this run (the task is lost with the
    /// unwind). The run still drains to quiescence so every *surviving*
    /// task returns to the caller, then the caller re-raises.
    panicked: bool,
    /// Observability fields, live only while a [`PoolObs`] is attached.
    /// Bumped under this mutex — which every pop already holds — so the
    /// instrumented hot path takes no extra lock and no atomics; the
    /// caller reads them back after quiescence.
    obs_active: bool,
    /// Tasks executed by worker threads / the calling thread this run.
    worker_tasks: u64,
    caller_tasks: u64,
    /// First worker-thread pop this run: epoch handoff latency probe.
    first_worker_pop: Option<Instant>,
}

struct Shared<S: PinSource, T: PoolTask<Ctx = S::Ctx>> {
    source: Arc<S>,
    state: Mutex<PoolState<T>>,
    /// Signals workers that a new epoch's queue is ready (or shutdown).
    work_ready: Condvar,
    /// Signals the caller that the last active task completed.
    work_done: Condvar,
}

/// The persistent pool. Workers live as long as the pool; dropping it shuts
/// them down and joins them.
pub struct WorkerPool<S: PinSource, T: PoolTask<Ctx = S::Ctx>> {
    shared: Arc<Shared<S, T>>,
    handles: Vec<JoinHandle<()>>,
    /// Observability attachment; `None` costs one `bool` test per pop.
    obs: Option<PoolObs>,
    /// Flight-recorder attachment; one `pool_run` span per run when live.
    tracer: Option<PoolTracer>,
}

impl<S: PinSource, T: PoolTask<Ctx = S::Ctx>> WorkerPool<S, T> {
    /// Spawns `workers` persistent worker threads against `source` (0 is
    /// valid: every run then executes entirely on the calling thread, which
    /// is optimal on a single-core host).
    pub fn new(source: Arc<S>, workers: usize) -> Self {
        let shared = Arc::new(Shared {
            source,
            state: Mutex::new(PoolState {
                epoch: 0,
                shutdown: false,
                kind: None,
                queue: Vec::new(),
                active: 0,
                done: Vec::new(),
                panicked: false,
                obs_active: false,
                worker_tasks: 0,
                caller_tasks: 0,
                first_worker_pop: None,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            handles,
            obs: None,
            tracer: None,
        }
    }

    /// Attaches observability: queue depth, run/handoff latency, and
    /// worker-vs-caller task counts land in `obs`'s hub, labeled with the
    /// pool name. Replaces any previous attachment.
    pub fn attach_obs(&mut self, obs: PoolObs) {
        self.obs = Some(obs);
    }

    /// Detaches observability, returning the attachment if one was set.
    pub fn detach_obs(&mut self) -> Option<PoolObs> {
        self.obs.take()
    }

    /// Attaches a flight-recorder tracer: each run records one
    /// `pool_run` span (submit → quiescence). Replaces any previous
    /// attachment.
    pub fn attach_tracer(&mut self, tracer: PoolTracer) {
        self.tracer = Some(tracer);
    }

    /// Sets the parent span id for subsequent runs' `pool_run` spans
    /// (no-op without an attached tracer).
    pub fn set_trace_parent(&mut self, parent: crate::obs::SpanId) {
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.set_parent(parent);
        }
    }

    /// Number of persistent worker threads (excluding the calling thread).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The shared context source.
    pub fn source(&self) -> &Arc<S> {
        &self.shared.source
    }

    /// Runs one batch: drains `tasks` into the shared queue, wakes the
    /// workers, participates in the drain, and collects every completed
    /// task into `done_out` (cleared first). Blocks until all tasks have
    /// completed. Both vectors are caller-owned so their capacity is reused
    /// across runs.
    ///
    /// Takes `&mut self` deliberately: one run owns the shared queue until
    /// quiescence, so overlapping runs on a shared pool would corrupt each
    /// other's job kind and steal each other's completed tasks — the
    /// exclusive borrow makes that impossible instead of a runtime
    /// invariant.
    ///
    /// Returns `true` if any task panicked this run. The run still drains
    /// to quiescence first, so every *surviving* task is in `done_out` —
    /// the caller restores those before re-raising (a panicking task's
    /// state is lost with its unwind).
    #[must_use = "a panicked run must be re-raised after restoring tasks"]
    pub fn run(
        &mut self,
        kind: T::Kind,
        tasks: &mut Vec<(usize, T)>,
        done_out: &mut Vec<Done<T>>,
    ) -> bool {
        done_out.clear();
        if tasks.is_empty() {
            return false;
        }
        // The clock is read only when observability or a live tracer is
        // attached.
        let tracing = self.tracer.as_ref().is_some_and(PoolTracer::is_on);
        let run_start = (self.obs.is_some() || tracing).then(Instant::now);
        let depth = tasks.len();
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        debug_assert!(st.queue.is_empty() && st.active == 0 && st.done.is_empty());
        st.kind = Some(kind);
        st.queue.append(tasks);
        st.epoch = st.epoch.wrapping_add(1);
        st.panicked = false;
        st.obs_active = self.obs.is_some();
        st.worker_tasks = 0;
        st.caller_tasks = 0;
        st.first_worker_pop = None;
        if !self.handles.is_empty() && st.queue.len() > 1 {
            // With a single task the caller will run it directly; don't
            // wake workers just to find an empty queue.
            self.shared.work_ready.notify_all();
        }
        st = drain_queue(&self.shared, st, false);
        while st.active > 0 {
            st = self
                .shared
                .work_done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
            st = drain_queue(&self.shared, st, false);
        }
        std::mem::swap(&mut st.done, done_out);
        let panicked = st.panicked;
        if let (Some(obs), Some(start)) = (self.obs.as_mut(), run_start) {
            // Quiescent: workers are parked, so the per-run fields are
            // final. Fold everything into the local buffer and merge —
            // one registry lock per run, held by the caller only.
            let worker_tasks = st.worker_tasks;
            let caller_tasks = st.caller_tasks;
            let handoff = st
                .first_worker_pop
                .map(|t| t.duration_since(start).as_secs_f64());
            drop(st);
            obs.local.observe(obs.queue_depth, depth as f64);
            obs.local
                .observe(obs.run_seconds, start.elapsed().as_secs_f64());
            if let Some(handoff) = handoff {
                obs.local.observe(obs.handoff_seconds, handoff);
            }
            obs.local.add(obs.worker_tasks, worker_tasks);
            obs.local.add(obs.caller_tasks, caller_tasks);
            let total = worker_tasks + caller_tasks;
            if total > 0 {
                obs.local
                    .set(obs.worker_occupancy, worker_tasks as f64 / total as f64);
            }
            obs.local.add(obs.runs, 1);
            obs.hub.registry().merge(&mut obs.local);
            if panicked {
                obs.hub
                    .emit("runtime", format!("task panicked in pool '{}'", obs.name));
            }
        }
        if let (Some(tracer), Some(start)) = (self.tracer.as_mut(), run_start) {
            if tracing {
                tracer.record_run(start, Instant::now());
            }
        }
        panicked
    }
}

/// Pops and executes tasks until the queue is empty, from either the
/// calling thread or a worker. The job kind and the pinned context are read
/// under the same lock as each pop: the queue may already belong to a newer
/// epoch than the one that woke this thread, and a task must never run
/// against a context older than its own pop. A panicking task marks the run
/// panicked — the task is lost with the unwind — instead of leaving
/// `active` stuck and hanging the caller's quiescence wait.
fn drain_queue<'m, S: PinSource, T: PoolTask<Ctx = S::Ctx>>(
    shared: &'m Shared<S, T>,
    mut st: std::sync::MutexGuard<'m, PoolState<T>>,
    is_worker: bool,
) -> std::sync::MutexGuard<'m, PoolState<T>> {
    while let Some((idx, mut task)) = st.queue.pop() {
        if st.obs_active && is_worker && st.first_worker_pop.is_none() {
            // Epoch handoff latency probe: first worker-thread pop of
            // the run. Under the lock this pop already holds.
            st.first_worker_pop = Some(Instant::now());
        }
        let kind = st.kind.expect("queue is non-empty only during a run");
        let ctx = shared.source.pin();
        st.active += 1;
        drop(st);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.run(&ctx, kind)));
        st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.active -= 1;
        if st.obs_active {
            if is_worker {
                st.worker_tasks += 1;
            } else {
                st.caller_tasks += 1;
            }
        }
        match result {
            Ok(output) => st.done.push(Done { idx, task, output }),
            Err(_) => st.panicked = true,
        }
        if st.active == 0 && st.queue.is_empty() {
            shared.work_done.notify_all();
        }
    }
    st
}

impl<S: PinSource, T: PoolTask<Ctx = S::Ctx>> Drop for WorkerPool<S, T> {
    fn drop(&mut self) {
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        // Tolerate workers that died (e.g. a panicking `PinSource`): a
        // `Drop` that panics on a dead worker double-panics during unwind
        // and aborts the whole process — strictly worse than finishing
        // shutdown and reporting. Dead workers surface through the pool's
        // obs event ring when observability is attached.
        let mut dead = 0usize;
        for handle in self.handles.drain(..) {
            if handle.join().is_err() {
                dead += 1;
            }
        }
        if dead > 0 {
            if let Some(obs) = &self.obs {
                obs.hub.emit(
                    "runtime",
                    format!("pool '{}' shut down with {dead} dead worker(s)", obs.name),
                );
            }
        }
    }
}

fn worker_loop<S: PinSource, T: PoolTask<Ctx = S::Ctx>>(shared: &Shared<S, T>) {
    let mut seen_epoch = 0u64;
    loop {
        let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if st.shutdown {
                return;
            }
            if st.epoch != seen_epoch && !st.queue.is_empty() {
                break;
            }
            // Either no new epoch, or its queue was already drained by the
            // caller and the other workers — nothing for us this run.
            seen_epoch = st.epoch;
            st = shared
                .work_ready
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        seen_epoch = st.epoch;
        let st = drain_queue(shared, st, true);
        drop(st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A task that squares its payload, optionally panicking, and records
    /// the context version it ran against.
    struct Square {
        value: u64,
        seen_ctx: u64,
        panic_on: Option<u64>,
    }

    impl PoolTask for Square {
        type Ctx = u64;
        type Kind = u64;
        type Output = u64;

        fn run(&mut self, ctx: &u64, kind: u64) -> u64 {
            if self.panic_on == Some(self.value) {
                panic!("boom");
            }
            self.seen_ctx = *ctx;
            self.value * self.value + kind
        }
    }

    /// A context source whose pinned value is a live atomic counter.
    struct Versioned(AtomicU64);

    impl PinSource for Versioned {
        type Ctx = u64;

        fn pin(&self) -> u64 {
            self.0.load(Ordering::Acquire)
        }
    }

    fn tasks(n: u64) -> Vec<(usize, Square)> {
        (0..n)
            .map(|i| {
                (
                    i as usize,
                    Square {
                        value: i,
                        seen_ctx: u64::MAX,
                        panic_on: None,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn results_identical_across_worker_counts() {
        for workers in [0usize, 1, 3] {
            let mut pool = WorkerPool::new(Arc::new(Versioned(AtomicU64::new(7))), workers);
            assert_eq!(pool.workers(), workers);
            let mut queue = tasks(20);
            let mut done = Vec::new();
            let panicked = pool.run(100, &mut queue, &mut done);
            assert!(!panicked);
            assert!(queue.is_empty(), "run drains the task vector");
            assert_eq!(done.len(), 20);
            done.sort_unstable_by_key(|d| d.idx);
            for (i, d) in done.iter().enumerate() {
                assert_eq!(d.idx, i);
                assert_eq!(d.output, (i as u64) * (i as u64) + 100);
                assert_eq!(d.task.seen_ctx, 7, "context pinned from the source");
            }
        }
    }

    #[test]
    fn buffers_and_workers_are_reused_across_runs() {
        let mut pool = WorkerPool::new(Arc::new(Versioned(AtomicU64::new(0))), 2);
        let mut queue = Vec::new();
        let mut done = Vec::new();
        for run in 0..50u64 {
            pool.source().0.store(run, Ordering::Release);
            queue.extend(tasks(8));
            let panicked = pool.run(run, &mut queue, &mut done);
            assert!(!panicked);
            assert_eq!(done.len(), 8, "run {run}");
            for d in &done {
                assert_eq!(d.output, (d.idx as u64).pow(2) + run);
                assert_eq!(d.task.seen_ctx, run, "stale context pinned");
            }
        }
    }

    #[test]
    fn empty_run_is_a_noop() {
        let mut pool: WorkerPool<NoContext, Noop> = WorkerPool::new(Arc::new(NoContext), 1);
        let mut done = vec![Done {
            idx: 9,
            task: Noop,
            output: (),
        }];
        assert!(!pool.run((), &mut Vec::new(), &mut done));
        assert!(done.is_empty(), "done_out is cleared even with no tasks");
    }

    struct Noop;

    impl PoolTask for Noop {
        type Ctx = ();
        type Kind = ();
        type Output = ();

        fn run(&mut self, _: &(), (): ()) {}
    }

    #[test]
    fn panicked_task_reports_and_survivors_return() {
        let mut pool = WorkerPool::new(Arc::new(Versioned(AtomicU64::new(0))), 2);
        let mut queue = tasks(10);
        queue[4].1.panic_on = Some(4);
        let mut done = Vec::new();
        let panicked = pool.run(0, &mut queue, &mut done);
        assert!(panicked, "panic must be reported");
        assert_eq!(done.len(), 9, "all surviving tasks return");
        assert!(done.iter().all(|d| d.idx != 4));
        // The pool stays usable for the next run.
        let mut queue = tasks(3);
        let mut done = Vec::new();
        assert!(!pool.run(1, &mut queue, &mut done));
        assert_eq!(done.len(), 3);
    }

    #[test]
    fn attached_obs_accounts_every_task_without_changing_results() {
        let hub = pinnsoc_obs::ObsHub::new();
        let mut pool = WorkerPool::new(Arc::new(Versioned(AtomicU64::new(7))), 2);
        pool.attach_obs(PoolObs::new(&hub, "test"));
        let mut queue = tasks(12);
        let mut done = Vec::new();
        assert!(!pool.run(3, &mut queue, &mut done));
        assert_eq!(done.len(), 12);
        done.sort_unstable_by_key(|d| d.idx);
        for (i, d) in done.iter().enumerate() {
            assert_eq!(d.output, (i as u64) * (i as u64) + 3);
        }
        let snap = hub.snapshot();
        assert_eq!(
            snap.metrics
                .counter_total("pinnsoc_runtime_pool_runs_total"),
            1
        );
        // Every task is attributed to exactly one side of the handoff.
        let executed = snap
            .metrics
            .counter_total("pinnsoc_runtime_pool_worker_tasks_total")
            + snap
                .metrics
                .counter_total("pinnsoc_runtime_pool_caller_tasks_total");
        assert_eq!(executed, 12);
        assert!(pool.detach_obs().is_some());
        // Detached: the next run leaves the series untouched.
        let mut queue = tasks(4);
        assert!(!pool.run(0, &mut queue, &mut done));
        assert_eq!(
            hub.snapshot()
                .metrics
                .counter_total("pinnsoc_runtime_pool_runs_total"),
            1
        );
    }

    /// A [`PinSource`] that kills worker threads: `pin` panics on unnamed
    /// threads (pool workers), after rendezvousing with the caller's
    /// in-flight task so the worker is guaranteed to have engaged. Test
    /// threads carry the test's name, so the caller pins harmlessly.
    struct WorkerKiller(std::sync::Barrier);

    impl PinSource for WorkerKiller {
        type Ctx = ();

        fn pin(&self) {
            if std::thread::current().name().is_none() {
                self.0.wait();
                panic!("worker dies with the state lock held");
            }
        }
    }

    /// Blocks until the worker has reached its fatal `pin`, so the worker
    /// death is deterministic, not a race.
    struct Rendezvous(Arc<WorkerKiller>);

    impl PoolTask for Rendezvous {
        type Ctx = ();
        type Kind = ();
        type Output = ();

        fn run(&mut self, _: &(), (): ()) {
            self.0 .0.wait();
        }
    }

    #[test]
    fn dead_worker_poisons_nothing_and_drop_survives() {
        let source = Arc::new(WorkerKiller(std::sync::Barrier::new(2)));
        let hub = pinnsoc_obs::ObsHub::new();
        let mut pool = WorkerPool::new(Arc::clone(&source), 1);
        pool.attach_obs(PoolObs::new(&hub, "doomed"));
        // Two tasks: the caller pops one and blocks in it until the worker
        // has popped the other and died inside `pin` — with the state lock
        // held, poisoning it. The worker's task is lost with the unwind.
        let mut queue = vec![
            (0, Rendezvous(Arc::clone(&source))),
            (1, Rendezvous(Arc::clone(&source))),
        ];
        let mut done = Vec::new();
        let panicked = pool.run((), &mut queue, &mut done);
        assert!(!panicked, "pin deaths are not task panics");
        assert_eq!(done.len(), 1, "the worker's popped task died with it");

        // The poisoned lock is recovered, not propagated: the pool keeps
        // serving runs on the calling thread (named, so it pins fine). A
        // one-party barrier makes these tasks complete instantly.
        let solo = Arc::new(WorkerKiller(std::sync::Barrier::new(1)));
        let mut queue = vec![
            (0, Rendezvous(Arc::clone(&solo))),
            (1, Rendezvous(Arc::clone(&solo))),
        ];
        assert!(!pool.run((), &mut queue, &mut done));
        assert_eq!(done.len(), 2);

        // Drop joins the dead worker without double-panicking, and the
        // death surfaces through the obs event ring.
        drop(pool);
        let events = hub.snapshot().events;
        assert!(
            events
                .iter()
                .any(|e| e.source == "runtime" && e.message.contains("1 dead worker")),
            "dead worker not surfaced: {events:?}"
        );
    }

    #[test]
    fn drop_joins_idle_workers() {
        let mut pool: WorkerPool<NoContext, Noop> = WorkerPool::new(Arc::new(NoContext), 4);
        let mut queue = vec![(0, Noop), (1, Noop)];
        let mut done = Vec::new();
        assert!(!pool.run((), &mut queue, &mut done));
        drop(pool); // must not hang or panic
    }
}
