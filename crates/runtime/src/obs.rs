//! Pool observability: queue depth, worker occupancy, and epoch handoff
//! latency per named pool.
//!
//! The pool's hot path is the state mutex every pop already takes, so the
//! instrumentation adds **no new locks and no atomics**: per-run counters
//! are plain fields in the pool state, bumped under the lock each thread
//! already holds, and the *calling* thread folds them into a
//! [`LocalMetrics`] buffer merged into the shared registry once per run.
//! Workers never touch the registry. With no [`PoolObs`] attached, the
//! per-pop cost is a single `bool` test.

use pinnsoc_obs::{
    FlightRecorder, LocalMetrics, MetricId, ObsHub, TraceSink, COUNT_BUCKETS, DURATION_BUCKETS,
};
use std::sync::Arc;
use std::time::Instant;

pub use pinnsoc_obs::SpanId;

/// Observability attachment for one [`WorkerPool`](crate::WorkerPool),
/// labeling every series with the pool's name (`pool="fleet"`,
/// `pool="train"`, ...). Created with [`PoolObs::new`] and handed to
/// `WorkerPool::attach_obs`.
#[derive(Debug)]
pub struct PoolObs {
    pub(crate) hub: Arc<ObsHub>,
    pub(crate) local: LocalMetrics,
    pub(crate) name: String,
    /// Tasks queued at run submit (histogram, per run).
    pub(crate) queue_depth: MetricId,
    /// Wall time of one full run, submit to quiescence.
    pub(crate) run_seconds: MetricId,
    /// Submit → first worker pop: the epoch/condvar handoff latency.
    pub(crate) handoff_seconds: MetricId,
    /// Tasks executed by worker threads / by the calling thread.
    pub(crate) worker_tasks: MetricId,
    pub(crate) caller_tasks: MetricId,
    /// Fraction of the last run's tasks executed by workers.
    pub(crate) worker_occupancy: MetricId,
    /// Completed runs.
    pub(crate) runs: MetricId,
}

impl PoolObs {
    /// Registers the `pinnsoc_runtime_pool_*` series for a pool named
    /// `pool` (idempotent: re-attaching reuses the same series).
    pub fn new(hub: &Arc<ObsHub>, pool: &str) -> Self {
        let reg = hub.registry();
        let labels: &[(&str, &str)] = &[("pool", pool)];
        let queue_depth = reg.histogram_with(
            "pinnsoc_runtime_pool_queue_depth",
            "Tasks queued at run submit.",
            labels,
            COUNT_BUCKETS,
        );
        let run_seconds = reg.histogram_with(
            "pinnsoc_runtime_pool_run_seconds",
            "Wall time of one pool run, submit to quiescence.",
            labels,
            DURATION_BUCKETS,
        );
        let handoff_seconds = reg.histogram_with(
            "pinnsoc_runtime_pool_handoff_seconds",
            "Latency from run submit to the first worker-thread pop.",
            labels,
            DURATION_BUCKETS,
        );
        let worker_tasks = reg.counter_with(
            "pinnsoc_runtime_pool_worker_tasks_total",
            "Tasks executed by worker threads.",
            labels,
        );
        let caller_tasks = reg.counter_with(
            "pinnsoc_runtime_pool_caller_tasks_total",
            "Tasks executed by the calling thread.",
            labels,
        );
        let worker_occupancy = reg.gauge_with(
            "pinnsoc_runtime_pool_worker_occupancy",
            "Fraction of the last run's tasks executed by workers.",
            labels,
        );
        let runs = reg.counter_with(
            "pinnsoc_runtime_pool_runs_total",
            "Completed pool runs.",
            labels,
        );
        Self {
            hub: Arc::clone(hub),
            local: reg.local(),
            name: pool.to_string(),
            queue_depth,
            run_seconds,
            handoff_seconds,
            worker_tasks,
            caller_tasks,
            worker_occupancy,
            runs,
        }
    }

    /// The hub this attachment reports into.
    pub fn hub(&self) -> &Arc<ObsHub> {
        &self.hub
    }

    /// The pool label on every series.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Flight-recorder attachment for one pool: records one `pool_run` span
/// per run (submit → quiescence, on the calling thread) so a trace shows
/// exactly where tick time goes to pool orchestration vs task bodies.
///
/// The caller owning the pool parents each run under its current span via
/// [`PoolTracer::set_parent`] (the fleet engine points it at its tick
/// span). The sink is merged into the recorder once per run, by the
/// calling thread, after quiescence — workers never touch it.
#[derive(Debug)]
pub struct PoolTracer {
    pub(crate) sink: TraceSink,
    /// Trace process row (0 = a standalone pool; engines pass their lane
    /// pid so pool spans nest inside the lane).
    pub(crate) pid: u32,
    pub(crate) parent: SpanId,
}

impl PoolTracer {
    /// Creates a tracer recording into `recorder` under process row
    /// `pid`.
    pub fn new(recorder: &Arc<FlightRecorder>, pid: u32) -> Self {
        Self {
            sink: recorder.sink(),
            pid,
            parent: 0,
        }
    }

    /// Sets the parent span for subsequent runs' `pool_run` spans.
    pub fn set_parent(&mut self, parent: SpanId) {
        self.parent = parent;
    }

    /// Whether the recorder currently accepts spans.
    pub(crate) fn is_on(&self) -> bool {
        self.sink.is_on()
    }

    /// Records one run's span and folds the sink into the recorder (the
    /// run is quiescent; one recorder lock per run, caller-held only).
    pub(crate) fn record_run(&mut self, start: Instant, end: Instant) {
        self.sink
            .record("pool_run", "runtime", self.pid, 0, self.parent, start, end);
        let recorder = Arc::clone(self.sink.recorder());
        recorder.merge(&mut self.sink);
    }
}
