//! # pinnsoc-runtime
//!
//! Shared execution runtime for the `pinnsoc` workspace.
//!
//! The one abstraction here is [`WorkerPool`]: a persistent, epoch-signalled
//! worker pool whose tasks move *by ownership* through a shared queue. It
//! was born as the serving engine's batch-pass backbone (`pinnsoc-fleet`)
//! and is now shared with the training layer (`pinnsoc::train_many`), so
//! both sides of the train→serve pipeline scale through the same machinery:
//!
//! - Workers are spawned once and **park between runs**; a run hands its
//!   tasks over by bumping an epoch counter and waking the workers through a
//!   condvar. Steady-state runs spawn no threads and perform no allocations
//!   in the pool machinery (queue and result buffers are caller-owned
//!   vectors, reused across runs).
//! - The **calling thread participates** in draining the queue — on a
//!   single-core host it typically does all the work itself before a worker
//!   is even scheduled, so `workers = 0` is a valid (and optimal) setup
//!   there.
//! - Tasks run against a **pinned context** fetched from a [`PinSource`]
//!   under the same lock as each queue pop (the fleet pins a hot-swappable
//!   model snapshot; training pins nothing, via [`NoContext`]). A task
//!   never runs against a context older than its own pop.
//! - Everything is safe code: ownership moves through the queue instead of
//!   being borrowed across threads — no `unsafe`, no scoped threads, and no
//!   per-task locks on the hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod obs;
pub mod pool;

pub use obs::{PoolObs, PoolTracer};
pub use pool::{Done, NoContext, PinSource, PoolTask, WorkerPool};
