//! Fig. 4 — LG dataset: SoC-prediction MAE at test horizons of 30 s, 50 s,
//! and 70 s for the six training configurations, averaged over five seeds.
//!
//! Paper reference points: matched-horizon PINNs achieve 0.0217 / 0.0218 /
//! 0.0210 (−3 % / −69 % / −82 % vs No-PINN); PINN-All is within 1.8 % of the
//! best; No-PINN degrades sharply as the horizon grows beyond the training
//! data.
//!
//! ```text
//! cargo run -p pinnsoc-bench --release --bin fig4_lg
//! ```

use pinnsoc::{PinnVariant, TrainConfig};
use pinnsoc_bench::{print_horizon_table, write_results_json, HorizonSweep};
use pinnsoc_data::{generate_lg, LgConfig};

fn lg_config(variant: PinnVariant, seed: u64) -> TrainConfig {
    TrainConfig::lg(variant, seed)
}

fn main() {
    let horizons = [30.0, 50.0, 70.0];
    println!("=== Fig. 4: LG — SoC prediction MAE by physics-loss configuration ===\n");
    println!("generating LG-like dataset (7 mixed train cycles, 4 schedules + mixed test)...");
    let dataset = generate_lg(&LgConfig::default());
    println!(
        "train: {} cycles / {} records; test: {} cycles / {} records\n",
        dataset.train.len(),
        dataset.train_len(),
        dataset.test.len(),
        dataset.test_len()
    );

    let sweep = HorizonSweep {
        dataset: &dataset,
        variants: vec![
            PinnVariant::NoPinn,
            PinnVariant::PhysicsOnly,
            PinnVariant::pinn_single(30.0),
            PinnVariant::pinn_single(50.0),
            PinnVariant::pinn_single(70.0),
            PinnVariant::pinn_all(&[30.0, 50.0, 70.0]),
        ],
        test_horizons_s: horizons.to_vec(),
        seeds: vec![0, 1, 2, 3, 4],
        make_config: lg_config,
    };
    let results = sweep.run();
    print_horizon_table(&results, &horizons);
    write_results_json("fig4_lg", &results).expect("write results");
}
