//! Observability overhead baseline: proves `pinnsoc-obs` is free when off
//! and near-free when on, and that turning it on changes **no numbers**.
//!
//! Three checks, mirroring the layers the obs hub instruments:
//!
//! 1. **Fleet overhead + bit-identity** — two identical [`FleetEngine`]s
//!    run the same ingest/process ticks, one with a hub attached. The
//!    median tick must not slow down by more than 2% (with a small
//!    absolute-noise floor for CI boxes), and every per-cell estimate
//!    must be bit-identical.
//! 2. **Scenario bit-identity** — the smoke suite runs through a plain
//!    and an observed [`ScenarioRunner`]; the deterministic reports must
//!    serialize byte-for-byte equal.
//! 3. **Adaptation bit-identity** — a compact closed-loop adaptation
//!    session (drift → harvest → fine-tune → gate → swap) runs obs-off
//!    and obs-on; the promoted model, events, and report must match
//!    bit-for-bit, i.e. instrumentation never shifts a promotion
//!    decision.
//!
//! Run with `cargo run --release -p pinnsoc-bench --bin obs_baseline` to
//! regenerate `BENCH_obs.json` (overhead numbers, tick quantiles from the
//! live histograms, series/event counts). Pass `--smoke` for the CI-sized
//! gate: same assertions, smaller fleet, no file written.
//!
//! The binary also owns the process's counting allocator and installs it
//! into [`pinnsoc_obs::alloc_hook`], so training epochs recorded during
//! the adaptation session carry real allocation deltas.

use pinnsoc_adapt::{AdaptationConfig, AdaptationEngine, DriftConfig, GateConfig, HarvestConfig};
use pinnsoc_bench::{demo_serving_model, demo_training_dataset, host_info, HostInfo};
use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, SocEstimate, Telemetry};
use pinnsoc_obs::{FlightRecorder, ObsHub, SampleValue};
use pinnsoc_scenario::{
    run_scenario_observed, smoke_suite, standard_suite, EngineSpec, Scenario, ScenarioRunner,
};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Serving protocol constants — same as `fleet_baseline` so the overhead
/// numbers are measured against the recorded perf floor.
const SHARDS: usize = 8;
const MICRO_BATCH: usize = 512;
/// Suite seed shared with the other baselines.
const SUITE_SEED: u64 = 42;
/// The overhead budget: obs-on median tick vs obs-off median tick.
const MAX_OVERHEAD_FRAC: f64 = 0.02;
/// Absolute noise floor for the overhead check: below this many seconds
/// of difference, scheduler jitter dominates and the relative bound is
/// meaningless (smoke fleets tick in a millisecond or two).
const NOISE_FLOOR_S: f64 = 500e-6;

/// Counts allocation events process-wide; [`alloc_count`] is installed
/// into `pinnsoc_obs::alloc_hook` so library instrumentation (training
/// epochs) can report allocation deltas.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[derive(Debug, Serialize)]
struct FleetOverhead {
    fleet_size: usize,
    reps: usize,
    base_median_tick_s: f64,
    obs_median_tick_s: f64,
    overhead_pct: f64,
    /// p50/p99 of `pinnsoc_fleet_tick_seconds` from the live histogram —
    /// the exporter-side view of the same ticks.
    obs_tick_p50_s: f64,
    obs_tick_p99_s: f64,
    /// Flight-recorder spans captured while the observed engine ran
    /// (the overhead number above includes recording them).
    trace_spans: usize,
}

#[derive(Debug, Serialize)]
struct Baseline {
    description: String,
    max_overhead_frac: f64,
    host: HostInfo,
    fleet: FleetOverhead,
    scenario_reports_bit_identical: bool,
    adapt_sessions_bit_identical: bool,
    /// Series registered across fleet + runtime + train + scenario +
    /// adapt after the adaptation session.
    metric_series: usize,
    /// Ring events retained after the adaptation session.
    events_retained: usize,
}

fn new_engine(model: &pinnsoc::SocModel, fleet_size: usize) -> FleetEngine {
    let mut engine = FleetEngine::new(
        model.clone(),
        FleetConfig {
            shards: SHARDS,
            micro_batch: MICRO_BATCH,
            workers: 0,
            ekf_fallback: None,
            ..FleetConfig::default()
        },
    );
    for id in 0..fleet_size as u64 {
        engine.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        );
    }
    engine
}

/// One serving tick: ingest a report per cell, then process. Returns the
/// wall time of the whole tick.
fn run_tick(engine: &mut FleetEngine, fleet_size: usize, tick: f64) -> f64 {
    let start = Instant::now();
    for id in 0..fleet_size as u64 {
        engine.ingest(
            id,
            Telemetry {
                time_s: tick,
                voltage_v: 3.7 - 0.2 * (id as f64 / fleet_size as f64),
                current_a: 1.0,
                temperature_c: 25.0,
            },
        );
    }
    let totals = black_box(engine.process_pending());
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(totals, (fleet_size, fleet_size), "engine dropped cells");
    wall
}

/// Median tick times for both engines, interleaved tick-for-tick (after
/// one warm-up tick each) so machine-load drift during the run biases
/// neither engine. Both see the identical telemetry sequence.
fn median_ticks(
    base: &mut FleetEngine,
    observed: &mut FleetEngine,
    fleet_size: usize,
    reps: usize,
) -> (f64, f64) {
    run_tick(base, fleet_size, 1.0);
    run_tick(observed, fleet_size, 1.0);
    let mut base_samples = Vec::with_capacity(reps);
    let mut obs_samples = Vec::with_capacity(reps);
    for rep in 0..reps {
        let tick = 2.0 + rep as f64;
        base_samples.push(run_tick(base, fleet_size, tick));
        obs_samples.push(run_tick(observed, fleet_size, tick));
    }
    base_samples.sort_by(f64::total_cmp);
    obs_samples.sort_by(f64::total_cmp);
    (
        base_samples[base_samples.len() / 2],
        obs_samples[obs_samples.len() / 2],
    )
}

/// Every cell's estimate, bit-exact (`f64::to_bits`).
fn estimates(engine: &FleetEngine, fleet_size: usize) -> Vec<(u64, SocEstimate)> {
    (0..fleet_size as u64)
        .map(|id| {
            let (soc, source) = engine.estimate(id).expect("registered cell");
            (soc.to_bits(), source)
        })
        .collect()
}

fn fleet_check(smoke: bool) -> (FleetOverhead, Arc<ObsHub>) {
    let fleet_size = if smoke { 2_000 } else { 10_000 };
    let reps = if smoke { 7 } else { 21 };
    let model = untrained_model();

    println!("fleet overhead: {fleet_size} cells, {reps} interleaved timed ticks per engine...");
    let mut base = new_engine(&model, fleet_size);
    let hub = ObsHub::new();
    // The observed engine carries the full instrumentation load: metrics
    // AND the flight recorder, so the overhead budget covers causal span
    // capture too.
    let recorder = FlightRecorder::with_default_capacity();
    let mut observed = new_engine(&model, fleet_size);
    observed.attach_obs(&hub);
    observed.attach_tracer(&recorder, 1);
    let (base_median, obs_median) = median_ticks(&mut base, &mut observed, fleet_size, reps);

    assert_eq!(
        estimates(&base, fleet_size),
        estimates(&observed, fleet_size),
        "attaching obs + flight recorder must leave every cell estimate bit-identical"
    );
    let trace_spans = recorder.len();
    assert_eq!(recorder.dropped_total(), 0, "recorder ring must not wrap");
    let spans = recorder.drain();
    assert_eq!(
        spans.iter().filter(|s| s.name == "engine_tick").count(),
        reps + 1,
        "one engine_tick span per process_pending call"
    );
    assert_eq!(
        spans.iter().filter(|s| s.name == "pass").count(),
        (reps + 1) * SHARDS,
        "one pass span per shard per tick"
    );

    let overhead = (obs_median - base_median) / base_median;
    println!(
        "  base {:.3} ms | obs {:.3} ms | overhead {:+.2}%",
        base_median * 1e3,
        obs_median * 1e3,
        overhead * 100.0
    );
    assert!(
        overhead < MAX_OVERHEAD_FRAC || (obs_median - base_median) < NOISE_FLOOR_S,
        "obs overhead {:.2}% exceeds {:.0}% of tick time ({:.3} ms vs {:.3} ms)",
        overhead * 100.0,
        MAX_OVERHEAD_FRAC * 100.0,
        obs_median * 1e3,
        base_median * 1e3,
    );

    // Exporter-side view of the same ticks: the live histogram must have
    // seen exactly the warm-up + timed ticks and agree on magnitude.
    let snapshot = hub.snapshot();
    let tick_hist = snapshot
        .metrics
        .find("pinnsoc_fleet_tick_seconds", &[])
        .map(|sample| match &sample.value {
            SampleValue::Histogram(h) => h.clone(),
            other => panic!("tick series must be a histogram, got {other:?}"),
        })
        .expect("observed engine must export pinnsoc_fleet_tick_seconds");
    assert_eq!(
        tick_hist.count,
        (reps + 1) as u64,
        "tick histogram must record every process_pending call"
    );

    (
        FleetOverhead {
            fleet_size,
            reps,
            base_median_tick_s: base_median,
            obs_median_tick_s: obs_median,
            overhead_pct: overhead * 100.0,
            obs_tick_p50_s: tick_hist.quantile(0.5),
            obs_tick_p99_s: tick_hist.quantile(0.99),
            trace_spans,
        },
        hub,
    )
}

fn scenario_check(model: &pinnsoc::SocModel) -> bool {
    println!("scenario bit-identity: smoke suite, plain vs observed runner...");
    let suite = smoke_suite(SUITE_SEED);
    let control = ScenarioRunner::default().run(&suite, model);
    let hub = ObsHub::new();
    let observed = ScenarioRunner::default()
        .observed(Arc::clone(&hub))
        .run(&suite, model);
    let control_json = serde_json::to_string(&control.report).expect("serializable");
    let observed_json = serde_json::to_string(&observed.report).expect("serializable");
    assert_eq!(
        control_json, observed_json,
        "observed scenario report must be bit-identical to the control"
    );
    assert!(
        hub.snapshot()
            .metrics
            .counter_total("pinnsoc_scenario_runs_total")
            == suite.len() as u64,
        "observed runner must record one run per scenario"
    );
    println!("  OK: {} scenario(s) byte-for-byte equal", suite.len());
    true
}

/// The compact closed-loop adaptation session: the `drifting-fleet`
/// scenario at smoke scale with an [`AdaptationEngine`] riding along —
/// small enough to run twice, real enough to promote.
fn adaptation_config() -> AdaptationConfig {
    let gate = pinnsoc_scenario::gate_suite(SUITE_SEED)
        .into_iter()
        .map(|mut s| {
            s.population.cells = 4;
            s.timing.duration_s = 120.0;
            s
        })
        .collect();
    AdaptationConfig {
        drift: DriftConfig {
            window: 256,
            threshold: 0.08,
            min_samples: 64,
        },
        harvest: HarvestConfig {
            reservoir_capacity: 2048,
            seed: SUITE_SEED,
            min_dt_s: 2.0,
            rated_capacity_ah: 3.0,
            ..HarvestConfig::default()
        },
        fine_tune: pinnsoc::TrainConfig {
            b1_epochs: 30,
            b2_epochs: 0,
            batch_size: 64,
            learning_rate: 1e-3,
            ..pinnsoc::TrainConfig::sandia(pinnsoc::PinnVariant::NoPinn, 0)
        },
        candidate_seeds: vec![1, 2],
        gate: GateConfig {
            suite: gate,
            runner_workers: 0,
            engine: EngineSpec {
                shards: 2,
                micro_batch: 32,
                workers: 0,
            },
            min_improvement: 0.0,
        },
        train_workers: 0,
        lab_cycles: 4,
        min_reservoir: 64,
        cooldown_ticks: 10,
        quantize: None,
    }
}

fn session_scenario() -> Scenario {
    let mut scenario = standard_suite(SUITE_SEED)
        .into_iter()
        .find(|s| s.name == "drifting-fleet")
        .expect("standard suite carries the drift scenario");
    scenario.environment = pinnsoc_scenario::EnvSchedule::Ramp {
        from_c: 40.0,
        to_c: -5.0,
    };
    scenario.population.cells = 8;
    scenario.timing.duration_s = 600.0;
    scenario
}

/// Runs the session, optionally instrumented, and returns the engine plus
/// its deterministic fingerprint (promoted model, events, report).
fn run_session(model: &pinnsoc::SocModel, hub: Option<&Arc<ObsHub>>) -> (AdaptationEngine, String) {
    let lab = Arc::new(demo_training_dataset());
    let mut adapt = AdaptationEngine::new(adaptation_config(), lab);
    if let Some(hub) = hub {
        adapt.attach_obs(hub);
    }
    run_scenario_observed(
        &session_scenario(),
        model,
        &EngineSpec {
            shards: 4,
            micro_batch: 64,
            workers: 0,
        },
        &mut adapt,
    );
    let promoted = adapt
        .promoted()
        .map(|m| serde_json::to_string(&**m).expect("serializable"))
        .unwrap_or_default();
    let events = serde_json::to_string(&adapt.events().to_vec()).expect("serializable");
    let report = serde_json::to_string(&adapt.report()).expect("serializable");
    (adapt, format!("{promoted}|{events}|{report}"))
}

fn adapt_check(model: &pinnsoc::SocModel) -> (bool, usize, usize) {
    println!("adaptation bit-identity: closed-loop session, obs off vs on...");
    let (_, control) = run_session(model, None);
    let hub = ObsHub::new();
    let (adapt, observed) = run_session(model, Some(&hub));
    assert_eq!(
        control, observed,
        "instrumentation must not shift any promotion decision"
    );
    let report = adapt.report();
    assert!(
        report.swaps >= 1,
        "the drifting session must promote at least one adapted model"
    );
    let snapshot = hub.snapshot();
    assert_eq!(
        snapshot.metrics.counter_total("pinnsoc_adapt_ticks_total"),
        report.ticks_observed,
        "adapt tick counter must match the report"
    );
    assert!(
        snapshot.metrics.counter_total("pinnsoc_train_epochs_total") > 0,
        "fine-tune epochs must flow into the train series"
    );
    println!(
        "  OK: {} swap(s) identical; {} metric series, {} ring events",
        report.swaps,
        snapshot.metrics.metrics.len(),
        snapshot.events.len()
    );
    (true, snapshot.metrics.metrics.len(), snapshot.events.len())
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    assert!(
        pinnsoc_obs::alloc_hook::install(alloc_count),
        "obs_baseline owns the process's counting allocator"
    );

    let (fleet, _fleet_hub) = fleet_check(smoke);

    // Identity checks need determinism, not scale: both modes use the
    // smoke-sized model and suites.
    println!("training the serving model for the closed-loop checks...");
    let model = demo_serving_model(true);
    let scenario_ok = scenario_check(&model);
    let (adapt_ok, metric_series, events_retained) = adapt_check(&model);

    if smoke {
        println!("\nsmoke run OK (BENCH_obs.json untouched)");
        return;
    }

    let baseline = Baseline {
        description: "Observability overhead and bit-identity: identical fleets ticked with \
                      and without an attached ObsHub (median tick overhead budgeted at 2%), \
                      plus byte-for-byte report equality for an observed scenario suite and \
                      an observed closed-loop adaptation session"
            .into(),
        max_overhead_frac: MAX_OVERHEAD_FRAC,
        host: host_info(0),
        fleet,
        scenario_reports_bit_identical: scenario_ok,
        adapt_sessions_bit_identical: adapt_ok,
        metric_series,
        events_retained,
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serializable");
    std::fs::write(&path, json).expect("write BENCH_obs.json");
    println!("\nwrote BENCH_obs.json");
}
