//! Kernel microbench: f32 scalar vs f32 SIMD vs int8 on the 2,322-param
//! model's GEMM shapes, written to `BENCH_simd.json` at the workspace root.
//!
//! Run with `cargo run --release -p pinnsoc-bench --bin simd_baseline`.
//! Pass `--smoke` for a CI-sized run (few reps, relaxed speedup floors)
//! that sanity-checks kernel dispatch without touching `BENCH_simd.json`.
//!
//! The full run asserts the perf contract from the kernel-v2 work. Both
//! headline claims live on the per-shape microbenches, where per-call and
//! cross-layer overhead is amortized; the end-to-end forward asserts
//! conservative floors on top:
//!
//! - **f32 SIMD ≥ 2× scalar** on the serving model's GEMM shapes (best
//!   shape). The hand kernels use separate multiply + add per step (FMA
//!   would break the bit-exactness contract), so AVX2 peak throughput is
//!   exactly 2× the SSE2 peak the autovectorized scalar reference
//!   reaches — the end-to-end forward (which shares epilogue/dispatch
//!   overhead across paths and compresses any ratio toward 1) instead
//!   asserts a conservative ≥ 1.4× floor.
//! - **int8 ≥ 1.5× SIMD f32** on the serving model's GEMM shapes (best
//!   shape): one quantized layer — input quantization included — against
//!   the f32 fused GEMM on the same shape's best SIMD path. End-to-end,
//!   the quantized chain also pays the output layer's single-column
//!   epilogue that no wide kernel can amortize, so the full forward
//!   asserts a conservative ≥ 1.3× floor over best SIMD f32.
//!
//! The smoke run keeps the same direction with loose floors (shape ≥
//! 1.2×/1.0×, forward ≥ 1.0×/0.9×) so a CI host under noisy neighbours
//! does not flake, while an outright dispatch regression (SIMD slower
//! than scalar) still fails. All timings are best-of-`reps` — this host
//! class shows 2× run-to-run swings from neighbour contention, and the
//! minimum estimates uncontended speed, which is what the contract is
//! about.

use pinnsoc_bench::{host_info_with_mode, HostInfo};
use pinnsoc_nn::kernel::{self, KernelPath};
use pinnsoc_nn::{
    Activation, CalibrationStats, InferScratch, Init, Matrix, Mlp, PackedWeights, QuantScratch,
    QuantizedMlp,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// Fleet serving micro-batch (keep in sync with `fleet_baseline`).
const MICRO_BATCH: usize = 512;
/// The serving MLP widths (both PINN branches use these hidden layers).
const WIDTHS: [usize; 5] = [3, 16, 32, 16, 1];

#[derive(Debug, Serialize)]
struct ShapeResult {
    /// Batch rows (m), GEMM depth (k), output columns (n).
    m: usize,
    k: usize,
    n: usize,
    /// Nanoseconds per fused GEMM call, per path (absent paths the host
    /// cannot run are omitted).
    ns_per_call: Vec<(String, f64)>,
    /// f32 GFLOP/s per path (2·m·k·n per call).
    gflops: Vec<(String, f64)>,
    /// Nanoseconds per int8 quantized layer forward on the best path
    /// (quantize + fused GEMM/epilogue), same shape.
    int8_ns_per_call: f64,
    /// Best f32 SIMD time over the int8 time on this shape.
    int8_speedup_vs_simd: f64,
}

#[derive(Debug, Serialize)]
struct ForwardResult {
    batch: usize,
    /// Microseconds per full fused forward pass, per f32 path.
    f32_us_per_batch: Vec<(String, f64)>,
    /// Microseconds per int8 quantized forward pass (best path).
    int8_us_per_batch: f64,
    /// Best f32 SIMD time over scalar time.
    simd_speedup_vs_scalar: f64,
    /// int8 time over best f32 SIMD time.
    int8_speedup_vs_simd: f64,
    /// Best per-shape SIMD-vs-scalar GEMM throughput ratio (the ≥ 2×
    /// kernel contract — see the module docs).
    gemm_simd_speedup_vs_scalar: f64,
    /// Best per-shape int8-vs-SIMD-f32 ratio (the ≥ 1.5× quantization
    /// contract — see the module docs).
    int8_shape_speedup_vs_simd: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    description: String,
    model: String,
    reps: usize,
    host: HostInfo,
    paths_measured: Vec<String>,
    shapes: Vec<ShapeResult>,
    forward: ForwardResult,
}

/// Minimum seconds per call of `f` over `reps` timed repetitions (after
/// one warm-up call). The minimum, not the median: shared hosts show
/// long contended stretches that shift the median run-to-run, while the
/// fastest observed run converges on the uncontended speed the kernel
/// contract is about.
fn min_time(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect(),
    )
}

/// Every kernel path the host can actually execute, scalar first.
fn host_paths() -> Vec<KernelPath> {
    [KernelPath::Scalar, KernelPath::Sse2, KernelPath::Avx2]
        .into_iter()
        .filter(|&p| p <= kernel::detect())
        .collect()
}

/// Times one fused GEMM shape (`m×k · k×n` + bias + ReLU) per f32 path,
/// plus the same shape as a single int8 quantized layer (input
/// quantization included) on the best path. The inner repeat count scales
/// with the work so tiny shapes aren't pure timer noise.
fn measure_shape(rng: &mut StdRng, reps: usize, m: usize, k: usize, n: usize) -> ShapeResult {
    let lhs = random_matrix(rng, m, k);
    let weight = random_matrix(rng, k, n);
    let packed = PackedWeights::pack(&weight);
    let bias: Vec<f32> = (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect();
    let mut out = Matrix::zeros(1, 1);
    let inner = (2_000_000 / (2 * m * k * n)).clamp(1, 64);
    let mut ns_per_call = Vec::new();
    let mut gflops = Vec::new();
    for path in host_paths() {
        let s = min_time(reps, || {
            for _ in 0..inner {
                lhs.matmul_bias_act_into_with(&packed, &bias, Activation::Relu, &mut out, path);
                black_box(out.as_slice().last());
            }
        }) / inner as f64;
        ns_per_call.push((path.as_str().to_string(), s * 1e9));
        gflops.push((path.as_str().to_string(), (2 * m * k * n) as f64 / s / 1e9));
    }
    // The same layer shape quantized: one-layer network so the timing
    // includes the real serving cost (quantize the f32 input, fused int8
    // GEMM + dequant epilogue).
    let layer = Mlp::new(&[k, n], Activation::Relu, Init::HeNormal, rng);
    let mut calib = CalibrationStats::new(1);
    calib.observe(&layer, &lhs);
    let qlayer = QuantizedMlp::quantize(&layer, &calib);
    let mut qscratch = QuantScratch::default();
    let int8_s = min_time(reps, || {
        for _ in 0..inner {
            black_box(qlayer.forward_batch(&lhs, &mut qscratch)[(0, 0)]);
        }
    }) / inner as f64;
    let best_simd_ns = ns_per_call
        .iter()
        .filter(|(p, _)| p != "scalar")
        .map(|(_, ns)| *ns)
        .fold(f64::INFINITY, f64::min);
    ShapeResult {
        m,
        k,
        n,
        ns_per_call,
        gflops,
        int8_ns_per_call: int8_s * 1e9,
        int8_speedup_vs_simd: best_simd_ns / (int8_s * 1e9),
    }
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let reps = if smoke { 7 } else { 41 };
    let mut rng = StdRng::seed_from_u64(42);

    let mlp = Mlp::new(&WIDTHS, Activation::Relu, Init::HeNormal, &mut rng);
    let input = random_matrix(&mut rng, MICRO_BATCH, WIDTHS[0]);
    let mut calib = CalibrationStats::new(mlp.layers().len());
    calib.observe(&mlp, &input);
    let qmlp = QuantizedMlp::quantize(&mlp, &calib);

    // Per-layer GEMM shapes at the serving micro-batch.
    let shapes: Vec<ShapeResult> = WIDTHS
        .windows(2)
        .map(|w| measure_shape(&mut rng, reps, MICRO_BATCH, w[0], w[1]))
        .collect();
    for s in &shapes {
        let fmt = |v: &[(String, f64)]| {
            v.iter()
                .map(|(p, g)| format!("{p} {g:7.2}"))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        println!(
            "gemm {:>4}x{:>2}x{:>2}  GFLOP/s: {} | int8 layer {:7.0}ns ({:.2}x vs simd)",
            s.m,
            s.k,
            s.n,
            fmt(&s.gflops),
            s.int8_ns_per_call,
            s.int8_speedup_vs_simd,
        );
    }

    // End-to-end fused forward per f32 path, then int8 on the best path.
    let mut scratch = InferScratch::default();
    let mut f32_us = Vec::new();
    for path in host_paths() {
        kernel::force(Some(path));
        let s = min_time(reps, || {
            for _ in 0..4 {
                black_box(mlp.forward_batch_fused(&input, &mut scratch)[(0, 0)]);
            }
        }) / 4.0;
        f32_us.push((path.as_str().to_string(), s * 1e6));
    }
    kernel::force(None);
    let mut qscratch = QuantScratch::default();
    let int8_s = min_time(reps, || {
        for _ in 0..4 {
            black_box(qmlp.forward_batch(&input, &mut qscratch)[(0, 0)]);
        }
    }) / 4.0;

    let scalar_us = f32_us[0].1;
    let best_simd_us = f32_us[1..]
        .iter()
        .map(|(_, us)| *us)
        .fold(f64::INFINITY, f64::min);
    let simd_speedup = scalar_us / best_simd_us;
    let int8_speedup = best_simd_us / (int8_s * 1e6);
    // Best per-shape SIMD-vs-scalar GEMM ratio — the home of the 2×
    // claim (see the module docs for why the end-to-end forward cannot
    // robustly reach the port-limited 2×).
    let gemm_simd_speedup = shapes
        .iter()
        .map(|s| {
            let scalar = s
                .gflops
                .iter()
                .find(|(p, _)| p == "scalar")
                .map_or(f64::INFINITY, |(_, g)| *g);
            let best = s
                .gflops
                .iter()
                .filter(|(p, _)| p != "scalar")
                .map(|(_, g)| *g)
                .fold(0.0, f64::max);
            best / scalar
        })
        .fold(0.0, f64::max);
    // Best per-shape int8-vs-SIMD ratio — the home of the 1.5× claim,
    // mirroring the f32 shape contract (the end-to-end chain pays the
    // single-column output layer and input quantization that no wide
    // kernel can amortize).
    let int8_shape_speedup = shapes
        .iter()
        .map(|s| s.int8_speedup_vs_simd)
        .fold(0.0, f64::max);
    println!(
        "forward {MICRO_BATCH}x[3-16-32-16-1]: scalar {scalar_us:.1}us | best simd {best_simd_us:.1}us ({simd_speedup:.2}x) | int8 {:.1}us ({int8_speedup:.2}x vs simd) | best shapes: f32 {gemm_simd_speedup:.2}x, int8 {int8_shape_speedup:.2}x",
        int8_s * 1e6
    );

    // The perf contract. Scalar-only hosts have no SIMD claim to check.
    if host_paths().len() > 1 {
        let (shape_floor, int8_shape_floor, fwd_floor, int8_floor) = if smoke {
            (1.2, 1.0, 1.0, 0.9)
        } else {
            (2.0, 1.5, 1.4, 1.3)
        };
        assert!(
            gemm_simd_speedup >= shape_floor,
            "SIMD f32 GEMM must be >= {shape_floor}x scalar on the best model shape (got {gemm_simd_speedup:.2}x)"
        );
        assert!(
            int8_shape_speedup >= int8_shape_floor,
            "int8 layer must be >= {int8_shape_floor}x SIMD f32 on the best model shape (got {int8_shape_speedup:.2}x)"
        );
        assert!(
            simd_speedup >= fwd_floor,
            "SIMD f32 forward must be >= {fwd_floor}x scalar (got {simd_speedup:.2}x)"
        );
        assert!(
            int8_speedup >= int8_floor,
            "int8 forward must be >= {int8_floor}x SIMD f32 (got {int8_speedup:.2}x)"
        );
    }

    if smoke {
        println!("\nsmoke run OK (BENCH_simd.json untouched)");
        return;
    }

    let baseline = Baseline {
        description: "Fused GEMM kernel microbench on the serving MLP shapes: f32 per \
                      kernel path plus the int8 quantized forward"
            .into(),
        model: "two-branch PINN layer shapes (2,322 params), micro-batch 512".into(),
        reps,
        host: host_info_with_mode(1, "f32+int8"),
        paths_measured: host_paths()
            .iter()
            .map(|p| p.as_str().to_string())
            .collect(),
        shapes,
        forward: ForwardResult {
            batch: MICRO_BATCH,
            f32_us_per_batch: f32_us,
            int8_us_per_batch: int8_s * 1e6,
            simd_speedup_vs_scalar: simd_speedup,
            int8_speedup_vs_simd: int8_speedup,
            gemm_simd_speedup_vs_scalar: gemm_simd_speedup,
            int8_shape_speedup_vs_simd: int8_shape_speedup,
        },
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_simd.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serializable");
    std::fs::write(&path, json).expect("write BENCH_simd.json");
    println!("\nwrote BENCH_simd.json");
}
