//! Training throughput baseline: steady-state samples/s per branch, serial
//! vs pool-parallel multi-seed wall time, and steady-state per-step heap
//! allocations of the classic (allocating) vs engine (scratch-reusing)
//! training step — written to `BENCH_train.json` at the workspace root so
//! later PRs have a perf floor to beat.
//!
//! Run with `cargo run --release -p pinnsoc-bench --bin train_baseline`.
//! Pass `--smoke` for a CI-sized run (tiny epoch counts, few reps) that
//! sanity-checks the training engine without touching `BENCH_train.json`.
//!
//! The per-step allocation counts come from a counting global allocator
//! (every `alloc`/`realloc` is one event), measured over 200 steady-state
//! steps after a warm-up epoch — so one-time buffer growth is excluded and
//! the number reflects what every subsequent step pays.

use pinnsoc::train::{run_epochs, Batcher, EpochSpec, Eq2Objective, PhysicsTerm};
use pinnsoc::{train, train_many, Branch2, PinnVariant, TrainConfig, TrainTask};
use pinnsoc_battery::Chemistry;
use pinnsoc_bench::{host_info, HostInfo};
use pinnsoc_data::{
    estimation_samples, generate_sandia, prediction_pairs_all, NoiseConfig, Normalizer,
    PhysicsSampler, SandiaConfig, SocDataset,
};
use pinnsoc_nn::{Activation, Adam, Init, Loss, Matrix, Mlp, Optimizer, TrainScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocation events so the harness can report steady-state
/// allocations per training step.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation unchanged to the system allocator; the
// counter is a relaxed atomic with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[derive(Debug, Serialize)]
struct BranchThroughput {
    /// Which branch-shaped workload this measures.
    branch: &'static str,
    /// Training rows in the epoch.
    samples: usize,
    /// Minibatch size.
    batch_size: usize,
    /// Steady-state training throughput, samples/s (epochs × rows / time).
    samples_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct StepAllocations {
    /// Which branch-shaped workload this measures.
    branch: &'static str,
    /// Heap allocation events per step of the pre-refactor-style loop
    /// (fresh gather/targets/forward/backward matrices every step).
    classic_per_step: f64,
    /// Heap allocation events per step of the engine path (batcher +
    /// Eq. 2 objective + fused scratch-reusing nn passes).
    engine_per_step: f64,
}

#[derive(Debug, Serialize)]
struct MultiSeed {
    /// Independent seeds trained.
    seeds: usize,
    /// Pool worker threads used for the parallel run (the caller
    /// participates on top).
    workers: usize,
    serial_seconds: f64,
    pool_seconds: f64,
    /// serial / pool.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    description: String,
    model: String,
    host: HostInfo,
    branch_throughput: Vec<BranchThroughput>,
    step_allocations: Vec<StepAllocations>,
    multi_seed: MultiSeed,
}

fn dataset() -> SocDataset {
    generate_sandia(&SandiaConfig {
        chemistries: vec![Chemistry::Nmc],
        ambient_temps_c: vec![25.0],
        cycles_per_condition: 2,
        noise: NoiseConfig::none(),
        ..SandiaConfig::default()
    })
}

/// Branch-1-shaped problem: normalized `(V, I, T) → SoC` rows from the
/// dataset, exactly as the trainer builds them.
fn b1_problem(ds: &SocDataset) -> (Matrix, Vec<f32>) {
    let samples: Vec<_> = ds.train.iter().flat_map(estimation_samples).collect();
    let rows: Vec<[f64; 3]> = samples.iter().map(|s| s.features()).collect();
    let norm = Normalizer::fit(rows.iter().map(|r| r.as_slice()));
    let mut features = Matrix::zeros(rows.len(), 3);
    for (r, row) in rows.iter().enumerate() {
        let n = norm.normalized(row);
        for (c, v) in n.iter().enumerate() {
            features.row_mut(r)[c] = *v as f32;
        }
    }
    let targets = samples.iter().map(|s| s.soc as f32).collect();
    (features, targets)
}

/// Branch-2-shaped problem: normalized `(SoC, Ī, T̄, N)` rows, targets, and
/// the fitted branch whose featurizer both measured paths share.
fn b2_problem(ds: &SocDataset) -> (Matrix, Vec<f32>, Branch2) {
    let pairs = prediction_pairs_all(&ds.train, 120.0);
    let it_rows: Vec<[f64; 2]> = pairs
        .iter()
        .map(|p| [p.avg_current_a, p.avg_temperature_c])
        .collect();
    let norm_it = Normalizer::fit(it_rows.iter().map(|r| r.as_slice()));
    let mut rng = StdRng::seed_from_u64(5);
    let branch2 = Branch2::new(norm_it, 120.0, &mut rng);
    let featurizer = branch2.featurizer();
    let mut features = Matrix::zeros(pairs.len(), 4);
    for (r, p) in pairs.iter().enumerate() {
        let f = featurizer.features(p.soc_now, p.avg_current_a, p.avg_temperature_c, p.horizon_s);
        features.row_mut(r).copy_from_slice(&f);
    }
    let targets: Vec<f32> = pairs.iter().map(|p| p.soc_next as f32).collect();
    (features, targets, branch2)
}

/// The physics sampler both measured paths draw from — identical seed and
/// conditions so the classic and engine steps see the same workload.
fn physics_sampler(ds: &SocDataset) -> PhysicsSampler {
    let config = TrainConfig::sandia(PinnVariant::pinn_all(&[120.0, 240.0, 360.0]), 5);
    PhysicsSampler::new(ds, vec![120.0, 240.0, 360.0], config.physics_current, 6)
}

/// The engine path's physics term over the shared sampler and featurizer.
fn physics_term(ds: &SocDataset, branch2: &Branch2) -> PhysicsTerm {
    PhysicsTerm::new(physics_sampler(ds), branch2.featurizer(), 1.0)
}

fn fresh_net(input: usize) -> Mlp {
    let mut rng = StdRng::seed_from_u64(9);
    Mlp::new(
        &[input, 16, 32, 16, 1],
        Activation::Relu,
        Init::HeNormal,
        &mut rng,
    )
}

fn throughput(
    branch: &'static str,
    input: usize,
    features: &Matrix,
    targets: &[f32],
    objective: &mut Eq2Objective,
    epochs: usize,
) -> BranchThroughput {
    let batch_size = 64;
    let spec = EpochSpec {
        epochs,
        batch_size,
        learning_rate: 3e-3,
    };
    let mut net = fresh_net(input);
    let mut rng = StdRng::seed_from_u64(1);
    // Warm-up epoch grows every scratch buffer.
    let warm = EpochSpec { epochs: 1, ..spec };
    black_box(run_epochs(
        &mut net, features, targets, warm, objective, &mut rng,
    ));
    let start = Instant::now();
    black_box(run_epochs(
        &mut net, features, targets, spec, objective, &mut rng,
    ));
    let elapsed = start.elapsed().as_secs_f64();
    BranchThroughput {
        branch,
        samples: targets.len(),
        batch_size,
        samples_per_sec: (epochs * targets.len()) as f64 / elapsed,
    }
}

/// One step of the pre-refactor trainer: fresh gather, fresh target
/// matrix, allocating forward/backward, optional allocating physics term.
fn classic_step(
    net: &mut Mlp,
    features: &Matrix,
    targets: &[f32],
    indices: &[usize],
    physics: Option<(&mut PhysicsSampler, &Branch2, f32)>,
    opt: &mut Adam,
) {
    let x = features.gather_rows(indices);
    let y = Matrix::from_vec(
        indices.len(),
        1,
        indices.iter().map(|&i| targets[i]).collect(),
    );
    let pred = net.forward(&x);
    let grad = Loss::Mae.gradient(&pred, &y);
    net.zero_grad();
    net.backward(&grad);
    if let Some((sampler, branch2, weight)) = physics {
        let batch = sampler.sample_batch(indices.len());
        let rows: Vec<[f64; 4]> = batch.iter().map(|p| p.features()).collect();
        let px = branch2.feature_matrix(&rows);
        let py = Matrix::from_vec(
            batch.len(),
            1,
            batch.iter().map(|p| p.soc_next as f32).collect(),
        );
        let p_pred = net.forward(&px);
        let p_grad = Loss::Mae.gradient(&p_pred, &py).scale(weight);
        net.backward(&p_grad);
    }
    opt.step(net);
}

/// One step of the engine path on pre-grown scratch: batcher gather +
/// Eq. 2 objective + fused training passes.
struct EngineStepper {
    batcher: Batcher,
    scratch: TrainScratch,
    opt: Adam,
}

fn measure_allocs(
    branch: &'static str,
    input: usize,
    ds: &SocDataset,
    features: &Matrix,
    targets: &[f32],
    branch2: Option<&Branch2>,
    steps: usize,
) -> StepAllocations {
    use pinnsoc::train::Objective;
    let batch_size = 64usize;
    let batches = targets.len().div_ceil(batch_size).min(steps.max(1));
    // --- classic path ---
    // Same workload as the engine path below: identical featurizer (the
    // fitted branch) and an identically seeded physics sampler, so the two
    // per-step counts measure the same step two ways.
    let mut net = fresh_net(input);
    let mut opt = Adam::new(3e-3);
    let mut sampler = physics_sampler(ds);
    let indices: Vec<usize> = (0..targets.len()).collect();
    let chunk_of = |step: usize| {
        let lo = (step % batches) * batch_size;
        &indices[lo..(lo + batch_size).min(indices.len())]
    };
    // Warm-up (Adam moment buffers, layer caches).
    for step in 0..batches {
        let physics = branch2.map(|b2| (&mut sampler, b2, 1.0f32));
        classic_step(
            &mut net,
            features,
            targets,
            chunk_of(step),
            physics,
            &mut opt,
        );
    }
    let before = alloc_count();
    for step in 0..steps {
        let physics = branch2.map(|b2| (&mut sampler, b2, 1.0f32));
        classic_step(
            &mut net,
            features,
            targets,
            chunk_of(step),
            physics,
            &mut opt,
        );
    }
    let classic_per_step = (alloc_count() - before) as f64 / steps as f64;

    // --- engine path ---
    let mut net = fresh_net(input);
    let mut objective = match branch2 {
        Some(b2) => Eq2Objective::with_physics(physics_term(ds, b2)),
        None => Eq2Objective::data_only(),
    };
    let mut stepper = EngineStepper {
        batcher: Batcher::new(targets.len()),
        scratch: TrainScratch::default(),
        opt: Adam::new(3e-3),
    };
    let run = |stepper: &mut EngineStepper, net: &mut Mlp, objective: &mut Eq2Objective| {
        for b in 0..stepper.batcher.batches(batch_size).min(steps.max(1)) {
            let (x, y) = stepper.batcher.gather(b, batch_size, features, targets);
            black_box(objective.batch_step(net, x, y, &mut stepper.scratch));
            stepper.opt.step(net);
        }
    };
    // Warm-up grows every reused buffer once.
    run(&mut stepper, &mut net, &mut objective);
    let before = alloc_count();
    let mut done = 0usize;
    while done < steps {
        run(&mut stepper, &mut net, &mut objective);
        done += stepper.batcher.batches(batch_size).min(steps.max(1));
    }
    let engine_per_step = (alloc_count() - before) as f64 / done as f64;
    StepAllocations {
        branch,
        classic_per_step,
        engine_per_step,
    }
}

fn multi_seed(ds: &SocDataset, seeds: usize, epochs: usize) -> MultiSeed {
    let config = |seed: u64| TrainConfig {
        b1_epochs: epochs,
        b2_epochs: epochs,
        batch_size: 64,
        ..TrainConfig::sandia(PinnVariant::pinn_all(&[120.0, 240.0, 360.0]), seed)
    };
    let serial_start = Instant::now();
    for seed in 0..seeds as u64 {
        black_box(train(ds, &config(seed)));
    }
    let serial_seconds = serial_start.elapsed().as_secs_f64();
    let workers = std::thread::available_parallelism()
        .map_or(0, |p| usize::from(p).saturating_sub(1))
        .min(seeds.saturating_sub(1));
    let shared = std::sync::Arc::new(ds.clone());
    let tasks: Vec<TrainTask> = (0..seeds as u64)
        .map(|seed| TrainTask::new(std::sync::Arc::clone(&shared), config(seed)))
        .collect();
    let pool_start = Instant::now();
    black_box(train_many(tasks, workers));
    let pool_seconds = pool_start.elapsed().as_secs_f64();
    MultiSeed {
        seeds,
        workers,
        serial_seconds,
        pool_seconds,
        speedup: serial_seconds / pool_seconds,
    }
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let ds = dataset();
    let (b1_features, b1_targets) = b1_problem(&ds);
    let (b2_features, b2_targets, b2_branch) = b2_problem(&ds);
    let (epochs, alloc_steps, seeds, seed_epochs) = if smoke {
        (2, 20, 2, 2)
    } else {
        (20, 200, 4, 12)
    };

    let branch_throughput = vec![
        throughput(
            "branch1 (data MAE)",
            3,
            &b1_features,
            &b1_targets,
            &mut Eq2Objective::data_only(),
            epochs,
        ),
        throughput(
            "branch2 (Eq. 2 data + physics)",
            4,
            &b2_features,
            &b2_targets,
            &mut Eq2Objective::with_physics(physics_term(&ds, &b2_branch)),
            epochs,
        ),
    ];
    for t in &branch_throughput {
        println!(
            "{:<32} {:>7} samples x batch {:>3}: {:>12.0} samples/s",
            t.branch, t.samples, t.batch_size, t.samples_per_sec
        );
    }

    let step_allocations = vec![
        measure_allocs(
            "branch1 (data MAE)",
            3,
            &ds,
            &b1_features,
            &b1_targets,
            None,
            alloc_steps,
        ),
        measure_allocs(
            "branch2 (Eq. 2 data + physics)",
            4,
            &ds,
            &b2_features,
            &b2_targets,
            Some(&b2_branch),
            alloc_steps,
        ),
    ];
    for a in &step_allocations {
        println!(
            "{:<32} allocations/step: classic {:>6.1} -> engine {:>4.1}",
            a.branch, a.classic_per_step, a.engine_per_step
        );
        assert!(
            a.engine_per_step < a.classic_per_step,
            "engine path must allocate less than the classic path"
        );
    }

    let multi = multi_seed(&ds, seeds, seed_epochs);
    println!(
        "multi-seed x{}: serial {:.2}s | pool ({} workers + caller) {:.2}s | speedup {:.2}x",
        multi.seeds, multi.serial_seconds, multi.workers, multi.pool_seconds, multi.speedup
    );

    if smoke {
        println!("\nsmoke run OK (BENCH_train.json untouched)");
        return;
    }

    let baseline = Baseline {
        description: "Steady-state training throughput per branch, per-step heap allocations \
                      (classic allocating loop vs scratch-reusing engine), and serial vs \
                      pool-parallel multi-seed training wall time"
            .into(),
        model: "two-branch PINN (2,322 params), Sandia-style dataset".into(),
        host: host_info(multi.workers),
        branch_throughput,
        step_allocations,
        multi_seed: multi,
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_train.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serializable");
    std::fs::write(&path, json).expect("write BENCH_train.json");
    println!("\nwrote BENCH_train.json");
}
