//! Durability overhead and recovery baseline: proves crash safety is
//! near-free on the tick path and that recovery is fast and exact.
//!
//! Three checks, mirroring the guarantees `pinnsoc-durable` makes:
//!
//! 1. **WAL overhead + bit-identity** — a plain [`FleetEngine`] and a
//!    [`DurableFleet`] wrapping an identical one run the same
//!    ingest/process ticks. The WAL-on median **hot-path** tick (ingest +
//!    process + commit, the latency from telemetry arrival to updated
//!    estimates) must not slow down by more than 5% (with an
//!    absolute-noise floor for CI boxes), and every per-cell estimate must
//!    be bit-identical: logging never touches the numbers. Appends defer
//!    all encoding and checksumming to the boundary flush (group commit),
//!    which is timed and reported separately — in deployment it runs in
//!    the idle window between telemetry ticks, not under serving latency.
//! 2. **Recovery wall time** — fleets of 10k and 100k cells are
//!    snapshotted, run a WAL tail, and killed; `recover` is timed cold,
//!    including the replay's processing passes.
//! 3. **Crash-loop bit-identity** — one fleet is killed and recovered
//!    three times mid-run (uncommitted ingests torn off each time) and
//!    must finish with estimates bit-identical to a control that never
//!    crashed.
//!
//! Run with `cargo run --release -p pinnsoc-bench --bin durable_baseline`
//! to regenerate `BENCH_durable.json`. Pass `--smoke` for the CI-sized
//! gate: same assertions, smaller fleets, no file written.

use pinnsoc_bench::{host_info, HostInfo};
use pinnsoc_durable::{recover, DurableConfig, DurableFleet};
use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, SocEstimate, Telemetry};
use serde::Serialize;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Serving protocol constants — same as `fleet_baseline` and
/// `obs_baseline`, so overhead is measured against the recorded floor.
const SHARDS: usize = 8;
const MICRO_BATCH: usize = 512;
/// The overhead budget: WAL-on median tick vs plain median tick.
const MAX_OVERHEAD_FRAC: f64 = 0.05;
/// Absolute noise floor: below this many seconds of difference, scheduler
/// jitter dominates and the relative bound is meaningless.
const NOISE_FLOOR_S: f64 = 500e-6;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pinnsoc-durable-bench-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

#[derive(Debug, Serialize)]
struct WalOverhead {
    fleet_size: usize,
    reps: usize,
    base_median_tick_s: f64,
    /// Median durable tick minus its boundary flush: the serving-latency
    /// cost of logging (deferred appends only). This is the number the 5%
    /// budget is asserted against.
    wal_hot_median_tick_s: f64,
    /// Median durable tick including the boundary flush — the back-to-back
    /// throughput view.
    wal_full_median_tick_s: f64,
    /// Median boundary flush alone (bulk encode + CRC + write).
    wal_flush_median_s: f64,
    /// Hot-path overhead vs the plain engine, percent (asserted < 5).
    hot_overhead_pct: f64,
    /// Full-tick overhead vs the plain engine, percent (reported, not
    /// bounded: the flush is boundary work by design).
    full_overhead_pct: f64,
    /// WAL bytes appended per tick (one Report frame per cell + commit).
    wal_bytes_per_tick: u64,
}

#[derive(Debug, Serialize)]
struct RecoveryTiming {
    cells: usize,
    /// Committed ticks the WAL tail carried past the snapshot.
    tail_ticks: u64,
    /// Records replayed (reports + commits past the snapshot).
    records_replayed: u64,
    /// Cold `recover` wall time, snapshot decode + replay included.
    recover_wall_s: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    description: String,
    max_overhead_frac: f64,
    host: HostInfo,
    wal: WalOverhead,
    recovery: Vec<RecoveryTiming>,
    crash_loop_crashes: usize,
    crash_loop_bit_identical: bool,
}

fn new_engine(fleet_size: usize) -> FleetEngine {
    let mut engine = FleetEngine::new(
        untrained_model(),
        FleetConfig {
            shards: SHARDS,
            micro_batch: MICRO_BATCH,
            workers: 0,
            ekf_fallback: None,
            ..FleetConfig::default()
        },
    );
    for id in 0..fleet_size as u64 {
        engine.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        );
    }
    engine
}

fn telemetry(fleet_size: usize, id: u64, tick: f64) -> Telemetry {
    Telemetry {
        time_s: tick,
        voltage_v: 3.7 - 0.2 * (id as f64 / fleet_size as f64),
        current_a: 1.0,
        temperature_c: 25.0,
    }
}

/// One plain serving tick, timed.
fn run_tick(engine: &mut FleetEngine, fleet_size: usize, tick: f64) -> f64 {
    let start = Instant::now();
    for id in 0..fleet_size as u64 {
        engine.ingest(id, telemetry(fleet_size, id, tick));
    }
    let totals = black_box(engine.process_pending());
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(totals, (fleet_size, fleet_size), "engine dropped cells");
    wall
}

/// One WAL-logged serving tick — append, process, commit, flush. Returns
/// `(full wall, boundary-flush wall)`; the hot-path cost is the
/// difference.
fn run_durable_tick(durable: &mut DurableFleet, fleet_size: usize, tick: f64) -> (f64, f64) {
    let start = Instant::now();
    for id in 0..fleet_size as u64 {
        durable.ingest(id, telemetry(fleet_size, id, tick));
    }
    let totals = black_box(durable.process_pending().expect("tick commits"));
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(totals, (fleet_size, fleet_size), "engine dropped cells");
    (wall, durable.last_flush_seconds())
}

/// Every cell's estimate, bit-exact.
fn estimates(engine: &FleetEngine, fleet_size: usize) -> Vec<(u64, SocEstimate)> {
    (0..fleet_size as u64)
        .map(|id| {
            let (soc, source) = engine.estimate(id).expect("registered cell");
            (soc.to_bits(), source)
        })
        .collect()
}

fn wal_overhead_check(smoke: bool) -> WalOverhead {
    let fleet_size = if smoke { 2_000 } else { 10_000 };
    let reps = if smoke { 7 } else { 21 };
    println!("WAL overhead: {fleet_size} cells, {reps} interleaved timed ticks per engine...");

    let dir = tmpdir("overhead");
    let mut base = new_engine(fleet_size);
    // Snapshot cadence off: this measures the steady-state append path,
    // not the (rotation-amortized) snapshot cost.
    let mut durable = DurableFleet::create(
        new_engine(fleet_size),
        DurableConfig {
            snapshot_every_ticks: 0,
            max_segment_bytes: u64::MAX,
            ..DurableConfig::new(&dir)
        },
    )
    .expect("create durable fleet");

    // Interleaved tick-for-tick (after one warm-up each) so machine-load
    // drift biases neither engine.
    run_tick(&mut base, fleet_size, 1.0);
    run_durable_tick(&mut durable, fleet_size, 1.0);
    let mut base_samples = Vec::with_capacity(reps);
    let mut hot_samples = Vec::with_capacity(reps);
    let mut full_samples = Vec::with_capacity(reps);
    let mut flush_samples = Vec::with_capacity(reps);
    for rep in 0..reps {
        let tick = 2.0 + rep as f64;
        base_samples.push(run_tick(&mut base, fleet_size, tick));
        let (full, flush) = run_durable_tick(&mut durable, fleet_size, tick);
        hot_samples.push(full - flush);
        full_samples.push(full);
        flush_samples.push(flush);
    }
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let base_median = median(&mut base_samples);
    let hot_median = median(&mut hot_samples);
    let full_median = median(&mut full_samples);
    let flush_median = median(&mut flush_samples);

    assert_eq!(
        estimates(&base, fleet_size),
        estimates(durable.engine(), fleet_size),
        "WAL logging must leave every cell estimate bit-identical"
    );

    let hot_overhead = (hot_median - base_median) / base_median;
    let full_overhead = (full_median - base_median) / base_median;
    println!(
        "  base {:.3} ms | wal hot {:.3} ms ({:+.2}%) | flush {:.3} ms | full {:.3} ms ({:+.2}%)",
        base_median * 1e3,
        hot_median * 1e3,
        hot_overhead * 100.0,
        flush_median * 1e3,
        full_median * 1e3,
        full_overhead * 100.0,
    );
    assert!(
        hot_overhead < MAX_OVERHEAD_FRAC || (hot_median - base_median) < NOISE_FLOOR_S,
        "WAL hot-path overhead {:.2}% exceeds {:.0}% of tick time ({:.3} ms vs {:.3} ms)",
        hot_overhead * 100.0,
        MAX_OVERHEAD_FRAC * 100.0,
        hot_median * 1e3,
        base_median * 1e3,
    );

    let ticks = (reps + 1) as u64;
    let wal_bytes_per_tick = durable.wal_segment_bytes() / ticks;
    drop(durable);
    std::fs::remove_dir_all(&dir).expect("cleanup");
    WalOverhead {
        fleet_size,
        reps,
        base_median_tick_s: base_median,
        wal_hot_median_tick_s: hot_median,
        wal_full_median_tick_s: full_median,
        wal_flush_median_s: flush_median,
        hot_overhead_pct: hot_overhead * 100.0,
        full_overhead_pct: full_overhead * 100.0,
        wal_bytes_per_tick,
    }
}

fn recovery_check(cells: usize, tail_ticks: u64) -> RecoveryTiming {
    println!("recovery: {cells} cells, {tail_ticks}-tick WAL tail...");
    let dir = tmpdir("recovery");
    let config = DurableConfig {
        snapshot_every_ticks: 0,
        ..DurableConfig::new(&dir)
    };
    let mut durable =
        DurableFleet::create(new_engine(cells), config.clone()).expect("create durable fleet");
    // A committed WAL tail past the baseline snapshot: recovery replays
    // every report and re-runs a processing pass per commit.
    for tick in 1..=tail_ticks {
        for id in 0..cells as u64 {
            durable.ingest(id, telemetry(cells, id, tick as f64));
        }
        durable.process_pending().expect("tick commits");
    }
    let expected = estimates(durable.engine(), cells);
    drop(durable); // crash: buffered state is flushed per tick, nothing else survives

    let start = Instant::now();
    let (recovered, report) = recover(config, 0).expect("recovery");
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(
        report.tick, tail_ticks,
        "recovery must land on the last commit"
    );
    assert_eq!(
        estimates(recovered.engine(), cells),
        expected,
        "recovered estimates must be bit-identical"
    );
    println!(
        "  {:.1} ms for {} records ({} commits)",
        wall * 1e3,
        report.records_replayed,
        report.commits_replayed
    );
    let timing = RecoveryTiming {
        cells,
        tail_ticks,
        records_replayed: report.records_replayed,
        recover_wall_s: wall,
    };
    drop(recovered);
    std::fs::remove_dir_all(&dir).expect("cleanup");
    timing
}

/// Kill the same fleet three times mid-run — each crash tears off a
/// half-ingested tick — and finish bit-identical to an uncrashed control.
fn crash_loop_check(smoke: bool) -> usize {
    let cells = if smoke { 256 } else { 1_024 };
    const TOTAL_TICKS: u64 = 30;
    const CRASH_TICKS: [u64; 3] = [7, 15, 23];
    println!("crash loop: {cells} cells, killed at ticks {CRASH_TICKS:?} of {TOTAL_TICKS}...");

    let mut control = new_engine(cells);
    for tick in 1..=TOTAL_TICKS {
        run_tick(&mut control, cells, tick as f64);
    }

    let dir = tmpdir("crash-loop");
    let config = DurableConfig {
        snapshot_every_ticks: 4,
        max_segment_bytes: 256 << 10,
        ..DurableConfig::new(&dir)
    };
    let mut durable =
        Some(DurableFleet::create(new_engine(cells), config.clone()).expect("create"));
    let mut tick = 0;
    while tick < TOTAL_TICKS {
        tick += 1;
        let fleet = durable.as_mut().expect("live fleet");
        run_durable_tick(fleet, cells, tick as f64);
        if CRASH_TICKS.contains(&tick) {
            // Tear: half the next tick's reports ingested, never committed.
            for id in 0..cells as u64 / 2 {
                fleet.ingest(id, telemetry(cells, id, tick as f64 + 1.0));
            }
            drop(durable.take());
            let (recovered, report) = recover(config.clone(), 0).expect("recovery");
            assert_eq!(
                report.tick, tick,
                "crash at {tick} must recover the last commit"
            );
            durable = Some(recovered);
        }
    }
    let durable = durable.expect("live fleet");
    assert_eq!(
        estimates(&control, cells),
        estimates(durable.engine(), cells),
        "three crashes and recoveries must not move a single bit"
    );
    println!(
        "  OK: estimates bit-identical after {} recoveries",
        CRASH_TICKS.len()
    );
    drop(durable);
    std::fs::remove_dir_all(&dir).expect("cleanup");
    CRASH_TICKS.len()
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");

    let wal = wal_overhead_check(smoke);
    let recovery_sizes: &[(usize, u64)] = if smoke {
        &[(1_000, 8)]
    } else {
        &[(10_000, 8), (100_000, 8)]
    };
    let recovery: Vec<RecoveryTiming> = recovery_sizes
        .iter()
        .map(|&(cells, tail)| recovery_check(cells, tail))
        .collect();
    let crashes = crash_loop_check(smoke);

    if smoke {
        println!("\nsmoke run OK (BENCH_durable.json untouched)");
        return;
    }

    let baseline = Baseline {
        description: "Durability overhead and recovery: identical fleets ticked with and \
                      without WAL logging (median hot-path tick overhead budgeted at 5%, \
                      boundary flush reported separately, estimates bit-identical), cold \
                      recovery timed at 10k and 100k cells, and a triple-crash loop that \
                      must finish bit-identical to an uncrashed control"
            .into(),
        max_overhead_frac: MAX_OVERHEAD_FRAC,
        host: host_info(0),
        wal,
        recovery,
        crash_loop_crashes: crashes,
        crash_loop_bit_identical: true,
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_durable.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serializable");
    std::fs::write(&path, json).expect("write BENCH_durable.json");
    println!("\nwrote BENCH_durable.json");
}
