//! Fig. 3 — Sandia dataset: SoC-prediction MAE at test horizons of 120 s,
//! 240 s, and 360 s for the six training configurations, averaged over five
//! seeds.
//!
//! Paper reference points: No-PINN MAE 0.068 / 0.083 / 0.100 across the
//! three horizons, best-PINN improvements of ~21 % / 22 % / 22 %, PINN-All
//! best (or tied) everywhere.
//!
//! ```text
//! cargo run -p pinnsoc-bench --release --bin fig3_sandia
//! ```

use pinnsoc::{PinnVariant, TrainConfig};
use pinnsoc_bench::{print_horizon_table, write_results_json, HorizonSweep};
use pinnsoc_data::{generate_sandia, SandiaConfig};

fn sandia_config(variant: PinnVariant, seed: u64) -> TrainConfig {
    TrainConfig::sandia(variant, seed)
}

fn main() {
    let horizons = [120.0, 240.0, 360.0];
    println!("=== Fig. 3: Sandia — SoC prediction MAE by physics-loss configuration ===\n");
    println!("generating Sandia-like dataset (3 chemistries x 3 temperatures)...");
    let dataset = generate_sandia(&SandiaConfig::default());
    println!(
        "train: {} cycles / {} records; test: {} cycles / {} records\n",
        dataset.train.len(),
        dataset.train_len(),
        dataset.test.len(),
        dataset.test_len()
    );

    let sweep = HorizonSweep {
        dataset: &dataset,
        variants: vec![
            PinnVariant::NoPinn,
            PinnVariant::PhysicsOnly,
            PinnVariant::pinn_single(120.0),
            PinnVariant::pinn_single(240.0),
            PinnVariant::pinn_single(360.0),
            PinnVariant::pinn_all(&[120.0, 240.0, 360.0]),
        ],
        test_horizons_s: horizons.to_vec(),
        seeds: vec![0, 1, 2, 3, 4],
        make_config: sandia_config,
    };
    let results = sweep.run();
    print_horizon_table(&results, &horizons);
    write_results_json("fig3_sandia", &results).expect("write results");
}
