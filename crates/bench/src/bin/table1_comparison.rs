//! Table I — comparison with the state of the art on the LG dataset:
//! SoC(t) and SoC(t+30s) MAE at 0 °C and 25 °C, with memory footprint and
//! per-query operation counts.
//!
//! Paper reference points: two-branch network ≈9 kB / ≈1150 ops per branch
//! query, MAE 0.014 (25 °C) and 0.031 (0 °C) for SoC(t); the LSTM of \[17\]
//! ≈4 MB / ≈300 M ops with MAE 0.012 / 0.017; DE-LSTM 0.129 and DE-MLP 0.177
//! at 0 °C. Ratios: 409× fewer parameters, ≈260k× fewer operations.
//!
//! The LSTM accuracy rows are trained at a reduced hidden width (the
//! 1 M-parameter model of \[17\] is reproduced structurally for the memory/ops
//! columns; training it to convergence adds nothing to the comparison — see
//! EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p pinnsoc-bench --release --bin table1_comparison
//! ```

use pinnsoc::{
    eval_estimation, eval_prediction, train, LstmBaselineConfig, LstmEstimator, MlpBaselineConfig,
    MlpEstimator, PinnVariant, TrainConfig,
};
use pinnsoc_bench::write_results_json;
use pinnsoc_nn::{account::human_bytes, Account, Lstm, LstmQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    model: String,
    temp_c: f64,
    soc_t_mae: Option<f64>,
    soc_tn_mae: Option<f64>,
    memory_bytes: usize,
    ops: usize,
}

fn main() {
    println!("=== Table I: comparison with the SoA on the LG dataset ===\n");
    let lg = pinnsoc_data::generate_lg(&pinnsoc_data::LgConfig::default());
    // The DE baselines of [7] skip the 30 s moving average (§V-C attributes
    // part of the paper's edge to that preprocessing), so they get a raw
    // variant of the same dataset: window of one sample = no smoothing.
    let lg_raw = pinnsoc_data::generate_lg(&pinnsoc_data::LgConfig {
        moving_avg_s: 1.0,
        ..pinnsoc_data::LgConfig::default()
    });

    let mut rows: Vec<Row> = Vec::new();
    let horizon = 30.0;

    // --- Two-branch models (No-PINN and PINN-All) ---
    for variant in [
        PinnVariant::NoPinn,
        PinnVariant::pinn_all(&[30.0, 50.0, 70.0]),
    ] {
        let (model, _) = train(&lg, &TrainConfig::lg(variant, 0));
        let cost = model.cost();
        for temp in [0.0, 25.0] {
            let test: Vec<_> = lg.test_at_temperature(temp).into_iter().cloned().collect();
            let est = eval_estimation(&model, &test);
            let pred = eval_prediction(&model, &test, horizon);
            rows.push(Row {
                model: model.label.clone(),
                temp_c: temp,
                soc_t_mae: Some(est.mae),
                soc_tn_mae: Some(pred.mae),
                memory_bytes: cost.memory_bytes,
                ops: cost.macs,
            });
        }
    }

    // --- LSTM of [17]: trained at reduced width for the accuracy rows ---
    println!("training LSTM baseline (this is the slow row)...");
    let lstm_config = LstmBaselineConfig {
        hidden: 48,
        window: 60,
        iterations: 600,
        batch_size: 32,
        ..LstmBaselineConfig::default()
    };
    let lstm = LstmEstimator::train(&lg.train, &lstm_config);
    // Paper-scale twin (hidden 500 ≈ 1M params) for the memory/ops columns.
    let mut rng = StdRng::seed_from_u64(0);
    let paper_scale = Lstm::new(3, 500, 1, &mut rng);
    let paper_cost = LstmQuery {
        lstm: &paper_scale,
        sequence_len: 300,
    }
    .cost();
    for temp in [0.0, 25.0] {
        let test: Vec<_> = lg.test_at_temperature(temp).into_iter().cloned().collect();
        let report = lstm.eval(&test);
        rows.push(Row {
            model: "LSTM [17] (h=48 trained; mem/ops at h=500)".into(),
            temp_c: temp,
            soc_t_mae: Some(report.mae),
            soc_tn_mae: None,
            memory_bytes: paper_cost.memory_bytes,
            ops: paper_cost.macs,
        });
    }

    // --- DE-LSTM and DE-MLP of [7]: raw data, DE residual loss ---
    println!("training DE baselines on unsmoothed data...");
    let de_lstm = LstmEstimator::train(
        &lg_raw.train,
        &LstmBaselineConfig {
            hidden: 32,
            window: 60,
            iterations: 400,
            batch_size: 32,
            de_residual_weight: 0.5,
            ..LstmBaselineConfig::default()
        },
    );
    let de_mlp = MlpEstimator::train(
        &lg_raw.train,
        &MlpBaselineConfig {
            de_residual_weight: 0.5,
            ..MlpBaselineConfig::default()
        },
    );
    {
        let temp = 0.0;
        let test: Vec<_> = lg_raw
            .test_at_temperature(temp)
            .into_iter()
            .cloned()
            .collect();
        let r = de_lstm.eval(&test);
        rows.push(Row {
            model: "DE-LSTM [7] (raw inputs)".into(),
            temp_c: temp,
            soc_t_mae: Some(r.mae),
            soc_tn_mae: None,
            memory_bytes: de_lstm.cost().memory_bytes,
            ops: de_lstm.cost().macs,
        });
        let r = de_mlp.eval(&test);
        rows.push(Row {
            model: "DE-MLP [7] (raw inputs)".into(),
            temp_c: temp,
            soc_t_mae: Some(r.mae),
            soc_tn_mae: None,
            memory_bytes: de_mlp.cost().memory_bytes,
            ops: de_mlp.cost().macs,
        });
    }

    // --- Print the table ---
    println!(
        "\n{:<44} {:>5} {:>9} {:>11} {:>10} {:>12}",
        "model", "T[°C]", "SoC(t)", "SoC(t+N)", "Mem", "Ops"
    );
    println!("{}", "-".repeat(96));
    for r in &rows {
        let soc_t = r.soc_t_mae.map_or("n.a.".into(), |v| format!("{v:.4}"));
        let soc_tn = r.soc_tn_mae.map_or("n.a.".into(), |v| format!("{v:.4}"));
        println!(
            "{:<44} {:>5.0} {:>9} {:>11} {:>10} {:>12}",
            r.model,
            r.temp_c,
            soc_t,
            soc_tn,
            human_bytes(r.memory_bytes),
            r.ops
        );
    }

    // --- The headline ratios ---
    let two_branch = &rows[0];
    let param_ratio = paper_cost.params as f64 / 2322.0;
    let ops_ratio = paper_cost.macs as f64 / two_branch.ops as f64;
    println!(
        "\ntwo-branch vs paper-scale LSTM: {:.0}x fewer parameters, {:.0}x fewer ops \
         (paper: 409x / 260kx; ops ratio counts our full two-branch query)",
        param_ratio, ops_ratio
    );

    write_results_json("table1_comparison", &rows).expect("write results");
}
