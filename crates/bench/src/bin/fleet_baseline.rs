//! Fleet throughput baseline: batched vs. sequential SoC prediction at
//! fleet sizes 1k / 10k / 100k, written to `BENCH_fleet.json` at the
//! workspace root so later PRs have a perf floor to beat.
//!
//! Run with `cargo run --release -p pinnsoc-bench --bin fleet_baseline`.

use pinnsoc::{BatchScratch, PredictQuery, SocModel};
use pinnsoc_fleet::testing::untrained_model;
use pinnsoc_fleet::{CellConfig, FleetConfig, FleetEngine, Telemetry, WorkloadQuery};
use serde::Serialize;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct SizeResult {
    fleet_size: usize,
    sequential_cells_per_sec: f64,
    batched_cells_per_sec: f64,
    speedup: f64,
    engine_process_cells_per_sec: f64,
    parallel_batched_cells_per_sec: f64,
    parallel_speedup: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    description: String,
    model: String,
    reps: usize,
    results: Vec<SizeResult>,
}

fn queries(n: usize) -> Vec<PredictQuery> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            PredictQuery {
                voltage_v: 3.0 + 1.1 * t,
                current_a: 5.0 * t,
                temperature_c: 15.0 + 20.0 * t,
                avg_current_a: 4.0 * t,
                avg_temperature_c: 20.0 + 10.0 * t,
                horizon_s: 30.0 + 300.0 * t,
            }
        })
        .collect()
}

/// Median seconds per call of `f` over `reps` timed repetitions (after one
/// warm-up call).
fn median_time(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn measure(model: &SocModel, fleet_size: usize, reps: usize) -> SizeResult {
    let qs = queries(fleet_size);

    let sequential_s = median_time(reps, || {
        let mut acc = 0.0;
        for q in &qs {
            acc += model.predict(
                q.voltage_v,
                q.current_a,
                q.temperature_c,
                q.avg_current_a,
                q.avg_temperature_c,
                q.horizon_s,
            );
        }
        black_box(acc);
    });

    // Serving granularity: fixed-size micro-batches (the engine's design)
    // keep the layer ping-pong buffers L1/L2-resident; one giant batch
    // streams them through cache instead.
    let micro_batch = 256;
    let mut scratch = BatchScratch::default();
    let mut out = Vec::with_capacity(fleet_size);
    let batched_s = median_time(reps, || {
        out.clear();
        for chunk in qs.chunks(micro_batch) {
            model.predict_batch_into(chunk, &mut scratch, &mut out);
        }
        black_box(out.last().copied());
    });

    let mut engine = FleetEngine::new(
        model.clone(),
        FleetConfig {
            shards: 8,
            micro_batch: 512,
            ekf_fallback: None,
        },
    );
    for id in 0..fleet_size as u64 {
        engine.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        );
    }
    let mut tick = 0.0;
    let engine_s = median_time(reps, || {
        tick += 1.0;
        for id in 0..fleet_size as u64 {
            engine.ingest(
                id,
                Telemetry {
                    time_s: tick,
                    voltage_v: 3.7,
                    current_a: 1.0,
                    temperature_c: 25.0,
                },
            );
        }
        black_box(engine.process_pending());
    });
    let parallel_s = median_time(reps, || {
        black_box(engine.predict_all(WorkloadQuery {
            avg_current_a: 3.0,
            avg_temperature_c: 25.0,
            horizon_s: 120.0,
        }));
    });

    let n = fleet_size as f64;
    SizeResult {
        fleet_size,
        sequential_cells_per_sec: n / sequential_s,
        batched_cells_per_sec: n / batched_s,
        speedup: sequential_s / batched_s,
        engine_process_cells_per_sec: n / engine_s,
        parallel_batched_cells_per_sec: n / parallel_s,
        parallel_speedup: sequential_s / parallel_s,
    }
}

fn main() {
    let model = untrained_model();
    let reps = 15;
    let results: Vec<SizeResult> = [1_000usize, 10_000, 100_000]
        .iter()
        .map(|&n| {
            let r = measure(&model, n, reps);
            println!(
                "fleet {n:>6}: sequential {:>10.0}/s | batched {:>10.0}/s ({:.2}x) | sharded-parallel {:>10.0}/s ({:.2}x) | engine pass {:>10.0}/s",
                r.sequential_cells_per_sec,
                r.batched_cells_per_sec,
                r.speedup,
                r.parallel_batched_cells_per_sec,
                r.parallel_speedup,
                r.engine_process_cells_per_sec,
            );
            r
        })
        .collect();

    let baseline = Baseline {
        description: "Batched vs sequential full-pipeline SoC prediction throughput; \
                      engine = ingest + coalesce + sharded micro-batched estimate pass"
            .into(),
        model: "two-branch PINN (2,322 params), untrained weights".into(),
        reps,
        results,
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fleet.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serializable");
    std::fs::write(&path, json).expect("write BENCH_fleet.json");
    println!("\nwrote BENCH_fleet.json");
}
