//! Fleet throughput baseline: batched vs. sequential SoC prediction at
//! fleet sizes 1k / 10k / 100k, written to `BENCH_fleet.json` at the
//! workspace root so later PRs have a perf floor to beat.
//!
//! Run with `cargo run --release -p pinnsoc-bench --bin fleet_baseline`.
//! Pass `--smoke` for a CI-sized run (one small fleet, few reps) that
//! sanity-checks the engine without touching `BENCH_fleet.json`.
//!
//! Alongside the headline throughput numbers, each fleet size records a
//! per-stage breakdown of one engine tick (ingest / coalesce / gather /
//! GEMM / scatter, in milliseconds per tick) and the file is stamped with
//! host metadata (thread and worker counts, git revision, micro-batch
//! size) so the perf trajectory across PRs is comparable.

use pinnsoc::{BatchScratch, PredictQuery, SocModel};
use pinnsoc_bench::{host_info_with_mode, HostInfo};
use pinnsoc_fleet::testing::{quantize_untrained, untrained_model};
use pinnsoc_fleet::{
    CellConfig, FleetConfig, FleetEngine, GateCertificate, GateTolerance, ServingMode, Telemetry,
    WorkloadQuery,
};
use serde::Serialize;
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Serving protocol constants — keep stable across PRs so the recorded
/// numbers stay comparable.
const SHARDS: usize = 8;
const MICRO_BATCH: usize = 512;

#[derive(Debug, Serialize)]
struct StageBreakdownMs {
    /// Accepting telemetry into the engine — id lookup, integrator update,
    /// and dirty-slot dedup all happen at ingest; timed by this harness
    /// around the ingest loop.
    ingest: f64,
    /// Legacy drain-the-queue stage — reads zero now that integration
    /// happens at ingest; kept so the JSON schema is stable across PRs.
    coalesce: f64,
    /// Feature assembly from the SoA cell state (engine stage timer).
    gather: f64,
    /// Batched fused forward passes (engine stage timer).
    gemm: f64,
    /// Estimate write-back (engine stage timer).
    scatter: f64,
    /// Tick time not covered by the stages above (pool handoff, result
    /// aggregation, timer overhead).
    other: f64,
}

#[derive(Debug, Serialize)]
struct SizeResult {
    fleet_size: usize,
    sequential_cells_per_sec: f64,
    batched_cells_per_sec: f64,
    speedup: f64,
    engine_process_cells_per_sec: f64,
    /// Same engine pass with `ServingMode::Int8` and a certified quantized
    /// shadow installed — the serving configuration the int8 work exists
    /// for.
    engine_process_int8_cells_per_sec: f64,
    int8_engine_speedup: f64,
    parallel_batched_cells_per_sec: f64,
    parallel_speedup: f64,
    stage_breakdown_ms_per_tick: StageBreakdownMs,
    stage_breakdown_int8_ms_per_tick: StageBreakdownMs,
}

#[derive(Debug, Serialize)]
struct Baseline {
    description: String,
    model: String,
    reps: usize,
    shards: usize,
    micro_batch: usize,
    host: HostInfo,
    results: Vec<SizeResult>,
}

fn queries(n: usize) -> Vec<PredictQuery> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            PredictQuery {
                voltage_v: 3.0 + 1.1 * t,
                current_a: 5.0 * t,
                temperature_c: 15.0 + 20.0 * t,
                avg_current_a: 4.0 * t,
                avg_temperature_c: 20.0 + 10.0 * t,
                horizon_s: 30.0 + 300.0 * t,
            }
        })
        .collect()
}

/// Median seconds per call of `f` over `reps` timed repetitions (after one
/// warm-up call).
fn median_time(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Builds a serving engine over `fleet_size` registered cells; in int8
/// mode, installs a quantized shadow of the incumbent through the
/// certificate door (this bench measures speed, not accuracy, so the
/// certificate is minted from trivially-equal gate scores — the legality
/// chain itself is exercised by the scenario gate tests).
fn serving_engine(model: &SocModel, fleet_size: usize, int8: bool) -> FleetEngine {
    let mut engine = FleetEngine::new(
        model.clone(),
        FleetConfig {
            shards: SHARDS,
            micro_batch: MICRO_BATCH,
            workers: 0,
            ekf_fallback: None,
            serving: if int8 {
                ServingMode::Int8
            } else {
                ServingMode::F32
            },
        },
    );
    for id in 0..fleet_size as u64 {
        engine.register(
            id,
            CellConfig {
                initial_soc: 0.9,
                capacity_ah: 3.0,
            },
        );
    }
    if int8 {
        let registry = engine.registry();
        let incumbent = registry.current();
        let quantized = Arc::new(quantize_untrained(&incumbent));
        let cert = GateCertificate::attest(
            &incumbent,
            registry.version(),
            0.02,
            0.02,
            GateTolerance::default(),
            1,
        )
        .expect("equal scores pass any tolerance");
        registry
            .install_quantized(quantized, &cert)
            .expect("fresh registry accepts its own certificate");
    }
    engine
}

/// One serving steady state: ingest one report per cell + drain + batched
/// estimate refresh, timed as whole ticks (median over `reps`), with the
/// per-stage breakdown of the same ticks.
fn engine_pass(
    engine: &mut FleetEngine,
    fleet_size: usize,
    reps: usize,
    check: bool,
) -> (f64, StageBreakdownMs) {
    let mut tick = 0.0f64;
    let run_tick = |engine: &mut FleetEngine, tick: &mut f64| {
        *tick += 1.0;
        let start = Instant::now();
        for id in 0..fleet_size as u64 {
            engine.ingest(
                id,
                Telemetry {
                    time_s: *tick,
                    voltage_v: 3.7,
                    current_a: 1.0,
                    temperature_c: 25.0,
                },
            );
        }
        let ingest_s = start.elapsed().as_secs_f64();
        let totals = black_box(engine.process_pending());
        (start.elapsed().as_secs_f64(), ingest_s, totals)
    };
    // Warm-up tick, then reset the stage clocks so the breakdown covers
    // exactly the timed reps.
    let (_, _, warm) = run_tick(engine, &mut tick);
    if check {
        assert_eq!(
            warm,
            (fleet_size, fleet_size),
            "engine must absorb and estimate every cell"
        );
    }
    engine.reset_stage_times();
    let mut tick_samples = Vec::with_capacity(reps);
    let mut ingest_total_s = 0.0;
    for _ in 0..reps {
        let (tick_s, ingest_s, totals) = run_tick(engine, &mut tick);
        if check {
            assert_eq!(totals, (fleet_size, fleet_size), "engine dropped cells");
        }
        tick_samples.push(tick_s);
        ingest_total_s += ingest_s;
    }
    tick_samples.sort_by(f64::total_cmp);
    let engine_s = tick_samples[tick_samples.len() / 2];
    let stages = engine.stage_times();
    let per_tick_ms = |s: f64| s * 1e3 / reps as f64;
    let mean_tick_s: f64 = tick_samples.iter().sum::<f64>();
    let breakdown = StageBreakdownMs {
        ingest: per_tick_ms(ingest_total_s),
        coalesce: per_tick_ms(stages.coalesce.as_secs_f64()),
        gather: per_tick_ms(stages.gather.as_secs_f64()),
        gemm: per_tick_ms(stages.gemm.as_secs_f64()),
        scatter: per_tick_ms(stages.scatter.as_secs_f64()),
        other: per_tick_ms((mean_tick_s - ingest_total_s - stages.total().as_secs_f64()).max(0.0)),
    };
    (engine_s, breakdown)
}

fn measure(model: &SocModel, fleet_size: usize, reps: usize, check: bool) -> SizeResult {
    let qs = queries(fleet_size);

    let sequential_s = median_time(reps, || {
        let mut acc = 0.0;
        for q in &qs {
            acc += model.predict(
                q.voltage_v,
                q.current_a,
                q.temperature_c,
                q.avg_current_a,
                q.avg_temperature_c,
                q.horizon_s,
            );
        }
        black_box(acc);
    });

    // Serving granularity: fixed-size micro-batches (the engine's design)
    // keep the layer ping-pong buffers L1/L2-resident; one giant batch
    // streams them through cache instead.
    let mut scratch = BatchScratch::default();
    let mut out = Vec::with_capacity(fleet_size);
    let batched_s = median_time(reps, || {
        out.clear();
        for chunk in qs.chunks(256) {
            model.predict_batch_into(chunk, &mut scratch, &mut out);
        }
        black_box(out.last().copied());
    });

    // The serving steady state in both modes over the same fleet shape:
    // the f32 engine first (the historical baseline series), then the
    // int8-shadowed engine.
    let mut engine = serving_engine(model, fleet_size, false);
    let (engine_s, breakdown) = engine_pass(&mut engine, fleet_size, reps, check);
    let mut int8_engine = serving_engine(model, fleet_size, true);
    let (int8_s, int8_breakdown) = engine_pass(&mut int8_engine, fleet_size, reps, check);
    drop(int8_engine);

    let parallel_s = median_time(reps, || {
        black_box(engine.predict_all(WorkloadQuery {
            avg_current_a: 3.0,
            avg_temperature_c: 25.0,
            horizon_s: 120.0,
        }));
    });

    let n = fleet_size as f64;
    SizeResult {
        fleet_size,
        sequential_cells_per_sec: n / sequential_s,
        batched_cells_per_sec: n / batched_s,
        speedup: sequential_s / batched_s,
        engine_process_cells_per_sec: n / engine_s,
        engine_process_int8_cells_per_sec: n / int8_s,
        int8_engine_speedup: engine_s / int8_s,
        parallel_batched_cells_per_sec: n / parallel_s,
        parallel_speedup: sequential_s / parallel_s,
        stage_breakdown_ms_per_tick: breakdown,
        stage_breakdown_int8_ms_per_tick: int8_breakdown,
    }
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let model = untrained_model();
    let reps = if smoke { 3 } else { 15 };
    let sizes: &[usize] = if smoke {
        &[2_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let results: Vec<SizeResult> = sizes
        .iter()
        .map(|&n| {
            let r = measure(&model, n, reps, smoke);
            println!(
                "fleet {n:>6}: sequential {:>10.0}/s | batched {:>10.0}/s ({:.2}x) | sharded-parallel {:>10.0}/s ({:.2}x) | engine pass {:>10.0}/s | int8 pass {:>10.0}/s ({:.2}x)",
                r.sequential_cells_per_sec,
                r.batched_cells_per_sec,
                r.speedup,
                r.parallel_batched_cells_per_sec,
                r.parallel_speedup,
                r.engine_process_cells_per_sec,
                r.engine_process_int8_cells_per_sec,
                r.int8_engine_speedup,
            );
            for (label, b) in [
                ("f32 ", &r.stage_breakdown_ms_per_tick),
                ("int8", &r.stage_breakdown_int8_ms_per_tick),
            ] {
                println!(
                    "             {label} tick breakdown (ms): ingest {:.3} | coalesce {:.3} | gather {:.3} | gemm {:.3} | scatter {:.3} | other {:.3}",
                    b.ingest, b.coalesce, b.gather, b.gemm, b.scatter, b.other,
                );
            }
            r
        })
        .collect();

    if smoke {
        println!("\nsmoke run OK (BENCH_fleet.json untouched)");
        return;
    }

    // Resolve the auto worker count exactly like the measured engines did.
    let probe = serving_engine(&model, 1, false);
    let baseline = Baseline {
        description: "Batched vs sequential full-pipeline SoC prediction throughput; \
                      engine = integrate-at-ingest + sharded micro-batched estimate pass, \
                      measured in f32 serving mode and with a certified int8 shadow"
            .into(),
        model: "two-branch PINN (2,322 params), untrained weights".into(),
        reps,
        shards: SHARDS,
        micro_batch: MICRO_BATCH,
        host: host_info_with_mode(probe.worker_threads(), "f32+int8"),
        results,
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fleet.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serializable");
    std::fs::write(&path, json).expect("write BENCH_fleet.json");
    println!("\nwrote BENCH_fleet.json");
}
